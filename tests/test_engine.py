"""PlacementEngine ↔ ScaddarMapper bit-exact agreement (property tests).

The engine is the batched hot-path implementation; the scalar mapper is
the reference.  Over random operation logs mixing disk-group additions
and removals (including the empty ``j = 0`` log), every batched answer —
final ``X_j``, logical disk, RF() move set, load vector — must agree
element-for-element with the scalar chain.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.engine import PlacementEngine
from repro.core.operations import OperationLog, ScalingOp
from repro.core.scaddar import ScaddarMapper


@st.composite
def op_logs(draw, max_ops: int = 6):
    """An initial disk count plus a random add/remove operation list."""
    n0 = draw(st.integers(min_value=1, max_value=10))
    num_ops = draw(st.integers(min_value=0, max_value=max_ops))
    ops: list[ScalingOp] = []
    n = n0
    for _ in range(num_ops):
        kinds = ["add", "remove"] if n > 1 else ["add"]
        if draw(st.sampled_from(kinds)) == "add":
            op = ScalingOp.add(draw(st.integers(min_value=1, max_value=4)))
        else:
            removed = draw(
                st.sets(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=1,
                    max_size=n - 1,
                )
            )
            op = ScalingOp.remove(sorted(removed))
        n = op.next_disk_count(n)
        ops.append(op)
    return n0, ops


x0_lists = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1), min_size=0, max_size=48
)


def build_pair(n0: int, ops: list[ScalingOp]) -> tuple[ScaddarMapper, PlacementEngine]:
    mapper = ScaddarMapper(n0=n0, bits=64)
    engine = PlacementEngine(mapper.log)  # shared log: engine syncs lazily
    for op in ops:
        mapper.apply(op)
    return mapper, engine


class TestBatchedAgainstScalar:
    @given(log=op_logs(), x0s=x0_lists)
    def test_locate_batch_matches_locate(self, log, x0s):
        mapper, engine = build_pair(*log)
        scalar = [mapper.locate(x0) for x0 in x0s]
        assert engine.locate_batch(x0s).tolist() == [loc.disk for loc in scalar]
        assert engine.chain_batch(x0s).tolist() == [loc.x for loc in scalar]

    @given(log=op_logs(), x0s=x0_lists)
    def test_redistribution_moves_batch_matches_scalar(self, log, x0s):
        mapper, engine = build_pair(*log)
        scalar = mapper.redistribution_moves(list(enumerate(x0s)))
        indices, sources, targets = engine.redistribution_moves_batch(x0s)
        assert [
            (move.block, move.source_disk, move.target_disk) for move in scalar
        ] == list(zip(indices.tolist(), sources.tolist(), targets.tolist()))

    @given(log=op_logs(), x0s=x0_lists)
    def test_load_vector_matches_scalar_histogram(self, log, x0s):
        mapper, engine = build_pair(*log)
        expected = [0] * mapper.current_disks
        for x0 in x0s:
            expected[mapper.disk_of(x0)] += 1
        assert engine.load_vector(x0s).tolist() == expected

    @given(log=op_logs(max_ops=5), x0s=x0_lists)
    def test_incremental_sync_agrees_at_every_epoch(self, log, x0s):
        """Ops appended one at a time: the engine must answer correctly
        at every intermediate epoch, only ever appending cached state."""
        n0, ops = log
        mapper = ScaddarMapper(n0=n0, bits=64)
        engine = PlacementEngine(mapper.log)
        for op in ops:
            mapper.apply(op)
            cached_before = engine.epoch
            assert engine.locate_batch(x0s).tolist() == [
                mapper.disk_of(x0) for x0 in x0s
            ]
            # sync() appended exactly the new epochs, never rebuilt.
            assert engine.epoch == mapper.num_operations >= cached_before


class TestEmptyLog:
    """The ``j = 0`` edge case: no operations recorded."""

    def test_locate_batch_is_mod_n0(self):
        engine = PlacementEngine(OperationLog(n0=7))
        x0s = [0, 1, 6, 7, 13, 2**64 - 1]
        assert engine.locate_batch(x0s).tolist() == [x % 7 for x in x0s]
        assert engine.chain_batch(x0s).tolist() == x0s

    def test_redistribution_moves_batch_is_empty(self):
        engine = PlacementEngine(OperationLog(n0=4))
        indices, sources, targets = engine.redistribution_moves_batch([1, 2, 3])
        assert indices.size == sources.size == targets.size == 0

    def test_empty_population(self):
        engine = PlacementEngine(OperationLog(n0=4))
        assert engine.locate_batch([]).size == 0
        assert engine.load_vector([]).tolist() == [0, 0, 0, 0]


class TestEngineApi:
    def test_apply_appends_to_log_and_caches(self):
        log = OperationLog(n0=4)
        engine = PlacementEngine(log)
        assert engine.apply(ScalingOp.add(2)) == 6
        assert log.num_operations == 1
        assert engine.epoch == 1
        assert engine.current_disks == 6

    def test_accepts_numpy_input(self):
        engine = PlacementEngine(OperationLog(n0=4))
        engine.apply(ScalingOp.add(1))
        x0s = np.arange(100, dtype=np.uint64)
        mapper = ScaddarMapper(n0=4, bits=64)
        mapper.apply(ScalingOp.add(1))
        assert engine.locate_batch(x0s).tolist() == [
            mapper.disk_of(int(x)) for x in x0s
        ]

    def test_rejects_negative_x0(self):
        engine = PlacementEngine(OperationLog(n0=4))
        with pytest.raises(ValueError):
            engine.locate_batch([3, -1])
        with pytest.raises(ValueError):
            engine.locate_batch(np.array([-5], dtype=np.int64))

    def test_scratch_buffers_are_reused(self):
        """Same-size batches must not reallocate the scratch set."""
        engine = PlacementEngine(OperationLog(n0=4))
        engine.apply(ScalingOp.add(3))
        engine.apply(ScalingOp.remove([1]))
        engine.locate_batch(list(range(512)))
        buffers = {name: arr for name, arr in engine._scratch.items()}
        engine.locate_batch(list(range(512, 1024)))
        for name, arr in engine._scratch.items():
            assert arr is buffers[name], f"{name} buffer was reallocated"

    def test_log_swap_resets_cache(self):
        engine = PlacementEngine(OperationLog(n0=4))
        engine.apply(ScalingOp.add(1))
        engine.log = OperationLog(n0=3)
        assert engine.sync() == 0
        assert engine.locate_batch([5]).tolist() == [2]
