"""Equivalence tests: vectorized REMAP vs the scalar reference."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operations import OperationLog, ScalingOp
from repro.core.remap import remap_add, remap_remove
from repro.core.scaddar import ScaddarMapper
from repro.core.vectorized import (
    chain_x_array,
    disks_array,
    load_vector_array,
    remap_add_array,
    remap_remove_array,
)
from repro.workloads.generator import random_x0s


class TestRemapAddArray:
    @given(
        n_prev=st.integers(1, 30),
        grow=st.integers(1, 8),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar(self, n_prev, grow, data):
        xs = data.draw(
            st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=50)
        )
        x_new, moved = remap_add_array(np.array(xs, dtype=np.uint64), n_prev, n_prev + grow)
        for i, x in enumerate(xs):
            ref = remap_add(x, n_prev, n_prev + grow)
            assert int(x_new[i]) == ref.x_new
            assert bool(moved[i]) == ref.moved

    def test_rejects_non_growth(self):
        with pytest.raises(ValueError):
            remap_add_array(np.array([1], dtype=np.uint64), 5, 5)

    def test_full_64bit_values(self):
        xs = np.array([2**64 - 1, 2**63, 0], dtype=np.uint64)
        x_new, __ = remap_add_array(xs, 7, 9)
        for x, out in zip(xs.tolist(), x_new.tolist()):
            assert out == remap_add(int(x), 7, 9).x_new


class TestRemapRemoveArray:
    @given(
        n_prev=st.integers(2, 30),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar(self, n_prev, data):
        removed = data.draw(
            st.sets(st.integers(0, n_prev - 1), min_size=1, max_size=n_prev - 1)
        )
        xs = data.draw(
            st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=50)
        )
        x_new, moved = remap_remove_array(
            np.array(xs, dtype=np.uint64), n_prev, removed
        )
        for i, x in enumerate(xs):
            ref = remap_remove(x, n_prev, removed)
            assert int(x_new[i]) == ref.x_new
            assert bool(moved[i]) == ref.moved

    def test_rejects_full_removal(self):
        with pytest.raises(ValueError):
            remap_remove_array(np.array([1], dtype=np.uint64), 2, {0, 1})


class TestChains:
    def _log(self):
        log = OperationLog(n0=4)
        for op in (
            ScalingOp.add(2),
            ScalingOp.remove([1, 4]),
            ScalingOp.add(1),
            ScalingOp.remove([0]),
            ScalingOp.add(3),
        ):
            log.append(op)
        return log

    def test_chain_matches_mapper(self):
        log = self._log()
        mapper = ScaddarMapper(n0=4, bits=64)
        for op in log:
            mapper.apply(op)
        x0s = random_x0s(2_000, bits=64, seed=42)
        finals = chain_x_array(x0s, log)
        disks = disks_array(x0s, log)
        for i, x0 in enumerate(x0s[:500]):
            loc = mapper.locate(x0)
            assert int(finals[i]) == loc.x
            assert int(disks[i]) == loc.disk

    def test_load_vector_matches_scalar_counting(self):
        log = self._log()
        mapper = ScaddarMapper(n0=4, bits=32)
        for op in log:
            mapper.apply(op)
        x0s = random_x0s(3_000, bits=32, seed=43)
        loads = load_vector_array(x0s, log)
        expected = [0] * log.current_disks
        for x0 in x0s:
            expected[mapper.disk_of(x0)] += 1
        assert loads.tolist() == expected

    def test_empty_log_is_mod_n0(self):
        log = OperationLog(n0=5)
        x0s = [0, 1, 2, 7, 12]
        assert disks_array(x0s, log).tolist() == [x % 5 for x in x0s]

    def test_load_vector_length(self):
        log = OperationLog(n0=6)
        # Even when no block lands on the last disks the vector is full-length.
        loads = load_vector_array([0], log)
        assert len(loads) == 6
        assert loads.sum() == 1
