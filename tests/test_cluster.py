"""Cluster coordinator tests: routing, serving, resharding, journal.

The cluster layer recurses SCADDAR one level up (objects over shards);
these tests pin the coordinator's lifecycle — namespace rules, the
round barrier, journaled shard add/remove with stream re-homing, abort
rollback — plus the ClusterJournal's record discipline, the obs merge,
and per-shard fault decorrelation.
"""

from __future__ import annotations

import os

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterJournal,
    ClusterJournalCorruptionError,
    ObjectMove,
    ShardRouter,
    check_cluster,
    cluster_prometheus,
    merged_deterministic_view,
    merged_registry,
    routing_key,
    routing_keys,
    shard_catalog_seed,
    shard_fault_seed,
    snapshot_cluster,
)
from repro.cluster.journal import JournalError
from repro.core.operations import ScalingOp
from repro.obs import Obs
from repro.server.cmserver import OperationInFlightError
from repro.server.streams import StreamState
from repro.storage.disk import DiskSpec

SPEC = DiskSpec(capacity_blocks=50_000, bandwidth_blocks_per_round=8)


def build_cluster(
    num_shards: int = 3,
    num_objects: int = 12,
    blocks_per_object: int = 40,
    **kwargs,
) -> ClusterCoordinator:
    coordinator = ClusterCoordinator.create(
        num_shards, 3, SPEC, bits=32, master_seed=0xBEEF, **kwargs
    )
    for i in range(num_objects):
        coordinator.add_object(f"title-{i}", blocks_per_object)
    return coordinator


def cluster_layout(coordinator: ClusterCoordinator) -> dict:
    """(gid -> (shard id, logical placements)) — physical ids are
    process-global and change across restore, logical positions do not."""
    layout = {}
    for gid in coordinator.object_ids:
        shard_id, physicals = coordinator.block_locations(gid)
        array = coordinator.shard(shard_id).server.array
        layout[gid] = (
            shard_id,
            tuple(array.logical_of(pid) for pid in physicals),
        )
    return layout


class TestRoutingKeys:
    def test_key_is_64_bit_and_deterministic(self):
        key = routing_key(42)
        assert 0 <= key < (1 << 64)
        assert key == routing_key(42)

    def test_salt_decorrelates(self):
        assert routing_key(42, salt=1) != routing_key(42, salt=2)

    def test_batch_matches_scalar(self):
        gids = list(range(100))
        batched = routing_keys(gids)
        assert [int(k) for k in batched] == [routing_key(g) for g in gids]


class TestShardRouter:
    def test_slot_of_matches_slots_of(self):
        router = ShardRouter.create("jump_hash", 5)
        gids = list(range(200))
        router.register(gids)
        batched = router.slots_of(gids)
        assert [router.slot_of(g) for g in gids] == [int(s) for s in batched]

    def test_payload_round_trip(self):
        router = ShardRouter.create("consistent_hash", 4, salt=0x5EED)
        gids = list(range(64))
        router.register(gids)
        router.plan_moves(ScalingOp.add(1), gids)
        twin = ShardRouter.from_payload(router.state_payload())
        assert twin.salt == router.salt
        assert twin.num_shards == router.num_shards
        assert [twin.slot_of(g) for g in gids] == [
            router.slot_of(g) for g in gids
        ]


class TestNamespace:
    def test_create_rejects_empty(self):
        with pytest.raises(ValueError):
            ClusterCoordinator.create(0, 2, SPEC)

    def test_add_routes_and_loads(self):
        coordinator = build_cluster()
        assert coordinator.num_objects == 12
        assert coordinator.total_blocks == 12 * 40
        for gid in coordinator.object_ids:
            shard_id, physicals = coordinator.block_locations(gid)
            assert shard_id == coordinator.shard_of(gid)
            assert len(physicals) == 40

    def test_names_unique(self):
        coordinator = build_cluster(num_objects=1)
        with pytest.raises(ValueError):
            coordinator.add_object("title-0", 10)

    def test_gid_lookup_by_name(self):
        coordinator = build_cluster(num_objects=3)
        for gid in coordinator.object_ids:
            shard = coordinator.shard(coordinator.shard_of(gid))
            name = shard.server.catalog.get(
                coordinator.local_id_of(gid)
            ).name
            assert coordinator.gid_of(name) == gid

    def test_remove_object(self):
        coordinator = build_cluster(num_objects=4)
        coordinator.remove_object(1)
        assert coordinator.num_objects == 3
        assert 1 not in coordinator.object_ids
        with pytest.raises(KeyError):
            coordinator.shard_of(1)
        assert coordinator.total_blocks == 3 * 40

    def test_unknown_lookups_raise(self):
        coordinator = build_cluster(num_objects=1)
        with pytest.raises(KeyError):
            coordinator.shard_of(99)
        with pytest.raises(KeyError):
            coordinator.gid_of("nope")
        with pytest.raises(KeyError):
            coordinator.shard(99)

    def test_fresh_cluster_is_clean(self):
        assert check_cluster(build_cluster()).clean


class TestServing:
    def test_round_barrier_aggregates(self):
        coordinator = build_cluster()
        for i in range(6):
            coordinator.admit_stream(i, i)
        report = coordinator.run_round()
        assert report.requested == 6
        assert report.served == 6
        assert report.requested == (
            report.served + report.hiccups + report.queued
        )
        assert report.availability == 1.0
        assert set(report.reports) == set(coordinator.shard_ids)

    def test_round_index_advances(self):
        coordinator = build_cluster(num_objects=2)
        reports = coordinator.run_rounds(3)
        assert [r.round_index for r in reports] == [0, 1, 2]

    def test_duplicate_stream_id_rejected(self):
        coordinator = build_cluster(num_objects=2)
        coordinator.admit_stream(7, 0)
        with pytest.raises(ValueError):
            coordinator.admit_stream(7, 1)

    def test_depart_stream(self):
        coordinator = build_cluster(num_objects=2)
        coordinator.admit_stream(7, 0)
        stream = coordinator.depart_stream(7)
        assert stream.stream_id == 7
        with pytest.raises(KeyError):
            coordinator.depart_stream(7)


class TestReshard:
    def test_add_shards_moves_minimally(self):
        coordinator = build_cluster(num_objects=20)
        before = cluster_layout(coordinator)
        pending = coordinator.reshard(ScalingOp.add(2))
        assert coordinator.num_shards == 5
        assert pending.new_shard_ids == (3, 4)
        after = cluster_layout(coordinator)
        moved = {g for g in before if before[g][0] != after[g][0]}
        assert moved == {m.object_id for m in pending.moves}
        # Untouched objects kept their exact block layout.
        for gid in set(before) - moved:
            assert before[gid] == after[gid]
        assert check_cluster(coordinator).clean

    def test_remove_shard_drains_and_detaches(self):
        coordinator = build_cluster()
        doomed = coordinator.shards[-1].shard_id
        blocks = coordinator.total_blocks
        coordinator.reshard(ScalingOp.remove([coordinator.num_shards - 1]))
        assert coordinator.num_shards == 2
        assert doomed not in coordinator.shard_ids
        with pytest.raises(KeyError):
            coordinator.shard(doomed)
        assert coordinator.total_blocks == blocks
        assert check_cluster(coordinator).clean

    def test_quiescence_enforced_mid_reshard(self):
        coordinator = build_cluster()
        pending = coordinator.begin_reshard(ScalingOp.add(1))
        with pytest.raises(OperationInFlightError):
            coordinator.add_object("late", 10)
        with pytest.raises(OperationInFlightError):
            coordinator.remove_object(0)
        with pytest.raises(OperationInFlightError):
            coordinator.begin_reshard(ScalingOp.add(1))
        coordinator.execute_reshard(pending)
        coordinator.finish_reshard(pending)
        coordinator.add_object("late", 10)

    def test_finish_requires_all_moves(self):
        coordinator = build_cluster(num_objects=20)
        pending = coordinator.begin_reshard(ScalingOp.add(2))
        assert pending.moves  # statistically certain at 20 objects
        with pytest.raises(ValueError):
            coordinator.finish_reshard(pending)
        coordinator.execute_reshard(pending)
        coordinator.finish_reshard(pending)
        with pytest.raises(ValueError):
            coordinator.finish_reshard(pending)

    def test_fsck_classifies_in_flight(self):
        coordinator = build_cluster(num_objects=20)
        pending = coordinator.begin_reshard(ScalingOp.add(2))
        report = check_cluster(coordinator)  # pending picked up implicitly
        assert report.clean
        assert len(report.in_flight) == len(pending.moves)
        coordinator.migrate_next(pending)
        report = check_cluster(coordinator, pending)
        assert report.clean
        assert len(report.in_flight) == len(pending.moves) - 1
        coordinator.execute_reshard(pending)
        coordinator.finish_reshard(pending)
        final = check_cluster(coordinator)
        assert final.clean and not final.in_flight

    def test_streams_rehome_with_position(self):
        coordinator = build_cluster(num_objects=20)
        for i in range(20):
            coordinator.admit_stream(i, i, start_block=5)
        coordinator.run_round()  # positions now 6
        paused = coordinator.admit_stream(99, 0, start_block=0)
        paused.pause()
        pending = coordinator.begin_reshard(ScalingOp.add(2))
        assert pending.moves
        coordinator.execute_reshard(pending)
        coordinator.finish_reshard(pending)
        # Every migrated object's stream serves from its new shard at
        # the position it had reached.
        moved_gids = {m.object_id for m in pending.moves}
        for shard in coordinator.shards:
            for stream in shard.scheduler.streams:
                if stream.stream_id == 99:
                    assert stream.state is StreamState.PAUSED
                    continue
                gid = stream.stream_id  # stream i plays object i
                assert coordinator.shard_of(gid) == shard.shard_id
                if gid in moved_gids:
                    assert stream.position == 6
        report = coordinator.run_round()
        assert report.served == 20  # paused stream requests nothing

    def test_abort_restores_everything(self):
        coordinator = build_cluster(num_objects=20)
        before_layout = cluster_layout(coordinator)
        before_ids = coordinator.shard_ids
        pending = coordinator.begin_reshard(ScalingOp.add(2))
        coordinator.migrate_next(pending)
        coordinator.migrate_next(pending)
        reversed_count = coordinator.abort_reshard(pending)
        assert reversed_count == 2
        assert coordinator.shard_ids == before_ids
        after_layout = cluster_layout(coordinator)
        # Every object routes home again; the two round-tripped ones are
        # re-placed within their shard (fresh local ids), the rest are
        # untouched bit-for-bit.
        assert {g: after_layout[g][0] for g in after_layout} == {
            g: before_layout[g][0] for g in before_layout
        }
        round_tripped = set(pending.applied) | {
            m.object_id for m in pending.moves[:2]
        }
        for gid in set(before_layout) - round_tripped:
            assert after_layout[gid] == before_layout[gid]
        assert check_cluster(coordinator).clean
        # The namespace reopens and shard-id allocation was rolled back.
        next_pending = coordinator.begin_reshard(ScalingOp.add(1))
        assert next_pending.new_shard_ids == (3,)
        coordinator.abort_reshard(next_pending)

    def test_abort_remove_reinserts_slots(self):
        coordinator = build_cluster(num_shards=4, num_objects=16)
        before_ids = coordinator.shard_ids
        before_layout = cluster_layout(coordinator)
        pending = coordinator.begin_reshard(ScalingOp.remove([3]))
        coordinator.migrate_next(pending)
        coordinator.abort_reshard(pending)
        assert coordinator.shard_ids == before_ids
        after_layout = cluster_layout(coordinator)
        assert {g: after_layout[g][0] for g in after_layout} == {
            g: before_layout[g][0] for g in before_layout
        }
        for gid in set(before_layout) - {pending.moves[0].object_id}:
            assert after_layout[gid] == before_layout[gid]
        assert check_cluster(coordinator).clean

    def test_foreign_pending_rejected(self):
        a = build_cluster(num_objects=6)
        b = build_cluster(num_objects=6)
        pending = a.begin_reshard(ScalingOp.add(1))
        with pytest.raises(ValueError):
            b.finish_reshard(pending)
        a.execute_reshard(pending)
        a.finish_reshard(pending)

    def test_scale_shard_keeps_routing(self):
        coordinator = build_cluster()
        shard_id = coordinator.shard_ids[0]
        homes = {g: coordinator.shard_of(g) for g in coordinator.object_ids}
        coordinator.scale_shard(shard_id, ScalingOp.add(1))
        assert {
            g: coordinator.shard_of(g) for g in coordinator.object_ids
        } == homes
        assert check_cluster(coordinator).clean


class TestClusterJournal:
    def test_record_lifecycle(self, tmp_path):
        path = str(tmp_path / "c.journal")
        journal = ClusterJournal(path)
        journal.record_begin(
            seq=1, op=ScalingOp.add(1), shards_before=2, shards_after=3,
            new_shard_ids=(2,), moves=[ObjectMove(5, 0, 2)],
        )
        journal.record_apply(1, 5)
        journal.record_commit(1)
        journal.close()
        [record] = ClusterJournal(path).replay()
        assert record.seq == 1 and record.committed and not record.open
        assert record.applied == [5]
        assert list(record.plan) == [ObjectMove(5, 0, 2)]

    def test_begin_while_open_rejected(self, tmp_path):
        journal = ClusterJournal(str(tmp_path / "c.journal"))
        journal.record_begin(
            seq=1, op=ScalingOp.add(1), shards_before=2, shards_after=3,
            new_shard_ids=(2,), moves=[],
        )
        with pytest.raises(JournalError):
            journal.record_begin(
                seq=2, op=ScalingOp.add(1), shards_before=3,
                shards_after=4, new_shard_ids=(3,), moves=[],
            )

    def test_seq_mismatch_rejected(self, tmp_path):
        journal = ClusterJournal(str(tmp_path / "c.journal"))
        journal.record_begin(
            seq=1, op=ScalingOp.add(1), shards_before=2, shards_after=3,
            new_shard_ids=(2,), moves=[ObjectMove(5, 0, 2)],
        )
        with pytest.raises(JournalError):
            journal.record_apply(2, 5)
        with pytest.raises(JournalError):
            journal.record_commit(2)

    def test_torn_final_line_tolerated(self, tmp_path):
        path = str(tmp_path / "c.journal")
        journal = ClusterJournal(path)
        journal.record_begin(
            seq=1, op=ScalingOp.add(1), shards_before=2, shards_after=3,
            new_shard_ids=(2,), moves=[ObjectMove(5, 0, 2)],
        )
        journal.record_apply(1, 5)
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "comm')  # the crash ate the rest
        [record] = ClusterJournal(path).replay()
        assert record.open and record.applied == [5]

    def test_interior_corruption_raises_typed_error(self, tmp_path):
        path = str(tmp_path / "c.journal")
        journal = ClusterJournal(path)
        journal.record_begin(
            seq=1, op=ScalingOp.add(1), shards_before=2, shards_after=3,
            new_shard_ids=(2,), moves=[ObjectMove(5, 0, 2)],
        )
        journal.record_apply(1, 5)
        journal.record_commit(1)
        journal.close()
        lines = open(path, encoding="utf-8").read().splitlines()
        lines[1] = '{"type": "app'  # bit-rot in the middle of the file
        open(path, "w", encoding="utf-8").write("\n".join(lines) + "\n")
        with pytest.raises(ClusterJournalCorruptionError) as excinfo:
            ClusterJournal(path).replay()
        assert excinfo.value.lineno == 2
        assert "line 2" in str(excinfo.value)
        assert isinstance(excinfo.value, JournalError)  # old handlers work

    def test_structurally_damaged_record_names_its_line(self, tmp_path):
        path = str(tmp_path / "c.journal")
        journal = ClusterJournal(path)
        journal.record_begin(
            seq=1, op=ScalingOp.add(1), shards_before=2, shards_after=3,
            new_shard_ids=(2,), moves=[ObjectMove(5, 0, 2)],
        )
        journal.record_apply(1, 5)
        journal.record_commit(1)
        journal.close()
        lines = open(path, encoding="utf-8").read().splitlines()
        lines[0] = '{"type": "begin", "seq": 1}'  # parses, fields gone
        open(path, "w", encoding="utf-8").write("\n".join(lines) + "\n")
        with pytest.raises(ClusterJournalCorruptionError) as excinfo:
            ClusterJournal(path).replay()
        assert excinfo.value.lineno == 1

    def test_journaled_run_matches_memory(self, tmp_path):
        path = str(tmp_path / "c.journal")
        coordinator = build_cluster(journal=ClusterJournal(path))
        pending = coordinator.reshard(ScalingOp.add(1))
        coordinator.journal.close()
        assert os.path.exists(path)
        [record] = ClusterJournal(path).replay()
        assert record.committed
        assert record.applied == list(pending.applied)
        assert set(record.plan) == set(pending.moves)


class TestFaultDecorrelation:
    def test_shard_seeds_distinct_and_stable(self):
        seeds = [shard_fault_seed(0xBEEF, sid) for sid in range(64)]
        assert len(set(seeds)) == 64
        assert seeds == [shard_fault_seed(0xBEEF, sid) for sid in range(64)]

    def test_fault_and_catalog_streams_differ(self):
        assert shard_fault_seed(0xBEEF, 3) != shard_catalog_seed(0xBEEF, 3)

    def test_seed_pinned_to_stable_id_not_slot(self):
        coordinator = build_cluster(
            num_shards=4, num_objects=8, router_backend="consistent_hash"
        )
        survivor = coordinator.shards[-1]
        seed_before = survivor.fault_seed(0xBEEF)
        coordinator.reshard(ScalingOp.remove([0]))
        assert survivor in coordinator.shards  # slot shifted, id stable
        assert survivor.fault_seed(0xBEEF) == seed_before

    def test_master_seed_in_path(self):
        assert shard_fault_seed(1, 0) != shard_fault_seed(2, 0)


class TestObsAggregation:
    def build_observed(self):
        coordinator = build_cluster(obs=Obs(), journal=ClusterJournal())
        coordinator.admit_stream(0, 0)
        coordinator.run_round()
        coordinator.reshard(ScalingOp.add(1))
        return coordinator

    def test_merged_view_is_shard_tagged(self):
        coordinator = self.build_observed()
        view = merged_deterministic_view(coordinator)
        tags = {tag for tag, _, _, _ in view}
        assert "cluster" in tags
        assert tags & {str(s) for s in coordinator.shard_ids}
        kinds = {kind for _, _, kind, _ in view}
        assert "cluster.round" in kinds
        assert "cluster.reshard.begin" in kinds
        assert "cluster.reshard.commit" in kinds

    def test_merged_view_deterministic_across_same_seed_runs(self):
        a = merged_deterministic_view(self.build_observed())
        b = merged_deterministic_view(self.build_observed())
        assert a == b

    def test_merged_registry_labels_by_shard(self):
        coordinator = self.build_observed()
        merged = merged_registry(coordinator)
        labelled = {
            dict(key).get("shard")
            for counter in merged.counters
            for key in counter.series
        }
        assert labelled  # every series carries the shard label
        assert None not in labelled

    def test_prometheus_renders(self):
        text = cluster_prometheus(self.build_observed())
        assert 'shard="cluster"' in text

    def test_null_obs_by_default(self):
        coordinator = build_cluster(num_objects=2)
        assert merged_deterministic_view(coordinator) == []
        assert cluster_prometheus(coordinator).strip() == ""


class TestClusterCLIExitCodes:
    """``scaddar cluster fsck``/``status`` as monitoring probes: 0 when
    clean and quiescent, 1 when unclean (dead shards / fsck breaches),
    2 while a rebalance is open in the journal."""

    def run_cli(self, *argv):
        from repro.cli import main

        return main(["cluster", *map(str, argv)])

    def write_manifest(self, coordinator, path):
        import json

        path.write_text(
            json.dumps(snapshot_cluster(coordinator)), encoding="utf-8"
        )

    def build_replicated(self, journal=None):
        coordinator = ClusterCoordinator.create(
            4, 3, SPEC, bits=32, master_seed=0xBEEF,
            router_backend="consistent_hash",
            replication_factor=2, num_domains=2, journal=journal,
        )
        for i in range(8):
            coordinator.add_object(f"title-{i}", 20)
        return coordinator

    def test_status_clean_is_zero(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        self.write_manifest(self.build_replicated(), manifest)
        assert self.run_cli("status", "--manifest", manifest) == 0
        out = capsys.readouterr().out
        assert "replicas=2" in out and "healthy" in out

    def test_status_dead_shard_is_one(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        coordinator = self.build_replicated()
        coordinator.kill_shard(0)
        self.write_manifest(coordinator, manifest)
        assert self.run_cli("status", "--manifest", manifest) == 1
        assert "dead shards: [0]" in capsys.readouterr().out

    def test_status_open_rebalance_is_two(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        journal = tmp_path / "c.journal"
        coordinator = self.build_replicated(
            journal=ClusterJournal(str(journal))
        )
        self.write_manifest(coordinator, manifest)
        pending = coordinator.begin_reshard(ScalingOp.add(1))
        coordinator.migrate_next(pending)
        coordinator.journal.close()  # the crash
        assert self.run_cli(
            "status", "--manifest", manifest, "--journal", journal
        ) == 2
        assert "OPEN" in capsys.readouterr().out

    def test_fsck_clean_is_zero(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        self.write_manifest(self.build_replicated(), manifest)
        assert self.run_cli("fsck", "--manifest", manifest) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_fsck_replica_breach_is_one(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "m.json"
        self.write_manifest(self.build_replicated(), manifest)
        # Collapse every shard into one failure domain behind fsck's
        # back: every replica pair now collides.
        data = json.loads(manifest.read_text())
        for entry in data["shards"]:
            entry["domain"] = "dom0"
        manifest.write_text(json.dumps(data), encoding="utf-8")
        assert self.run_cli("fsck", "--manifest", manifest) == 1
        out = capsys.readouterr().out
        assert "NOT clean" in out

    def test_fsck_open_rebalance_is_two(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        journal = tmp_path / "c.journal"
        coordinator = self.build_replicated(
            journal=ClusterJournal(str(journal))
        )
        self.write_manifest(coordinator, manifest)
        pending = coordinator.begin_reshard(ScalingOp.add(1))
        coordinator.migrate_next(pending)
        coordinator.journal.close()  # the crash
        assert self.run_cli(
            "fsck", "--manifest", manifest, "--journal", journal
        ) == 2
        assert "OPEN" in capsys.readouterr().out
