"""Tests for the exact-distribution analysis and the two newest
experiments (bound tightness, stream balance)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.exact import exact_load_distribution, exact_unfairness
from repro.core.operations import OperationLog, ScalingOp
from repro.experiments import bound_tightness, stream_balance


class TestExactDistribution:
    def test_no_ops_divisible_range(self):
        log = OperationLog(n0=4)
        loads = exact_load_distribution(log, bits=10)
        assert loads.tolist() == [256, 256, 256, 256]
        assert exact_unfairness(log, bits=10) == 0.0

    def test_no_ops_indivisible_range(self):
        log = OperationLog(n0=3)
        loads = exact_load_distribution(log, bits=4)
        assert sorted(loads.tolist()) == [5, 5, 6]
        assert exact_unfairness(log, bits=4) == pytest.approx(6 / 5 - 1)

    def test_sums_to_range(self):
        log = OperationLog(n0=4)
        log.append(ScalingOp.add(1))
        log.append(ScalingOp.remove([0]))
        assert exact_load_distribution(log, bits=14).sum() == 1 << 14

    def test_bits_limits(self):
        log = OperationLog(n0=2)
        with pytest.raises(ValueError):
            exact_load_distribution(log, bits=0)
        with pytest.raises(ValueError):
            exact_load_distribution(log, bits=40)

    def test_exhausted_range_is_infinite(self):
        log = OperationLog(n0=4)
        for __ in range(8):
            log.append(ScalingOp.add(1))
        # With 8 bits the range dies well before 8 ops.
        assert exact_unfairness(log, bits=8) == math.inf


class TestBoundTightness:
    @pytest.fixture(scope="class")
    def result(self):
        return bound_tightness.run_bound_tightness(bits=16, operations=6)

    def test_bound_dominates_exact(self, result):
        for point in result.points:
            if math.isinf(point.exact):
                assert math.isinf(point.bound)
            else:
                assert point.bound >= point.exact - 1e-12

    def test_budget_is_conservative(self, result):
        """Lemma 4.3 stops scaling while exact unfairness is still < eps."""
        for point in result.points:
            if point.within_budget:
                assert point.exact < result.eps

    def test_unfairness_eventually_degrades(self, result):
        assert math.isinf(result.points[-1].exact) or (
            result.points[-1].exact > result.points[0].exact
        )

    def test_report_renders(self, result):
        text = bound_tightness.report(result)
        assert "Lemma 4.2 bound" in text


class TestStreamBalance:
    @pytest.fixture(scope="class")
    def result(self):
        return stream_balance.run_stream_balance(
            num_streams=28, rounds=150, seeds=6
        )

    def test_both_layouts_present(self, result):
        assert {s.placement for s in result.summaries} == {
            "random",
            "round_robin",
        }

    def test_random_is_more_predictable(self, result):
        by_name = {s.placement: s for s in result.summaries}
        assert by_name["random"].spread < by_name["round_robin"].spread

    def test_random_spreads_hiccups_over_streams(self, result):
        by_name = {s.placement: s for s in result.summaries}
        assert (
            by_name["random"].mean_worst_stream_share
            < by_name["round_robin"].mean_worst_stream_share
        )

    def test_headroom_validation(self):
        with pytest.raises(ValueError):
            stream_balance.run_stream_balance(
                blocks_per_object=100, rounds=200, seeds=1
            )

    def test_report_renders(self, result):
        assert "placement" in stream_balance.report(result)
