"""Unit tests for online scaling and mirroring fault tolerance."""

from __future__ import annotations

import pytest

from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.server.cmserver import CMServer
from repro.server.faults import DataLossError, MirroredPlacement, mirror_offset
from repro.server.online import OnlineScaler, StalledMigrationError
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream
from repro.storage.disk import DiskSpec
from repro.workloads.generator import random_x0s, uniform_catalog


def make_server(blocks=400, n0=4, bandwidth=8):
    catalog = uniform_catalog(3, blocks, master_seed=0x0B5, bits=32)
    spec = DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=bandwidth)
    return CMServer(catalog, [spec] * n0, bits=32, default_spec=spec)


class TestOnlineScaler:
    def test_rejects_mismatched_scheduler(self):
        server = make_server()
        other = make_server()
        with pytest.raises(ValueError):
            OnlineScaler(server, RoundScheduler(other.array))

    def test_idle_server_scales_fast(self):
        server = make_server()
        scheduler = RoundScheduler(server.array)
        scaler = OnlineScaler(server, scheduler)
        report = scaler.scale_online(ScalingOp.add(1))
        assert report.hiccups == 0
        assert report.blocks_moved > 0
        assert server.num_disks == 5
        assert sum(report.moves_per_round) == report.blocks_moved

    def test_migration_only_uses_spare_bandwidth(self):
        server = make_server(bandwidth=2)
        scheduler = RoundScheduler(server.array)
        media = server.catalog.get(0)
        scheduler.admit(Stream(0, media))
        scaler = OnlineScaler(server, scheduler)
        report = scaler.scale_online(ScalingOp.add(1))
        # With streams running and bandwidth 2, migration is throttled:
        # strictly fewer moves per round than the unthrottled bound 4*2.
        assert max(report.moves_per_round) <= 2 * server.num_disks

    def test_streams_unharmed_at_moderate_load(self):
        server = make_server(bandwidth=6)
        scheduler = RoundScheduler(server.array)
        for sid in range(6):
            media = server.catalog.get(sid % 3)
            scheduler.admit(Stream(sid, media, start_block=(sid * 53) % 100))
        scaler = OnlineScaler(server, scheduler)
        report = scaler.scale_online(ScalingOp.add(1))
        assert report.hiccups == 0
        assert server.num_disks == 5

    def test_online_removal(self):
        server = make_server()
        scheduler = RoundScheduler(server.array)
        scaler = OnlineScaler(server, scheduler)
        report = scaler.scale_online(ScalingOp.remove([2]))
        assert server.num_disks == 3
        assert report.blocks_moved > 0

    def test_stall_detection(self):
        server = make_server(bandwidth=1)
        scheduler = RoundScheduler(server.array)
        # Saturate every disk: 4 disks x bandwidth 1 = 4 streams, each
        # needing one block per round forever (long objects).
        for sid in range(4):
            scheduler.admit(Stream(sid, server.catalog.get(sid % 3)))
        scaler = OnlineScaler(server, scheduler)
        with pytest.raises(StalledMigrationError):
            scaler.scale_online(ScalingOp.add(1), stall_rounds=5)


class TestMirrorOffset:
    def test_paper_function(self):
        assert mirror_offset(8) == 4
        assert mirror_offset(5) == 2
        assert mirror_offset(2) == 1

    def test_single_disk(self):
        assert mirror_offset(1) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            mirror_offset(0)


class TestMirroredPlacement:
    def make(self, n0=6, ops=0):
        mapper = ScaddarMapper(n0=n0, bits=32)
        for __ in range(ops):
            mapper.apply(ScalingOp.add(1))
        return MirroredPlacement(mapper)

    def test_replicas_distinct(self):
        mirrored = self.make()
        for x0 in random_x0s(2_000, bits=32, seed=1):
            pair = mirrored.replica_pair(x0)
            assert pair.primary != pair.mirror
            assert 0 <= pair.mirror < 6

    def test_mirror_is_fixed_offset(self):
        mirrored = self.make(n0=8)
        for x0 in random_x0s(500, bits=32, seed=2):
            pair = mirrored.replica_pair(x0)
            assert pair.mirror == (pair.primary + 4) % 8

    def test_read_prefers_primary(self):
        mirrored = self.make()
        x0 = 12345
        pair = mirrored.replica_pair(x0)
        assert mirrored.read_disk(x0) == pair.primary

    def test_failover_to_mirror(self):
        mirrored = self.make()
        x0 = 12345
        pair = mirrored.replica_pair(x0)
        assert mirrored.read_disk(x0, failed={pair.primary}) == pair.mirror

    def test_double_failure_raises(self):
        mirrored = self.make()
        x0 = 12345
        pair = mirrored.replica_pair(x0)
        with pytest.raises(DataLossError):
            mirrored.read_disk(x0, failed={pair.primary, pair.mirror})

    def test_tolerates_any_single_failure(self):
        mirrored = self.make()
        for x0 in random_x0s(300, bits=32, seed=3):
            for disk in range(6):
                assert mirrored.tolerates_failure(x0, disk)

    def test_mirroring_survives_scaling(self):
        mirrored = self.make(n0=4, ops=3)  # now 7 disks
        assert mirrored.num_disks == 7
        for x0 in random_x0s(1_000, bits=32, seed=4):
            pair = mirrored.replica_pair(x0)
            assert pair.primary != pair.mirror
            assert pair.mirror == (pair.primary + 3) % 7

    def test_failover_load_concentrates_on_partner(self):
        mirrored = self.make(n0=6)
        x0s = random_x0s(12_000, bits=32, seed=5)
        loads = mirrored.failover_load(x0s, failed_disk=0)
        assert loads[0] == 0
        partner = (0 + 3) % 6
        mean_others = sum(
            v for d, v in loads.items() if d not in (0, partner)
        ) / 4
        assert loads[partner] > 1.7 * mean_others

    def test_failover_load_conserves_blocks(self):
        mirrored = self.make(n0=6)
        x0s = random_x0s(5_000, bits=32, seed=6)
        loads = mirrored.failover_load(x0s, failed_disk=2)
        assert sum(loads.values()) == len(x0s)


class TestDegeneratePaths:
    """The edge cases the scheme's guarantees quietly exclude."""

    def make(self, n0):
        return MirroredPlacement(ScaddarMapper(n0=n0, bits=32))

    def test_single_disk_pair_collapses_to_primary(self):
        # f(1) = 0: with one disk there is nowhere else to mirror, so
        # the "pair" degenerates to the primary disk itself.
        mirrored = self.make(n0=1)
        for x0 in random_x0s(50, bits=32, seed=7):
            pair = mirrored.replica_pair(x0)
            assert pair.primary == pair.mirror == 0

    def test_single_disk_failure_is_data_loss(self):
        mirrored = self.make(n0=1)
        assert not mirrored.tolerates_failure(123, disk=0)
        with pytest.raises(DataLossError):
            mirrored.read_disk(123, failed={0})

    def test_two_disks_regain_tolerance(self):
        # Nj = 2 is the smallest array where f(Nj) >= 1 separates the
        # replicas, restoring single-failure tolerance.
        mirrored = self.make(n0=2)
        for x0 in random_x0s(200, bits=32, seed=8):
            pair = mirrored.replica_pair(x0)
            assert pair.mirror == 1 - pair.primary
            for disk in (0, 1):
                assert mirrored.tolerates_failure(x0, disk)

    def test_mirror_offset_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mirror_offset(0)
        with pytest.raises(ValueError):
            mirror_offset(-3)

    def test_failover_load_lands_on_single_partner(self):
        # The fixed-offset trade-off at its starkest: every block of the
        # failed disk fails over to exactly one partner — no other
        # surviving disk absorbs any of it.
        mirrored = self.make(n0=6)
        x0s = random_x0s(6_000, bits=32, seed=9)
        healthy = {d: 0 for d in range(6)}
        for x0 in x0s:
            healthy[mirrored.replica_pair(x0).primary] += 1
        failed = 0
        partner = (failed + mirror_offset(6)) % 6
        loads = mirrored.failover_load(x0s, failed_disk=failed)
        assert loads[partner] == healthy[partner] + healthy[failed]
        for disk in range(6):
            if disk not in (failed, partner):
                assert loads[disk] == healthy[disk]
