"""Crash consistency: the scaling journal and snapshot+journal resume.

The acceptance property: for a scaling operation with M moves, killing
the server after *every* k in {0..M} journaled moves and resuming from
snapshot + journal must produce a final layout bit-identical to an
uninterrupted run, with a clean fsck.
"""

from __future__ import annotations

import json

import pytest

from repro.core.operations import ScalingOp
from repro.server.cmserver import CMServer
from repro.server.fsck import check_layout
from repro.server.journal import JournalError, LogicalMove, ScalingJournal
from repro.server.persistence import (
    restore_server,
    resume_server,
    server_to_json,
    snapshot_server,
)
from repro.storage.block import BlockId
from repro.storage.disk import DiskSpec
from repro.storage.migration import MigrationSession
from repro.workloads.generator import uniform_catalog


def make_server(journal=None, num_objects=4, blocks=100):
    catalog = uniform_catalog(num_objects, blocks, master_seed=0x7041, bits=32)
    spec = DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=8)
    return CMServer(
        catalog, [spec] * 4, bits=32, default_spec=spec, journal=journal
    )


def logical_layout(server):
    """Logical disk of every block (physical ids differ across restores)."""
    layout = {}
    for media in server.catalog:
        for index in range(media.num_blocks):
            pid = server.block_location(media.object_id, index)
            layout[(media.object_id, index)] = server.array.logical_of(pid)
    return layout


class TestJournalRecords:
    def test_empty_journal_replays_empty(self):
        assert ScalingJournal().replay() == []

    def test_begin_apply_commit_roundtrip(self):
        journal = ScalingJournal()
        move = LogicalMove(BlockId(0, 1), 0, 4)
        journal.record_begin(1, ScalingOp.add(1), 4, 5, [move])
        journal.record_apply(1, BlockId(0, 1))
        journal.record_commit(1)
        (record,) = journal.replay()
        assert record.seq == 1
        assert record.op == ScalingOp.add(1)
        assert record.plan == (move,)
        assert record.applied == [BlockId(0, 1)]
        assert record.committed and not record.aborted and not record.open

    def test_open_record_detected(self):
        journal = ScalingJournal()
        journal.record_begin(1, ScalingOp.add(1), 4, 5,
                             [LogicalMove(BlockId(0, 0), 1, 4)])
        journal.record_apply(1, BlockId(0, 0))
        open_record = journal.open_record()
        assert open_record is not None
        assert open_record.remaining == 0
        journal.record_commit(1)
        assert journal.open_record() is None

    def test_overlapping_begin_rejected(self):
        journal = ScalingJournal()
        journal.record_begin(1, ScalingOp.add(1), 4, 5, [])
        with pytest.raises(JournalError):
            journal.record_begin(2, ScalingOp.add(1), 5, 6, [])

    def test_apply_before_begin_rejected(self):
        journal = ScalingJournal()
        journal._append({"type": "apply", "seq": 1, "block": [0, 0]})
        with pytest.raises(JournalError):
            journal.replay()

    def test_file_journal_roundtrip(self, tmp_path):
        path = tmp_path / "scaling.journal"
        with ScalingJournal(path, fsync=True) as journal:
            journal.record_begin(1, ScalingOp.remove([2]), 5, 4,
                                 [LogicalMove(BlockId(1, 7), 2, 0)])
            journal.record_apply(1, BlockId(1, 7))
            journal.sync()
        # A fresh process reads the same records back.
        (record,) = ScalingJournal(path).replay()
        assert record.op == ScalingOp.remove([2])
        assert record.applied == [BlockId(1, 7)]
        assert record.open

    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "scaling.journal"
        journal = ScalingJournal(path)
        journal.record_begin(1, ScalingOp.add(1), 4, 5, [])
        journal.record_commit(1)
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "begin", "seq": 2, "op"')  # crash mid-append
        (record,) = ScalingJournal(path).replay()
        assert record.committed

    def test_corruption_elsewhere_raises(self, tmp_path):
        path = tmp_path / "scaling.journal"
        path.write_text('not json\n{"type": "commit", "seq": 1}\n')
        with pytest.raises(JournalError):
            ScalingJournal(path).replay()


class TestJournaledScaling:
    def test_offline_scale_writes_full_protocol(self):
        journal = ScalingJournal()
        server = make_server(journal=journal)
        report = server.scale(ScalingOp.add(1))
        (record,) = journal.replay()
        assert record.committed
        assert len(record.plan) == report.blocks_moved
        assert len(record.applied) == report.blocks_moved

    def test_begin_records_logical_endpoints(self):
        journal = ScalingJournal()
        server = make_server(journal=journal)
        pending = server.begin_scale(ScalingOp.add(1))
        (record,) = journal.replay()
        n_after = server.num_disks
        for move in record.plan:
            assert 0 <= move.source_logical < n_after
            assert 0 <= move.target_logical < n_after
            assert move.source_logical != move.target_logical
        # Clean up the open operation.
        session = MigrationSession(
            server.array, pending.plan, journal=journal, op_seq=pending.op_seq
        )
        while not session.done:
            session.step(10_000)
        server.finish_scale(pending)

    def test_abort_rolls_back_to_pre_begin_state(self):
        journal = ScalingJournal()
        server = make_server(journal=journal)
        before_layout = logical_layout(server)
        before_disks = server.num_disks
        before_ops = server.mapper.num_operations

        pending = server.begin_scale(ScalingOp.add(2))
        session = MigrationSession(
            server.array, pending.plan, journal=journal, op_seq=pending.op_seq
        )
        session.step(10_000, max_moves=7)  # partway in, then abort
        rolled_back = server.abort_scale(pending, session)

        assert rolled_back == 7
        assert server.num_disks == before_disks
        assert server.mapper.num_operations == before_ops
        assert logical_layout(server) == before_layout
        assert check_layout(server).clean
        (record,) = journal.replay()
        assert record.aborted
        # The journal accepts a fresh operation after the abort.
        server.scale(ScalingOp.add(1))
        assert journal.replay()[-1].committed

    def test_abort_of_removal_keeps_disks(self):
        journal = ScalingJournal()
        server = make_server(journal=journal)
        pending = server.begin_scale(ScalingOp.remove([1]))
        server.abort_scale(pending)
        assert server.num_disks == 4
        assert check_layout(server).clean

    def test_abort_refuses_finished_operation(self):
        server = make_server(journal=ScalingJournal())
        pending = server.begin_scale(ScalingOp.add(1))
        session = MigrationSession(
            server.array, pending.plan,
            journal=server.journal, op_seq=pending.op_seq,
        )
        while not session.done:
            session.step(10_000)
        server.finish_scale(pending)
        with pytest.raises(ValueError):
            server.abort_scale(pending, session)


class TestResume:
    def test_quiescent_journal_resumes_to_plain_restore(self):
        journal = ScalingJournal()
        server = make_server(journal=journal)
        snapshot = snapshot_server(server)
        server.scale(ScalingOp.add(1))
        server.scale(ScalingOp.remove([0]))

        resumed, pending, session = resume_server(snapshot, journal)
        assert pending is None and session is None
        assert logical_layout(resumed) == logical_layout(server)
        assert check_layout(resumed).clean
        assert resumed.journal is journal

    def test_aborted_operation_skipped_on_resume(self):
        journal = ScalingJournal()
        server = make_server(journal=journal)
        snapshot = snapshot_server(server)
        pending = server.begin_scale(ScalingOp.add(1))
        session = MigrationSession(
            server.array, pending.plan, journal=journal, op_seq=pending.op_seq
        )
        session.step(10_000, max_moves=3)
        server.abort_scale(pending, session)
        server.scale(ScalingOp.add(2))

        resumed, open_pending, open_session = resume_server(snapshot, journal)
        assert open_pending is None and open_session is None
        assert logical_layout(resumed) == logical_layout(server)

    def test_kill_at_every_move_index(self):
        """The tentpole acceptance property, k in {0..M}."""
        # Uninterrupted reference run.
        reference = make_server(num_objects=3, blocks=60)
        op = ScalingOp.add(1)
        reference.scale(op)
        want = logical_layout(reference)

        probe = make_server(journal=ScalingJournal(), num_objects=3, blocks=60)
        snapshot = json.loads(server_to_json(probe))
        total_moves = len(probe.begin_scale(op).plan)
        assert total_moves > 0

        for k in range(total_moves + 1):
            journal = ScalingJournal()
            server = resume_server(snapshot, ScalingJournal())[0]
            server.attach_journal(journal)
            pending = server.begin_scale(op)
            session = MigrationSession(
                server.array, pending.plan,
                journal=journal, op_seq=pending.op_seq,
            )
            moved = len(session.step(10_000_000, max_moves=k))
            assert moved == k
            del server, pending, session  # the crash

            resumed, open_pending, open_session = resume_server(
                snapshot, journal
            )
            assert open_pending is not None
            assert open_session.remaining == total_moves - k
            while not open_session.done:
                open_session.step(10_000_000)
            resumed.finish_scale(open_pending)

            assert logical_layout(resumed) == want, f"diverged at k={k}"
            assert check_layout(resumed).clean, f"fsck dirty at k={k}"

    def test_kill_during_removal_resumes(self):
        journal = ScalingJournal()
        server = make_server(journal=journal)
        server.scale(ScalingOp.add(2))
        snapshot = snapshot_server(server)

        reference = resume_server(snapshot, ScalingJournal())[0]
        reference.scale(ScalingOp.remove([1, 3]))
        want = logical_layout(reference)

        pending = server.begin_scale(ScalingOp.remove([1, 3]))
        session = MigrationSession(
            server.array, pending.plan, journal=journal, op_seq=pending.op_seq
        )
        session.step(10_000, max_moves=len(pending.plan) // 2)

        resumed, open_pending, open_session = resume_server(snapshot, journal)
        while not open_session.done:
            open_session.step(10_000)
        resumed.finish_scale(open_pending)
        assert logical_layout(resumed) == want
        assert check_layout(resumed).clean

    def test_resume_is_crash_idempotent(self):
        """Crashing during resume and resuming again still converges."""
        journal = ScalingJournal()
        server = make_server(journal=journal)
        snapshot = snapshot_server(server)
        pending = server.begin_scale(ScalingOp.add(1))
        session = MigrationSession(
            server.array, pending.plan, journal=journal, op_seq=pending.op_seq
        )
        session.step(10_000, max_moves=5)

        # First resume executes a few more journaled moves, then "crashes".
        _, pending1, session1 = resume_server(snapshot, journal)
        session1.step(10_000, max_moves=3)

        resumed, pending2, session2 = resume_server(snapshot, journal)
        assert session2.remaining == len(pending.plan) - 8
        while not session2.done:
            session2.step(10_000)
        resumed.finish_scale(pending2)
        assert check_layout(resumed).clean

    def test_fsck_reports_in_flight_mid_migration(self):
        journal = ScalingJournal()
        server = make_server(journal=journal)
        pending = server.begin_scale(ScalingOp.add(1))
        session = MigrationSession(
            server.array, pending.plan, journal=journal, op_seq=pending.op_seq
        )
        session.step(10_000, max_moves=4)

        naive = check_layout(server)
        assert not naive.clean  # not-yet-moved blocks look misplaced
        aware = check_layout(server, pending=session.pending_moves)
        assert aware.clean
        assert len(aware.in_flight) == len(naive.misplaced)
        # Passing the whole PendingScale works identically for additions.
        assert check_layout(server, pending=pending).clean

    def test_fsck_mid_removal_uses_survivor_table(self):
        # Mid-removal the mapper indexes the survivors while the doomed
        # disk is still attached; the audit must translate expected
        # homes through the survivor table, not the raw logical order.
        journal = ScalingJournal()
        server = make_server(journal=journal)
        server.scale(ScalingOp.add(1))
        pending = server.begin_scale(ScalingOp.remove([2]))
        session = MigrationSession(
            server.array, pending.plan, journal=journal, op_seq=pending.op_seq
        )
        session.step(10_000, max_moves=len(pending.plan) // 2)

        aware = check_layout(server, pending=pending)
        assert aware.clean
        assert len(aware.in_flight) == session.remaining

        while not session.done:
            session.step(10_000)
        server.finish_scale(pending)
        assert check_layout(server).clean

    def test_mismatched_journal_rejected(self):
        journal = ScalingJournal()
        server = make_server(journal=journal)
        snapshot = snapshot_server(server)
        server.scale(ScalingOp.add(1))
        # Tamper: pretend the journaled op was a removal.
        journal._records[0]["op"] = {"kind": "remove", "removed": [0]}
        with pytest.raises(JournalError):
            resume_server(snapshot, journal)


class TestSnapshotV2:
    def test_v1_snapshot_still_read(self):
        server = make_server()
        server.scale(ScalingOp.add(1))
        snap = snapshot_server(server)
        snap["version"] = 1
        del snap["snapshot_ops"], snap["journal_path"]
        restored = restore_server(snap)
        assert logical_layout(restored) == logical_layout(server)

    def test_disk_count_mismatch_rejected(self):
        snap = snapshot_server(make_server())
        snap["disks"] = snap["disks"][:-1]
        with pytest.raises(ValueError, match="4 disks.*3 disk"):
            restore_server(snap)

    def test_op_stamp_mismatch_rejected(self):
        server = make_server()
        server.scale(ScalingOp.add(1))
        snap = snapshot_server(server)
        snap["snapshot_ops"] = 7
        with pytest.raises(ValueError, match="stamped with 7"):
            restore_server(snap)

    def test_journal_path_recorded(self, tmp_path):
        path = tmp_path / "scaling.journal"
        journal = ScalingJournal(path)
        server = make_server(journal=journal)
        assert snapshot_server(server)["journal_path"] == str(path)
        assert snapshot_server(make_server())["journal_path"] is None
