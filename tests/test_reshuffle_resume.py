"""The journaled online reshuffle: lifecycle, crash recovery, fsck.

The legacy ``reshuffle()`` teleported every block in one unjournaled
step — a crash mid-way left seeds already reset but blocks half-moved,
with no record of which.  These tests pin the re-implementation:
reshuffle is a first-class journaled operation (begin/apply/commit under
its own op kind), resumable from snapshot + journal after a kill at
*every* move index, auditable mid-flight by fsck, and refused outright
while any other operation is in flight (the historical corruption bug).
"""

from __future__ import annotations

import json

import pytest

from repro.core.operations import ScalingOp
from repro.server.cmserver import (
    CMServer,
    OperationInFlightError,
    PendingReshuffle,
)
from repro.server.fsck import check_layout
from repro.server.journal import (
    JournalError,
    ReshuffleOp,
    ScalingJournal,
)
from repro.server.persistence import (
    restore_server,
    resume_server,
    server_to_json,
    snapshot_server,
)
from repro.storage.disk import DiskSpec
from repro.storage.migration import MigrationSession
from repro.workloads.generator import uniform_catalog


def make_server(journal=None, num_objects=3, blocks=60, bits=32):
    catalog = uniform_catalog(
        num_objects, blocks, master_seed=0x7041, bits=bits
    )
    spec = DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=8)
    return CMServer(
        catalog, [spec] * 4, bits=bits, default_spec=spec, journal=journal
    )


def logical_layout(server):
    layout = {}
    for media in server.catalog:
        for index in range(media.num_blocks):
            pid = server.block_location(media.object_id, index)
            layout[(media.object_id, index)] = server.array.logical_of(pid)
    return layout


class TestReshuffleOp:
    def test_round_trip(self):
        op = ReshuffleOp(epoch=3)
        assert ReshuffleOp.from_dict(op.to_dict()) == op
        assert op.to_dict() == {"kind": "reshuffle", "epoch": 3}

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError, match="not a ReshuffleOp"):
            ReshuffleOp.from_dict({"kind": "add", "count": 1})

    def test_record_is_reshuffle(self):
        journal = ScalingJournal()
        journal.record_begin(1, ReshuffleOp(epoch=1), 4, 4, [])
        (record,) = journal.replay()
        assert record.is_reshuffle
        assert record.op == ReshuffleOp(epoch=1)


class TestJournaledLifecycle:
    def test_offline_reshuffle_writes_full_protocol(self):
        journal = ScalingJournal()
        server = make_server(journal=journal)
        moved = server.reshuffle()
        (record,) = journal.replay()
        assert record.is_reshuffle and record.committed
        assert len(record.plan) == moved == len(record.applied)
        assert server.reshuffles == 1

    def test_begin_blocks_second_reshuffle(self):
        server = make_server()
        server.begin_reshuffle()
        with pytest.raises(OperationInFlightError, match="in flight"):
            server.begin_reshuffle()

    def test_begin_blocks_scaling(self):
        server = make_server()
        server.begin_reshuffle()
        with pytest.raises(OperationInFlightError, match="finish it"):
            server.begin_scale(ScalingOp.add(1))

    def test_reshuffle_refused_mid_migration(self):
        """The historical bug: a reshuffle during a live migration reset
        seeds under half-moved blocks.  Now it refuses cleanly."""
        server = make_server()
        pending = server.begin_scale(ScalingOp.add(1))
        with pytest.raises(OperationInFlightError, match="PendingScale"):
            server.reshuffle()
        # The refusal must not have touched seeds or the backend.
        assert server.reshuffles == 0
        assert server.backend.num_operations == 1
        session = MigrationSession(server.array, pending.plan)
        session.step(10_000)
        server.finish_scale(pending)
        assert check_layout(server).clean
        server.reshuffle()  # fine once quiescent
        assert server.reshuffles == 1

    def test_finish_twice_rejected(self):
        server = make_server()
        pending = server.begin_reshuffle()
        MigrationSession(server.array, pending.plan).step(10_000)
        server.finish_reshuffle(pending)
        with pytest.raises(ValueError, match="already finished"):
            server.finish_reshuffle(pending)

    def test_serving_reads_old_or_new_mid_reshuffle(self):
        """Mid-reset, the inventory answers the *old* home for unmoved
        blocks and the *new* home for moved ones — exactly the
        mid-migration contract serving relies on."""
        server = make_server()
        pending = server.begin_reshuffle()
        session = MigrationSession(server.array, pending.plan)
        k = len(pending.plan) // 2
        session.step(10_000, max_moves=k)
        moved = {m.block_id for m in session.executed}
        for m in pending.plan.moves:
            want = (
                m.target_physical if m.block_id in moved
                else m.source_physical
            )
            assert server.array.home_of(m.block_id) == want
        session.step(10_000)
        server.finish_reshuffle(pending)

    def test_fsck_classifies_in_flight_reset_moves(self):
        server = make_server()
        pending = server.begin_reshuffle()
        session = MigrationSession(server.array, pending.plan)
        session.step(10_000, max_moves=len(pending.plan) // 2)
        # Without context the unmoved half looks misplaced...
        blind = check_layout(server)
        assert not blind.clean
        # ...with the pending reshuffle they classify as in-flight.
        aware = check_layout(server, pending)
        assert aware.clean
        assert len(aware.in_flight) == len(pending.plan) - (
            len(pending.plan) // 2
        )
        session.step(10_000)
        server.finish_reshuffle(pending)
        assert check_layout(server).clean


class TestCrashResume:
    def test_kill_at_every_move_index(self):
        """The tentpole acceptance property, k in {0..M}: a crash after
        any number of journaled reshuffle moves resumes bit-identically
        to the uninterrupted run."""
        reference = make_server()
        reference.scale(ScalingOp.add(2))
        reference.reshuffle()
        want = logical_layout(reference)

        probe = make_server(journal=ScalingJournal())
        probe.scale(ScalingOp.add(2))
        snapshot = json.loads(server_to_json(probe))
        total_moves = len(probe.begin_reshuffle().plan)
        assert total_moves > 0

        for k in range(total_moves + 1):
            journal = ScalingJournal()
            server = restore_server(snapshot)
            server.attach_journal(journal)
            pending = server.begin_reshuffle()
            session = MigrationSession(
                server.array, pending.plan,
                journal=journal, op_seq=pending.op_seq,
            )
            moved = len(session.step(10_000_000, max_moves=k))
            assert moved == k
            del server, pending, session  # the crash

            resumed, open_pending, open_session = resume_server(
                snapshot, journal
            )
            assert isinstance(open_pending, PendingReshuffle)
            assert open_session.remaining == total_moves - k
            while not open_session.done:
                open_session.step(10_000_000)
            resumed.finish_reshuffle(open_pending)

            assert logical_layout(resumed) == want, f"diverged at k={k}"
            assert check_layout(resumed).clean, f"fsck dirty at k={k}"
            assert resumed.reshuffles == 1

    def test_committed_reshuffle_replayed_wholesale(self):
        journal = ScalingJournal()
        server = make_server(journal=journal)
        server.scale(ScalingOp.add(1))
        snapshot = snapshot_server(server)
        server.reshuffle()
        server.scale(ScalingOp.add(1))  # post-reset seq space starts at 1
        want = logical_layout(server)
        del server

        resumed, pending, session = resume_server(snapshot, journal)
        assert pending is None and session is None
        assert resumed.reshuffles == 1
        assert resumed.backend.num_operations == 1
        assert logical_layout(resumed) == want
        assert check_layout(resumed).clean

    def test_snapshot_after_reshuffle_skips_stale_records(self):
        journal = ScalingJournal()
        server = make_server(journal=journal)
        server.scale(ScalingOp.add(1))
        server.reshuffle()
        snapshot = snapshot_server(server)  # reflects the reset already
        server.scale(ScalingOp.add(2))
        want = logical_layout(server)
        del server

        resumed, pending, session = resume_server(snapshot, journal)
        assert pending is None and session is None
        assert logical_layout(resumed) == want

    def test_resume_is_crash_idempotent(self):
        """Crashing during recovery and recovering again is safe: the
        journal is not re-written while replaying (it is detached)."""
        journal = ScalingJournal()
        server = make_server(journal=journal)
        snapshot = snapshot_server(server)
        pending = server.begin_reshuffle()
        MigrationSession(
            server.array, pending.plan, journal=journal,
            op_seq=pending.op_seq,
        ).step(10_000, max_moves=3)
        del server, pending
        records_before = len(journal._read_raw())

        # First recovery attempt "crashes" (we just drop it).
        resume_server(snapshot, journal)
        assert len(journal._read_raw()) == records_before

        resumed, open_pending, open_session = resume_server(snapshot, journal)
        while not open_session.done:
            open_session.step(10_000)
        resumed.finish_reshuffle(open_pending)
        assert check_layout(resumed).clean

    def test_torn_final_line_on_reshuffle_record_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = ScalingJournal(path)
        server = make_server(journal=journal)
        snapshot = snapshot_server(server)
        pending = server.begin_reshuffle()
        MigrationSession(
            server.array, pending.plan, journal=journal,
            op_seq=pending.op_seq,
        ).step(10_000, max_moves=2)
        journal.close()
        # The classic crash artifact: a half-written apply record.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "apply", "seq": 1, "blo')
        del server, pending

        resumed, open_pending, open_session = resume_server(
            snapshot, str(path)
        )
        assert isinstance(open_pending, PendingReshuffle)
        # The torn third apply was dropped: only 2 moves were replayed.
        assert open_session.remaining == len(open_pending.plan) - 2
        while not open_session.done:
            open_session.step(10_000)
        resumed.finish_reshuffle(open_pending)
        assert check_layout(resumed).clean

    def test_wrong_epoch_rejected(self):
        journal = ScalingJournal()
        server = make_server(journal=journal)
        snapshot = snapshot_server(server)
        server.reshuffle()
        del server
        # Tamper: claim the journal's reshuffle is epoch 5.
        journal._records[0]["op"]["epoch"] = 5
        with pytest.raises(JournalError, match="epoch=5"):
            resume_server(snapshot, journal)


class TestSnapshotV4:
    def test_seed_epoch_round_trips(self):
        server = make_server()
        server.reshuffle()
        server.reshuffle()
        snapshot = snapshot_server(server)
        assert snapshot["version"] == 4
        assert snapshot["seed_epoch"] == 2
        restored = restore_server(snapshot)
        assert restored.catalog._seed_epoch == 2
        # The next reshuffle must derive the same seeds on both.
        server.reshuffle()
        restored.reshuffle()
        assert logical_layout(restored) == logical_layout(server)

    def test_v3_snapshot_infers_epoch_from_reshuffles(self):
        server = make_server()
        server.reshuffle()
        snapshot = snapshot_server(server)
        del snapshot["seed_epoch"]
        snapshot["version"] = 3  # what the previous build wrote
        restored = restore_server(snapshot)
        assert restored.catalog._seed_epoch == 1
        assert logical_layout(restored) == logical_layout(server)
