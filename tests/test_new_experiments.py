"""Tests for the removal-patterns and generator-sensitivity experiments."""

from __future__ import annotations

import pytest

from repro.experiments import generator_sensitivity, removal_patterns


class TestRemovalPatterns:
    @pytest.fixture(scope="class")
    def results(self):
        return removal_patterns.run_removal_patterns(num_blocks=8_000)

    def test_both_schedules_present(self, results):
        assert [r.schedule_name for r in results] == ["removals-only", "mixed"]

    def test_ro1_overhead_near_one(self, results):
        for result in results:
            for op in result.ops:
                assert 0.85 < op.overhead < 1.15

    def test_ro2_destinations_uniform(self, results):
        for result in results:
            for op in result.ops:
                assert op.destination_p > 1e-4

    def test_cov_stays_low(self, results):
        for result in results:
            for op in result.ops:
                assert op.cov_after < 0.1

    def test_removals_consume_budget(self, results):
        removal_only = results[0]
        # 4 removals from 10 disks at b=32 leave budget, but not all of it.
        assert 0 < removal_only.remaining_budget < 8

    def test_report_renders(self, results):
        text = removal_patterns.report(results)
        assert "removals-only" in text and "mixed" in text


class TestGeneratorSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return generator_sensitivity.run_generator_sensitivity(
            num_blocks=10_000, operations=5
        )

    def test_all_families_measured(self, result):
        assert {c.family for c in result.curves} == {
            "splitmix64",
            "xorshift64star",
            "lcg48",
            "pcg32",
        }

    def test_curves_full_length(self, result):
        for curve in result.curves:
            assert len(curve.cov_by_ops) == len(result.disk_counts) == 6

    def test_no_family_departs_from_floor(self, result):
        for curve in result.curves:
            for cov, floor in zip(curve.cov_by_ops, result.floors):
                assert cov < 3.0 * floor

    def test_floor_grows_with_disks(self, result):
        assert list(result.floors) == sorted(result.floors)

    def test_report_renders(self, result):
        assert "sampling floor" in generator_sensitivity.report(result)
