"""Stateful property testing of the DiskArray inventory.

A hypothesis rule machine churns one array — places, moves, drops,
group additions and removals — and checks the inventory invariants
after every step: the home index and per-disk contents agree, loads sum
to the population, capacity is never exceeded, and the logical order
always enumerates exactly the attached disks.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.storage.array import DiskArray, PlacementConflictError
from repro.storage.block import Block
from repro.storage.disk import DiskSpec

CAPACITY = 6
MAX_DISKS = 8


class ArrayMachine(RuleBasedStateMachine):
    @initialize(n0=st.integers(1, 4))
    def setup(self, n0):
        self.array = DiskArray([DiskSpec(capacity_blocks=CAPACITY)] * n0)
        self.next_block = 0
        self.resident: dict = {}  # block_id -> block

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule(logical_pick=st.integers(0, 10**6))
    def place_block(self, logical_pick):
        logical = logical_pick % self.array.num_disks
        block = Block(0, self.next_block, x0=self.next_block)
        self.next_block += 1
        try:
            self.array.place(block, logical)
        except PlacementConflictError:
            pass  # disk full — acceptable, nothing changed
        else:
            self.resident[block.block_id] = block

    @precondition(lambda self: self.resident)
    @rule(block_pick=st.integers(0, 10**6), target_pick=st.integers(0, 10**6))
    def move_block(self, block_pick, target_pick):
        block_ids = sorted(self.resident)
        block_id = block_ids[block_pick % len(block_ids)]
        target = self.array.physical_ids[
            target_pick % self.array.num_disks
        ]
        try:
            self.array.move(block_id, target)
        except PlacementConflictError:
            pass

    @precondition(lambda self: self.resident)
    @rule(block_pick=st.integers(0, 10**6))
    def drop_block(self, block_pick):
        block_ids = sorted(self.resident)
        block_id = block_ids[block_pick % len(block_ids)]
        self.array.drop(block_id)
        del self.resident[block_id]

    @precondition(lambda self: self.array.num_disks < MAX_DISKS)
    @rule(count=st.integers(1, 2))
    def add_group(self, count):
        self.array.add_group([DiskSpec(capacity_blocks=CAPACITY)] * count)

    @precondition(lambda self: self.array.num_disks > 1)
    @rule(pick=st.integers(0, 10**6))
    def remove_empty_disk(self, pick):
        empties = [
            logical
            for logical in range(self.array.num_disks)
            if not self.array.blocks_on(logical)
        ]
        if not empties or len(empties) == self.array.num_disks == 1:
            return
        victim = empties[pick % len(empties)]
        if self.array.num_disks - 1 >= 1:
            self.array.remove_group([victim])

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def population_consistent(self):
        assert self.array.total_blocks == len(self.resident)
        assert sum(self.array.load_vector()) == len(self.resident)

    @invariant()
    def homes_agree_with_contents(self):
        for block_id in self.resident:
            home = self.array.home_of(block_id)
            assert block_id in {
                b.block_id for b in self.array.blocks_on_physical(home)
            }

    @invariant()
    def capacity_respected(self):
        for logical in range(self.array.num_disks):
            assert len(self.array.blocks_on(logical)) <= CAPACITY

    @invariant()
    def logical_order_is_consistent(self):
        pids = self.array.physical_ids
        assert len(set(pids)) == len(pids) == self.array.num_disks
        for logical, pid in enumerate(pids):
            assert self.array.physical_at(logical) == pid
            assert self.array.logical_of(pid) == logical


TestArrayMachine = ArrayMachine.TestCase
TestArrayMachine.settings = settings(
    max_examples=30, stateful_step_count=25, deadline=None
)
