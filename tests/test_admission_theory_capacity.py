"""Tests for admission policies, balls-in-bins theory, and
capacity-safe migration ordering."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.stats import coefficient_of_variation
from repro.analysis.theory import (
    cov_excess,
    expected_load_cov,
    expected_max_load,
    load_standard_deviation,
)
from repro.server.admission import (
    AggregateAdmission,
    StatisticalAdmission,
    UtilizationAdmission,
)
from repro.server.objects import MediaObject
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream
from repro.storage.array import DiskArray
from repro.storage.block import Block, BlockId
from repro.storage.disk import DiskSpec
from repro.storage.migration import (
    CapacityDeadlockError,
    MigrationPlan,
    MigrationSession,
    PhysicalMove,
    order_capacity_safe,
)
from repro.workloads.generator import random_x0s


def make_array(n=4, bandwidth=4, capacity=100):
    return DiskArray(
        [
            DiskSpec(
                capacity_blocks=capacity, bandwidth_blocks_per_round=bandwidth
            )
        ]
        * n
    )


class TestAggregateAdmission:
    def test_admits_to_capacity(self):
        policy = AggregateAdmission()
        array = make_array(n=2, bandwidth=3)  # total 6
        assert policy.admits(array, active_demand=5, new_rate=1)
        assert not policy.admits(array, active_demand=6, new_rate=1)


class TestUtilizationAdmission:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            UtilizationAdmission(0.0)
        with pytest.raises(ValueError):
            UtilizationAdmission(1.5)

    def test_leaves_headroom(self):
        policy = UtilizationAdmission(0.5)
        array = make_array(n=2, bandwidth=4)  # total 8, budget 4
        assert policy.admits(array, active_demand=3, new_rate=1)
        assert not policy.admits(array, active_demand=4, new_rate=1)


class TestStatisticalAdmission:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            StatisticalAdmission(0.0)
        with pytest.raises(ValueError):
            StatisticalAdmission(1.0)

    def test_zero_demand_never_overflows(self):
        array = make_array()
        assert StatisticalAdmission.round_overflow_probability(array, 0) == 0.0

    def test_overflow_probability_monotone_in_demand(self):
        array = make_array(n=8, bandwidth=4)
        probs = [
            StatisticalAdmission.round_overflow_probability(array, d)
            for d in range(0, 33, 4)
        ]
        assert probs == sorted(probs)

    def test_stricter_than_aggregate(self):
        """The statistical policy admits fewer streams than the aggregate
        bound — it prices in per-disk variance."""
        array = make_array(n=8, bandwidth=4)  # aggregate capacity 32
        strict = StatisticalAdmission(overflow_probability=0.05)
        assert strict.max_admissible_demand(array) < 32

    def test_probability_matches_simulation(self):
        """Union-bound estimate vs Monte Carlo for one configuration."""
        array = make_array(n=8, bandwidth=4)
        demand = 20
        estimate = StatisticalAdmission.round_overflow_probability(array, demand)
        rng = np.random.default_rng(7)
        trials = 4_000
        overflows = 0
        for __ in range(trials):
            loads = np.bincount(rng.integers(0, 8, size=demand), minlength=8)
            overflows += int((loads > 4).any())
        simulated = overflows / trials
        # Union bound overestimates, but stays in the same regime.
        assert estimate >= simulated - 0.03
        assert estimate < simulated + 0.25

    def test_scheduler_integration(self):
        array = make_array(n=4, bandwidth=4, capacity=1000)
        media = MediaObject(object_id=0, name="m", num_blocks=50, seed=1, bits=32)
        for i in range(media.num_blocks):
            array.place(Block(0, i, x0=i), i % 4)
        sched = RoundScheduler(array, admission=StatisticalAdmission(0.02))
        admitted = 0
        with pytest.raises(ValueError):
            for sid in range(100):
                sched.admit(Stream(sid, media))
                admitted += 1
        # Strictly fewer than the aggregate capacity of 16.
        assert 0 < admitted < 16


class TestTheory:
    def test_validation(self):
        with pytest.raises(ValueError):
            expected_load_cov(0, 4)
        with pytest.raises(ValueError):
            expected_load_cov(10, 0)
        with pytest.raises(ValueError):
            load_standard_deviation(0, 4)

    def test_single_disk_degenerate(self):
        assert expected_load_cov(100, 1) == 0.0
        assert expected_max_load(100, 1) == 100.0

    def test_cov_floor_matches_measurement(self):
        """Complete-redistribution loads hit the multinomial floor."""
        n, b = 10, 50_000
        x0s = random_x0s(b, bits=32, seed=3)
        loads = [0] * n
        for x0 in x0s:
            loads[x0 % n] += 1
        measured = coefficient_of_variation(loads)
        floor = expected_load_cov(b, n)
        assert 0.5 * floor < measured < 2.0 * floor

    def test_expected_max_load_sane(self):
        n, b = 8, 20_000
        rng = np.random.default_rng(11)
        maxima = [
            np.bincount(rng.integers(0, n, size=b), minlength=n).max()
            for __ in range(50)
        ]
        predicted = expected_max_load(b, n)
        assert abs(float(np.mean(maxima)) - predicted) / predicted < 0.02

    def test_cov_excess(self):
        floor = expected_load_cov(10_000, 8)
        assert cov_excess(floor, 10_000, 8) == 0.0
        assert cov_excess(2 * floor, 10_000, 8) == pytest.approx(
            math.sqrt(3) * floor
        )


class TestCapacitySafeOrdering:
    def _tight_array(self):
        """Three disks of capacity 2: A=[a0,a1] B=[b0,b1] C=[c0]."""
        array = DiskArray([DiskSpec(capacity_blocks=2)] * 3)
        array.place(Block(0, 0, 0), 0)
        array.place(Block(0, 1, 1), 0)
        array.place(Block(1, 0, 2), 1)
        array.place(Block(1, 1, 3), 1)
        array.place(Block(2, 0, 4), 2)
        return array

    def test_reorders_blocked_move_last(self):
        array = self._tight_array()
        a, b, c = array.physical_ids
        # a0 -> B (B full!) must wait for b0 -> C (C has one slot).
        plan = MigrationPlan.from_moves(
            [
                PhysicalMove(BlockId(0, 0), a, b),
                PhysicalMove(BlockId(1, 0), b, c),
            ]
        )
        ordered = order_capacity_safe(array, plan)
        assert [m.block_id for m in ordered.moves] == [
            BlockId(1, 0),
            BlockId(0, 0),
        ]
        MigrationSession(array, ordered).run(budget=10)
        assert array.home_of(BlockId(0, 0)) == b

    def test_deadlock_detected(self):
        """A swap between two full disks has no safe order."""
        array = DiskArray([DiskSpec(capacity_blocks=1)] * 2)
        a, b = array.physical_ids
        array.place_physical(Block(0, 0, 0), a)
        array.place_physical(Block(1, 0, 1), b)
        plan = MigrationPlan.from_moves(
            [
                PhysicalMove(BlockId(0, 0), a, b),
                PhysicalMove(BlockId(1, 0), b, a),
            ]
        )
        with pytest.raises(CapacityDeadlockError):
            order_capacity_safe(array, plan)

    def test_session_defers_capacity_blocked_moves(self):
        """Even unordered, the session retries blocked moves next round."""
        array = self._tight_array()
        a, b, c = array.physical_ids
        plan = MigrationPlan.from_moves(
            [
                PhysicalMove(BlockId(0, 0), a, b),  # blocked round 1
                PhysicalMove(BlockId(1, 0), b, c),
            ]
        )
        session = MigrationSession(array, plan)
        report = session.run(budget=10)
        assert report.moves_executed == 2
        assert report.rounds_used == 2  # blocked move lands in round 2

    def test_noop_plan(self):
        array = self._tight_array()
        ordered = order_capacity_safe(array, MigrationPlan.from_moves([]))
        assert len(ordered) == 0
