"""Edge-case tests sweeping the corners the main suites don't reach."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.operations import OperationLog, ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.core.vectorized import (
    chain_x_array,
    load_vector_array,
    remap_add_array,
    remap_remove_array,
)
from repro.experiments.tables import format_table
from repro.server.objects import MediaObject
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream
from repro.storage.array import DiskArray
from repro.storage.block import Block
from repro.storage.disk import DiskSpec


class TestScalingEdges:
    def test_one_disk_array_can_only_grow(self):
        mapper = ScaddarMapper(n0=1, bits=32)
        assert mapper.disk_of(12345) == 0
        mapper.apply(ScalingOp.add(1))
        assert mapper.current_disks == 2
        with pytest.raises(ValueError):
            mapper.apply(ScalingOp.remove([0, 1]))

    def test_grow_from_one_disk_moves_half(self):
        mapper = ScaddarMapper(n0=1, bits=32)
        before = {x: mapper.disk_of(x) for x in range(20_000)}
        mapper.apply(ScalingOp.add(1))
        moved = sum(1 for x in before if mapper.disk_of(x) != before[x])
        assert abs(moved / 20_000 - 0.5) < 0.02

    def test_shrink_to_one_disk(self):
        mapper = ScaddarMapper(n0=3, bits=32)
        mapper.apply(ScalingOp.remove([0, 2]))
        assert mapper.current_disks == 1
        assert all(mapper.disk_of(x) == 0 for x in (0, 7, 999))

    def test_huge_group_addition(self):
        mapper = ScaddarMapper(n0=2, bits=64)
        mapper.apply(ScalingOp.add(1000))
        assert mapper.current_disks == 1002
        assert 0 <= mapper.disk_of(2**60) < 1002

    def test_x0_zero_is_valid_everywhere(self):
        mapper = ScaddarMapper(n0=5, bits=32)
        for op in (ScalingOp.add(3), ScalingOp.remove([0]), ScalingOp.remove([6])):
            mapper.apply(op)
            assert 0 <= mapper.disk_of(0) < mapper.current_disks

    def test_x0_at_range_max(self):
        mapper = ScaddarMapper(n0=4, bits=32)
        top = mapper.range_size - 1
        mapper.apply(ScalingOp.add(1))
        assert 0 <= mapper.disk_of(top) < 5


class TestVectorizedEdges:
    def test_empty_array(self):
        log = OperationLog(n0=3)
        log.append(ScalingOp.add(1))
        assert chain_x_array([], log).size == 0
        assert load_vector_array([], log).tolist() == [0, 0, 0, 0]

    def test_remove_validation(self):
        with pytest.raises(ValueError):
            remap_remove_array(np.array([1], dtype=np.uint64), 3, {3})

    def test_add_validation(self):
        with pytest.raises(ValueError):
            remap_add_array(np.array([1], dtype=np.uint64), 0, 1)

    def test_accepts_python_lists(self):
        x_new, moved = remap_add_array([0, 5, 10], 4, 5)
        assert len(x_new) == 3
        assert moved.dtype == bool


class TestTablesEdges:
    def test_single_column(self):
        text = format_table(("only",), [("a",), ("bb",)])
        assert "only" in text

    def test_negative_and_large_numbers(self):
        text = format_table(("v",), [(-5,), (10**15,)])
        assert "-5" in text and str(10**15) in text

    def test_nan_rendering(self):
        text = format_table(("v",), [(float("nan"),)])
        assert "nan" in text

    def test_negative_infinity(self):
        text = format_table(("v",), [(float("-inf"),)])
        assert "-inf" in text

    def test_mixed_type_column_left_aligned(self):
        text = format_table(("v",), [("word",), (3,)])
        lines = text.splitlines()
        assert lines[2].startswith("word")


class TestSchedulerEdges:
    def _setup(self, bandwidth=1, n_disks=2):
        array = DiskArray(
            [
                DiskSpec(capacity_blocks=100, bandwidth_blocks_per_round=bandwidth)
            ]
            * n_disks
        )
        media = MediaObject(object_id=0, name="m", num_blocks=10, seed=3, bits=32)
        for i in range(10):
            array.place(Block(0, i, i), i % n_disks)
        return array, media

    def test_per_stream_hiccup_accounting(self):
        array, media = self._setup()
        sched = RoundScheduler(array)
        s1, s2 = Stream(1, media), Stream(2, media)
        sched.admit(s1)
        sched.admit(s2)
        sched.run_round()  # both want block 0 on disk 0, bandwidth 1
        assert sum(sched.hiccups_by_stream.values()) == 1
        assert set(sched.hiccups_by_stream) <= {1, 2}

    def test_round_with_no_streams(self):
        array, __ = self._setup()
        sched = RoundScheduler(array)
        report = sched.run_round()
        assert report.requested == 0
        assert report.hiccups == 0
        assert sum(report.spare_by_physical.values()) == 2

    def test_paused_stream_demands_nothing(self):
        array, media = self._setup(bandwidth=4)
        sched = RoundScheduler(array)
        stream = Stream(1, media)
        sched.admit(stream)
        stream.pause()
        report = sched.run_round()
        assert report.requested == 0
        assert stream.position == 0

    def test_finished_streams_do_not_block_admission(self):
        array, media = self._setup(bandwidth=1, n_disks=2)
        sched = RoundScheduler(array)
        short = MediaObject(object_id=0, name="s", num_blocks=1, seed=3, bits=32)
        done = Stream(1, short)
        done.deliver(1)
        sched.admit(done)  # inactive: should not count toward demand
        sched.admit(Stream(2, media))
        sched.admit(Stream(3, media))  # 2 active = capacity, OK


class TestMediaObjectEdges:
    def test_multi_rate_object(self):
        media = MediaObject(
            object_id=0, name="hd", num_blocks=10, seed=1, bits=32,
            blocks_per_round=3,
        )
        stream = Stream(0, media)
        assert len(stream.blocks_needed()) == 3
        stream.deliver(3)
        assert stream.position == 3

    def test_single_block_object(self):
        media = MediaObject(object_id=0, name="tiny", num_blocks=1, seed=1, bits=32)
        assert len(media.blocks()) == 1
        stream = Stream(0, media)
        stream.deliver(1)
        assert not stream.is_active


class TestOperationLogEdges:
    def test_remove_then_add_same_size(self):
        log = OperationLog(n0=4)
        log.append(ScalingOp.remove([3]))
        log.append(ScalingOp.add(1))
        assert log.current_disks == 4
        assert log.product_n() == 4 * 3 * 4

    def test_unfairness_bound_infinite_when_range_dies(self):
        mapper = ScaddarMapper(n0=4, bits=8)
        for __ in range(4):
            mapper.apply(ScalingOp.add(1))
        assert math.isinf(mapper.unfairness_bound())
        # Lookups still work (degraded, but defined).
        assert 0 <= mapper.disk_of(200) < mapper.current_disks
