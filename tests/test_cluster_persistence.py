"""Cluster persistence: manifest round-trip, crash resume, CLI verbs.

The pledges under test:

* a manifest restores the cluster bit-exactly (logical block layout,
  routing, namespace) on every registered router backend;
* ``resume_cluster`` lands on the exact same layout as an uncrashed run
  no matter where in the rebalance the crash happened — including the
  composition with a shard's own scaling journal;
* the cluster fsck aggregates per-shard ``in_flight`` classification
  for shards mid-scale;
* the ``scaddar cluster`` CLI verbs drive the same machinery.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterJournal,
    check_cluster,
    cluster_to_json,
    restore_cluster,
    resume_cluster,
    snapshot_cluster,
)
from repro.core.operations import ScalingOp
from repro.placement.backends import BACKENDS
from repro.server.cmserver import OperationInFlightError
from repro.server.journal import JournalError, ScalingJournal
from repro.server.persistence import SnapshotError
from repro.storage.disk import DiskSpec

SPEC = DiskSpec(capacity_blocks=50_000, bandwidth_blocks_per_round=8)


def build_cluster(
    num_shards: int = 3,
    num_objects: int = 14,
    router_backend: str = "jump_hash",
    **kwargs,
) -> ClusterCoordinator:
    coordinator = ClusterCoordinator.create(
        num_shards, 3, SPEC, bits=32, master_seed=0xFEED,
        router_backend=router_backend, **kwargs,
    )
    for i in range(num_objects):
        coordinator.add_object(f"title-{i}", 30 + i)
    return coordinator


def cluster_layout(coordinator: ClusterCoordinator) -> dict:
    layout = {}
    for gid in coordinator.object_ids:
        shard_id, physicals = coordinator.block_locations(gid)
        array = coordinator.shard(shard_id).server.array
        layout[gid] = (
            shard_id,
            tuple(array.logical_of(pid) for pid in physicals),
        )
    return layout


class TestManifestRoundTrip:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_round_trip_every_router_backend(self, backend):
        coordinator = build_cluster(router_backend=backend)
        restored = restore_cluster(snapshot_cluster(coordinator))
        assert restored.shard_ids == coordinator.shard_ids
        assert restored.object_ids == coordinator.object_ids
        assert cluster_layout(restored) == cluster_layout(coordinator)
        assert check_cluster(restored).clean
        # The restored namespace keeps allocating where it left off.
        gid = restored.add_object("fresh", 10)
        assert gid == coordinator.num_objects

    def test_round_trip_after_reshard(self):
        coordinator = build_cluster()
        coordinator.reshard(ScalingOp.add(2))
        restored = restore_cluster(cluster_to_json(coordinator))
        assert cluster_layout(restored) == cluster_layout(coordinator)
        assert restored._next_shard_id == coordinator._next_shard_id

    def test_snapshot_refused_mid_rebalance(self):
        coordinator = build_cluster()
        pending = coordinator.begin_reshard(ScalingOp.add(1))
        with pytest.raises(OperationInFlightError):
            snapshot_cluster(coordinator)
        coordinator.execute_reshard(pending)
        coordinator.finish_reshard(pending)
        snapshot_cluster(coordinator)

    def test_version_check(self):
        manifest = snapshot_cluster(build_cluster(num_objects=2))
        manifest["version"] = 99
        with pytest.raises(SnapshotError):
            restore_cluster(manifest)

    def test_object_entry_must_match_shard_catalog(self):
        manifest = snapshot_cluster(build_cluster(num_objects=4))
        manifest["objects"][0]["name"] = "imposter"
        with pytest.raises(SnapshotError):
            restore_cluster(manifest)

    def test_missing_local_id_detected(self):
        manifest = snapshot_cluster(build_cluster(num_objects=4))
        manifest["objects"][0]["local_id"] = 777
        with pytest.raises(SnapshotError):
            restore_cluster(manifest)

    def test_next_local_id_survives_newest_removal(self):
        coordinator = build_cluster(num_objects=6)
        # Drop the newest object of some shard: max(ids)+1 would now
        # undercount, next_local_id must not.
        newest = max(
            coordinator.object_ids, key=lambda g: coordinator.local_id_of(g)
        )
        shard_id = coordinator.shard_of(newest)
        allocator = coordinator.shard(shard_id).server.catalog._next_id
        coordinator.remove_object(newest)
        restored = restore_cluster(snapshot_cluster(coordinator))
        assert (
            restored.shard(shard_id).server.catalog._next_id == allocator
        )


class TestResume:
    def _manifest_and_journal(self, tmp_path, num_objects=14):
        path = str(tmp_path / "cluster.journal")
        coordinator = build_cluster(
            num_objects=num_objects, journal=ClusterJournal(path)
        )
        manifest = snapshot_cluster(coordinator)
        return coordinator, manifest, path

    def test_resume_at_every_move_index(self, tmp_path):
        coordinator, manifest, path = self._manifest_and_journal(tmp_path)
        pending = coordinator.begin_reshard(ScalingOp.add(2))
        coordinator.execute_reshard(pending)
        coordinator.finish_reshard(pending)
        expected = cluster_layout(coordinator)
        coordinator.journal.close()
        lines = open(path, encoding="utf-8").read().splitlines(keepends=True)
        begin = [l for l in lines if json.loads(l)["type"] == "begin"]
        applies = [l for l in lines if json.loads(l)["type"] == "apply"]
        assert len(applies) == len(pending.moves) >= 3

        for crash_at in range(len(applies) + 1):
            partial = tmp_path / f"crash-{crash_at}.journal"
            partial.write_text(
                "".join(begin + applies[:crash_at]), encoding="utf-8"
            )
            resumed, open_pending = resume_cluster(
                dict(manifest), str(partial)
            )
            assert open_pending is not None
            assert len(open_pending.applied) == crash_at
            assert check_cluster(resumed, open_pending).clean
            resumed.execute_reshard(open_pending)
            resumed.finish_reshard(open_pending)
            assert cluster_layout(resumed) == expected
            resumed.journal.close()

    def test_resume_committed_journal_is_quiescent(self, tmp_path):
        coordinator, manifest, path = self._manifest_and_journal(tmp_path)
        coordinator.reshard(ScalingOp.add(1))
        expected = cluster_layout(coordinator)
        coordinator.journal.close()
        resumed, pending = resume_cluster(manifest, path)
        assert pending is None
        assert cluster_layout(resumed) == expected

    def test_resume_skips_aborted_records(self, tmp_path):
        coordinator, manifest, path = self._manifest_and_journal(tmp_path)
        aborted = coordinator.begin_reshard(ScalingOp.add(1))
        coordinator.migrate_next(aborted)
        coordinator.abort_reshard(aborted)
        committed = coordinator.reshard(ScalingOp.add(1))
        coordinator.journal.close()
        resumed, pending = resume_cluster(manifest, path)
        assert pending is None
        # The aborted op never spawned a shard on resume, yet ids match.
        assert resumed._next_shard_id == coordinator._next_shard_id
        assert resumed.shard_ids == coordinator.shard_ids
        # Abort rolled the router back, so the committed op reused the seq.
        assert committed.seq == aborted.seq
        assert cluster_layout(resumed) == cluster_layout(coordinator)

    def test_resume_rejects_foreign_plan(self, tmp_path):
        coordinator, manifest, path = self._manifest_and_journal(tmp_path)
        pending = coordinator.begin_reshard(ScalingOp.add(1))
        coordinator.execute_reshard(pending)
        coordinator.finish_reshard(pending)
        coordinator.journal.close()
        # Tamper with the journaled plan: resume must notice the
        # re-derived plan disagrees.
        lines = open(path, encoding="utf-8").read().splitlines()
        entries = [json.loads(line) for line in lines]
        for entry in entries:
            if entry["type"] == "begin" and entry["plan"]:
                entry["plan"][0][0] += 1000
        tampered = tmp_path / "tampered.journal"
        tampered.write_text(
            "".join(json.dumps(e) + "\n" for e in entries), encoding="utf-8"
        )
        with pytest.raises(JournalError):
            resume_cluster(manifest, str(tampered))

    def test_resume_rejects_seq_gap(self, tmp_path):
        coordinator, manifest, path = self._manifest_and_journal(tmp_path)
        coordinator.reshard(ScalingOp.add(1))
        coordinator.journal.close()
        entries = [
            json.loads(line)
            for line in open(path, encoding="utf-8").read().splitlines()
        ]
        for entry in entries:
            entry["seq"] += 5
        gapped = tmp_path / "gapped.journal"
        gapped.write_text(
            "".join(json.dumps(e) + "\n" for e in entries), encoding="utf-8"
        )
        with pytest.raises(JournalError):
            resume_cluster(manifest, str(gapped))

    def test_resume_composes_with_shard_journal(self, tmp_path):
        """A shard crash mid-disk-scale resumes through its own journal
        before the cluster journal replays on top."""
        cluster_path = str(tmp_path / "cluster.journal")
        shard_path = str(tmp_path / "shard0.journal")
        coordinator = build_cluster(journal=ClusterJournal(cluster_path))
        shard = coordinator.shards[0]
        shard.server.attach_journal(ScalingJournal(shard_path))
        manifest = snapshot_cluster(coordinator)
        disks_before = shard.server.num_disks

        # The shard begins a disk-level scale... and the process dies.
        shard.server.begin_scale(ScalingOp.add(1))
        shard.server.journal.close()

        resumed, pending = resume_cluster(
            manifest, cluster_path, shard_journals={0: shard_path}
        )
        assert pending is None
        # The open disk-level op was completed synchronously.
        assert resumed.shard(0).server.num_disks == disks_before + 1
        assert check_cluster(resumed).clean


class TestFsckAggregation:
    def test_shard_in_flight_aggregates(self):
        coordinator = build_cluster()
        shard = coordinator.shards[0]
        pending = shard.server.begin_scale(ScalingOp.add(1))
        report = check_cluster(
            coordinator, shard_pending={shard.shard_id: pending}
        )
        assert report.clean
        assert report.shard_in_flight == len(pending.plan)
        assert report.shard_reports[shard.shard_id].in_flight
        # Without the pending op the same state is a violation.
        dirty = check_cluster(coordinator)
        assert not dirty.clean
        shard.server.abort_scale(pending)

    def test_blocks_checked_sums_all_shards(self):
        coordinator = build_cluster()
        report = check_cluster(coordinator)
        assert report.blocks_checked == coordinator.total_blocks
        assert report.objects_checked == coordinator.num_objects


class TestClusterCLI:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(["cluster", *map(str, argv)])

    def test_create_status_reshard_fsck_resume_metrics(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        journal = tmp_path / "c.journal"
        assert self.run_cli(
            "create", "--manifest", manifest, "--journal", journal,
            "--shards", 3, "--objects", 8, "--blocks-per-object", 20,
            "--seed", "0xBEEF",
        ) == 0
        assert manifest.exists()
        assert self.run_cli("status", "--manifest", manifest) == 0
        assert "objects=8" in capsys.readouterr().out
        assert self.run_cli(
            "reshard", "--manifest", manifest, "--journal", journal,
            "--add", 1,
        ) == 0
        assert self.run_cli(
            "fsck", "--manifest", manifest, "--journal", journal
        ) == 0
        assert "CLEAN" in capsys.readouterr().out
        assert self.run_cli(
            "resume", "--manifest", manifest, "--journal", journal
        ) == 0
        assert "quiescent" in capsys.readouterr().out
        assert self.run_cli("metrics", "--manifest", manifest) == 0
        data = json.loads(manifest.read_text())
        assert len(data["shards"]) == 4

    def test_create_with_copy_budget_attaches_policy(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        assert self.run_cli(
            "create", "--manifest", manifest,
            "--shards", 4, "--objects", 6, "--blocks-per-object", 20,
            "--domains", 2, "--copy-budget", 9,
        ) == 0
        assert "popularity: budget=9" in capsys.readouterr().out
        assert self.run_cli("status", "--manifest", manifest) == 0
        assert "budget=9 copies=6" in capsys.readouterr().out
        restored = restore_cluster(json.loads(manifest.read_text()))
        assert restored.replication.policy is not None
        assert restored.replication.policy.copy_budget == 9

    def test_resume_completes_crashed_reshard(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        journal = tmp_path / "c.journal"
        self.run_cli(
            "create", "--manifest", manifest, "--journal", journal,
            "--shards", 3, "--objects", 10, "--blocks-per-object", 20,
        )
        capsys.readouterr()
        # Crash a rebalance by hand: begin + one apply, no commit.
        coordinator = restore_cluster(
            json.loads(manifest.read_text()),
            journal=ClusterJournal(str(journal)),
        )
        pending = coordinator.begin_reshard(ScalingOp.add(1))
        coordinator.migrate_next(pending)
        coordinator.journal.close()

        assert self.run_cli(
            "resume", "--manifest", manifest, "--journal", journal
        ) == 0
        out = capsys.readouterr().out
        assert "resumed" in out
        data = json.loads(manifest.read_text())
        assert len(data["shards"]) == 4
        assert self.run_cli(
            "fsck", "--manifest", manifest, "--journal", journal
        ) == 0


def build_ha_cluster(num_objects: int = 10, **kwargs) -> ClusterCoordinator:
    coordinator = ClusterCoordinator.create(
        4, 3, SPEC, bits=32, master_seed=0xFEED,
        router_backend="consistent_hash",
        replication_factor=2, num_domains=2, **kwargs,
    )
    for i in range(num_objects):
        coordinator.add_object(f"title-{i}", 30 + i)
    return coordinator


class TestReplicationPersistence:
    """Manifest v2: the replication envelope (factor, domains, replica
    map, dead shards) round-trips, and v1 manifests still read."""

    def test_v2_round_trip_replica_map(self):
        coordinator = build_ha_cluster()
        manifest = snapshot_cluster(coordinator)
        assert manifest["version"] == 3
        assert manifest["replication_factor"] == 2
        assert manifest["num_domains"] == 2
        assert manifest["dead_shards"] == []
        restored = restore_cluster(manifest)
        assert restored._replica_home == coordinator._replica_home
        assert restored._replica_local == coordinator._replica_local
        assert {s.shard_id: s.domain for s in restored.shards} == {
            s.shard_id: s.domain for s in coordinator.shards
        }
        report = check_cluster(restored)
        assert report.clean and report.fully_replicated

    def test_v2_round_trip_with_dead_shard(self):
        from repro.cluster import ShardHealth

        coordinator = build_ha_cluster()
        coordinator.kill_shard(1)
        manifest = snapshot_cluster(coordinator)
        assert manifest["dead_shards"] == [1]
        restored = restore_cluster(manifest)
        assert restored.health.state(1) is ShardHealth.DEAD
        # Degradation is preserved: the dead copy-holder explains every
        # shortfall, and the rebuild path is open.
        report = check_cluster(restored)
        assert report.clean
        assert len(report.degraded) == len(check_cluster(coordinator).degraded)
        restored.rebuild_shard(1)
        assert check_cluster(restored).fully_replicated

    def test_v1_manifest_still_readable(self):
        coordinator = build_cluster()  # factor 1: exactly what v1 wrote
        manifest = snapshot_cluster(coordinator)
        manifest["version"] = 1
        for key in ("replication_factor", "num_domains", "dead_shards",
                    "replicas"):
            manifest.pop(key)
        for entry in manifest["shards"]:
            entry.pop("domain")
        restored = restore_cluster(manifest)
        assert restored.replication_factor == 1
        assert restored._replica_home == {}
        assert cluster_layout(restored) == cluster_layout(coordinator)
        assert check_cluster(restored).clean

    def test_replica_record_must_match_catalog(self):
        coordinator = build_ha_cluster()
        manifest = snapshot_cluster(coordinator)
        manifest["replicas"][0]["copies"][0][1] = 9999  # bogus local id
        with pytest.raises(SnapshotError):
            restore_cluster(manifest)

    def test_snapshot_refused_mid_rebuild(self):
        coordinator = build_ha_cluster()
        coordinator.kill_shard(1)
        rebuilder = coordinator.begin_shard_rebuild(1)
        with pytest.raises(OperationInFlightError):
            snapshot_cluster(coordinator)
        rebuilder.run()
        rebuilder.finish()
        snapshot_cluster(coordinator)  # clean again


class TestRebuildResume:
    def test_rebuild_resume_at_every_move_index(self, tmp_path):
        """A crash anywhere inside a shard rebuild resumes to the exact
        layout and replica map of the uncrashed run."""
        path = str(tmp_path / "cluster.journal")
        coordinator = build_ha_cluster(journal=ClusterJournal(path))
        manifest = snapshot_cluster(coordinator)
        victim = coordinator.shard_of(0)
        coordinator.kill_shard(victim)
        rebuilder = coordinator.begin_shard_rebuild(victim)
        rebuilder.run()
        rebuilder.finish()
        expected_layout = cluster_layout(coordinator)
        expected_replicas = dict(coordinator._replica_home)
        coordinator.journal.close()

        lines = open(path, encoding="utf-8").read().splitlines(keepends=True)
        begin = [l for l in lines if json.loads(l)["type"] == "begin"]
        applies = [l for l in lines if json.loads(l)["type"] == "apply"]
        assert json.loads(begin[0])["rebuild_of"] == victim
        assert len(applies) >= 2

        from repro.cluster import ShardHealth

        for crash_at in range(len(applies) + 1):
            partial = tmp_path / f"crash-{crash_at}.journal"
            partial.write_text(
                "".join(begin + applies[:crash_at]), encoding="utf-8"
            )
            resumed, open_pending = resume_cluster(
                dict(manifest), str(partial)
            )
            assert open_pending is not None
            assert open_pending.rebuild_of == victim
            assert len(open_pending.applied) == crash_at
            # The journal's rebuild record re-marked the shard dead even
            # though the manifest predates the death.
            assert resumed.health.state(victim) is ShardHealth.REBUILDING
            resumed.execute_reshard(open_pending)
            resumed.finish_reshard(open_pending)
            assert cluster_layout(resumed) == expected_layout
            assert resumed._replica_home == expected_replicas
            report = check_cluster(resumed)
            assert report.clean and report.fully_replicated
            resumed.journal.close()

    def test_resume_aborted_rebuild_keeps_shard_dead(self, tmp_path):
        from repro.cluster import ShardHealth

        path = str(tmp_path / "cluster.journal")
        coordinator = build_ha_cluster(journal=ClusterJournal(path))
        manifest = snapshot_cluster(coordinator)
        victim = coordinator.shard_of(0)
        coordinator.kill_shard(victim)
        rebuilder = coordinator.begin_shard_rebuild(victim, rate_per_round=1)
        rebuilder.step()
        coordinator.abort_reshard(rebuilder.pending)
        coordinator.journal.close()
        resumed, pending = resume_cluster(manifest, path)
        assert pending is None
        # The death outlives the aborted rebuild: the shard must not
        # silently return to service on restart.
        assert resumed.health.state(victim) is ShardHealth.DEAD
        assert check_cluster(resumed).clean
        resumed.rebuild_shard(victim)
        assert check_cluster(resumed).fully_replicated
