"""Stateful property tests: the CM server under adversarial operation
sequences (hypothesis RuleBasedStateMachine).

The machine interleaves scaling (both directions), object churn and full
reshuffles, checking after every step that:

* ``AF()`` (pure computation) agrees with the physical inventory for a
  sample of blocks — the paper's central correctness claim;
* the load vector sums to the block population;
* the mapper's disk count matches the array's.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.operations import ScalingOp
from repro.server.cmserver import CMServer
from repro.server.objects import ObjectCatalog
from repro.storage.block import BlockId
from repro.storage.disk import DiskSpec

MAX_DISKS = 12
MIN_DISKS = 2


class ServerMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2**16))
    def setup(self, seed):
        catalog = ObjectCatalog(master_seed=seed, bits=32)
        spec = DiskSpec(capacity_blocks=50_000, bandwidth_blocks_per_round=4)
        self.server = CMServer(catalog, [spec] * 3, bits=32, default_spec=spec)
        self.next_name = 0
        self._add_object(40)

    def _add_object(self, blocks):
        self.server.add_object(f"obj-{self.next_name}", blocks)
        self.next_name += 1

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @precondition(lambda self: self.server.num_disks < MAX_DISKS)
    @rule(count=st.integers(1, 2))
    def scale_up(self, count):
        self.server.scale(ScalingOp.add(count))

    @precondition(lambda self: self.server.num_disks > MIN_DISKS)
    @rule(victim=st.integers(0, MAX_DISKS - 1))
    def scale_down(self, victim):
        n = self.server.num_disks
        self.server.scale(ScalingOp.remove([victim % n]))

    @rule(blocks=st.integers(5, 60))
    def add_object(self, blocks):
        self._add_object(blocks)

    @precondition(lambda self: len(self.server.catalog) > 1)
    @rule(pick=st.integers(0, 10**6))
    def remove_object(self, pick):
        ids = sorted(o.object_id for o in self.server.catalog)
        self.server.remove_object(ids[pick % len(ids)])

    @rule()
    def reshuffle(self):
        self.server.reshuffle()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def af_matches_inventory(self):
        for media in self.server.catalog:
            for index in (0, media.num_blocks // 2, media.num_blocks - 1):
                block_id = BlockId(media.object_id, index)
                assert self.server.block_location(media.object_id, index) == (
                    self.server.array.home_of(block_id)
                )

    @invariant()
    def loads_sum_to_population(self):
        assert sum(self.server.load_vector()) == self.server.total_blocks
        assert self.server.total_blocks == self.server.catalog.total_blocks

    @invariant()
    def topology_agrees(self):
        assert self.server.mapper.current_disks == self.server.array.num_disks


TestServerMachine = ServerMachine.TestCase
TestServerMachine.settings = settings(
    max_examples=25, stateful_step_count=15, deadline=None
)
