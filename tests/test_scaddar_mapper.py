"""Unit + property tests for ScaddarMapper (AF/RF, Section 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import RandomnessExhaustedError
from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.workloads.generator import random_x0s

# Strategy: a short random schedule that never empties the array.
def schedules(max_ops=6, n0_range=(2, 8)):
    @st.composite
    def build(draw):
        n0 = draw(st.integers(*n0_range))
        ops = []
        n = n0
        for __ in range(draw(st.integers(0, max_ops))):
            if n > 2 and draw(st.booleans()):
                count = draw(st.integers(1, min(2, n - 2)))
                victims = draw(
                    st.sets(st.integers(0, n - 1), min_size=count, max_size=count)
                )
                ops.append(ScalingOp.remove(victims))
                n -= count
            else:
                count = draw(st.integers(1, 3))
                ops.append(ScalingOp.add(count))
                n += count
        return n0, ops

    return build()


class TestBasics:
    def test_initial_placement_is_mod_n0(self, mapper32):
        for x0 in (0, 1, 7, 123456, 2**31):
            assert mapper32.disk_of(x0) == x0 % 4

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            ScaddarMapper(n0=4, bits=0)
        with pytest.raises(ValueError):
            ScaddarMapper(n0=4, bits=65)

    def test_range_size(self):
        assert ScaddarMapper(n0=4, bits=32).range_size == 2**32

    def test_negative_x0_rejected(self, mapper32):
        with pytest.raises(ValueError):
            mapper32.disk_of(-1)
        with pytest.raises(ValueError):
            mapper32.x_chain(-1)

    def test_apply_returns_new_count(self, mapper32):
        assert mapper32.apply(ScalingOp.add(2)) == 6
        assert mapper32.apply(ScalingOp.remove([0])) == 5
        assert mapper32.current_disks == 5
        assert mapper32.num_operations == 2

    def test_repr(self, mapper32):
        assert "n0=4" in repr(mapper32)


class TestXChain:
    def test_chain_length(self, mapper32):
        mapper32.apply(ScalingOp.add(1))
        mapper32.apply(ScalingOp.add(1))
        assert len(mapper32.x_chain(12345)) == 3

    def test_chain_prefix_stability(self, mapper32):
        """Applying another operation must not change earlier X values."""
        x0 = 987654321
        mapper32.apply(ScalingOp.add(1))
        before = mapper32.x_chain(x0)
        mapper32.apply(ScalingOp.remove([1]))
        after = mapper32.x_chain(x0)
        assert after[: len(before)] == before

    def test_locate_matches_chain(self, mapper32):
        mapper32.apply(ScalingOp.add(3))
        mapper32.apply(ScalingOp.remove([2, 4]))
        for x0 in random_x0s(200, bits=32, seed=3):
            loc = mapper32.locate(x0)
            chain = mapper32.x_chain(x0)
            assert loc.x == chain[-1]
            assert loc.disk == chain[-1] % mapper32.current_disks
            assert loc.operations_applied == 2

    def test_disk_history_tracks_epochs(self, mapper32):
        mapper32.apply(ScalingOp.add(1))
        mapper32.apply(ScalingOp.add(1))
        history = mapper32.disk_history(20)
        assert len(history) == 3
        assert history[0] == 0  # 20 mod 4


class TestRO1MovementMinimality:
    def test_addition_only_moves_to_new_disks(self, mapper32):
        x0s = random_x0s(5_000, bits=32, seed=11)
        before = {x: mapper32.disk_of(x) for x in x0s}
        mapper32.apply(ScalingOp.add(2))
        for x in x0s:
            disk = mapper32.disk_of(x)
            if disk != before[x]:
                assert disk in (4, 5)

    def test_removal_moves_exactly_evicted_blocks(self, mapper32):
        x0s = random_x0s(5_000, bits=32, seed=12)
        before = {x: mapper32.disk_of(x) for x in x0s}
        mapper32.apply(ScalingOp.remove([1]))
        ranks = [0, -1, 1, 2]
        for x in x0s:
            disk = mapper32.disk_of(x)
            if before[x] == 1:
                assert 0 <= disk < 3
            else:
                assert disk == ranks[before[x]]

    def test_addition_move_fraction_near_optimal(self, mapper32):
        x0s = random_x0s(30_000, bits=32, seed=13)
        before = {x: mapper32.disk_of(x) for x in x0s}
        mapper32.apply(ScalingOp.add(1))
        moved = sum(1 for x in x0s if mapper32.disk_of(x) != before[x])
        assert abs(moved / len(x0s) - 1 / 5) < 0.01


class TestRedistributionMoves:
    def test_empty_without_operations(self, mapper32):
        assert mapper32.redistribution_moves({"a": 5}) == []

    def test_moves_match_disk_diff(self, mapper32):
        x0s = {i: x for i, x in enumerate(random_x0s(3_000, bits=32, seed=14))}
        before = {k: mapper32.disk_of(x) for k, x in x0s.items()}
        mapper32.apply(ScalingOp.add(2))
        moves = mapper32.redistribution_moves(x0s)
        moved_keys = {m.block for m in moves}
        for key, x in x0s.items():
            disk = mapper32.disk_of(x)
            assert (disk != before[key]) == (key in moved_keys)
        for move in moves:
            assert move.source_disk == before[move.block]
            assert move.target_disk == mapper32.disk_of(x0s[move.block])

    def test_moves_only_reflect_latest_operation(self, mapper32):
        x0s = {i: x for i, x in enumerate(random_x0s(2_000, bits=32, seed=15))}
        mapper32.apply(ScalingOp.add(1))
        before = {k: mapper32.disk_of(x) for k, x in x0s.items()}
        mapper32.apply(ScalingOp.remove([0]))
        moves = mapper32.redistribution_moves(x0s)
        for move in moves:
            assert before[move.block] == 0  # only evicted blocks move

    def test_accepts_iterable_of_pairs(self, mapper32):
        mapper32.apply(ScalingOp.add(1))
        pairs = [(i, x) for i, x in enumerate(random_x0s(100, bits=32, seed=16))]
        moves_from_pairs = mapper32.redistribution_moves(pairs)
        moves_from_mapping = mapper32.redistribution_moves(dict(pairs))
        assert moves_from_pairs == moves_from_mapping


class TestFairnessBookkeeping:
    def test_product_tracks_lemma(self, mapper32):
        mapper32.apply(ScalingOp.add(1))  # 5
        mapper32.apply(ScalingOp.add(1))  # 6
        assert mapper32.product_n() == 4 * 5 * 6

    def test_unfairness_bound_monotone(self, mapper32):
        bounds = [mapper32.unfairness_bound()]
        for __ in range(10):
            mapper32.apply(ScalingOp.add(1))
            bounds.append(mapper32.unfairness_bound())
        assert bounds == sorted(bounds)

    def test_eps_guard_blocks_operation(self):
        mapper = ScaddarMapper(n0=4, bits=16)
        # 2^16 * 0.05/1.05 ~ 3120; Pi grows 4,20,120,840 -> the op to 5
        # factors is blocked.
        applied = 0
        with pytest.raises(RandomnessExhaustedError):
            for __ in range(10):
                mapper.apply(ScalingOp.add(1), eps=0.05)
                applied += 1
        assert applied == 3
        # Failed op must not be recorded.
        assert mapper.num_operations == 3

    def test_can_apply_is_pure(self, mapper32):
        op = ScalingOp.add(1)
        assert mapper32.can_apply(op, eps=0.05)
        assert mapper32.num_operations == 0

    def test_needs_reshuffle_flips(self):
        mapper = ScaddarMapper(n0=4, bits=16)
        assert not mapper.needs_reshuffle(0.05)
        for __ in range(6):
            mapper.apply(ScalingOp.add(1))
        assert mapper.needs_reshuffle(0.05)

    def test_remaining_operations_consistent_with_guard(self):
        mapper = ScaddarMapper(n0=4, bits=32)
        remaining = mapper.remaining_operations(eps=0.05)
        for __ in range(remaining):
            mapper.apply(ScalingOp.add(1), eps=0.05)
        with pytest.raises(RandomnessExhaustedError):
            mapper.apply(ScalingOp.add(1), eps=0.05)

    def test_section5_budget_is_eight(self):
        """The paper's b=32, eps=5% configuration supports 8 operations."""
        mapper = ScaddarMapper(n0=4, bits=32)
        assert mapper.remaining_operations(eps=0.05) == 8

    def test_reshuffled_resets_budget(self):
        mapper = ScaddarMapper(n0=4, bits=16)
        for __ in range(6):
            mapper.apply(ScalingOp.add(1))
        fresh = mapper.reshuffled()
        assert fresh.current_disks == 10
        assert fresh.num_operations == 0
        assert not fresh.needs_reshuffle(0.05)


class TestScheduleProperties:
    @given(spec=schedules(), x0=st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_disk_always_in_range(self, spec, x0):
        n0, ops = spec
        mapper = ScaddarMapper(n0=n0, bits=32)
        for op in ops:
            mapper.apply(op)
            assert 0 <= mapper.disk_of(x0) < mapper.current_disks

    @given(spec=schedules())
    @settings(max_examples=60, deadline=None)
    def test_history_length_matches_operations(self, spec):
        n0, ops = spec
        mapper = ScaddarMapper(n0=n0, bits=32)
        for op in ops:
            mapper.apply(op)
        assert len(mapper.disk_history(12345)) == len(ops) + 1

    @given(spec=schedules(), x0=st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_randomness_reserve_never_grows(self, spec, x0):
        """The fresh-randomness reserve ``q_j = X_j div N_j`` can only
        shrink (or stay) along the chain — the mechanism behind
        Lemma 4.2's range bound."""
        n0, ops = spec
        mapper = ScaddarMapper(n0=n0, bits=32)
        for op in ops:
            mapper.apply(op)
        chain = mapper.x_chain(x0)
        assert chain[0] == x0
        counts = mapper.log.disk_counts()
        reserves = [x // n for x, n in zip(chain, counts)]
        assert all(b <= a for a, b in zip(reserves, reserves[1:]))
