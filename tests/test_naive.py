"""Unit tests for the naive Section 4.1 scheme (Eq. 2 / Figure 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import UnsupportedOperationError
from repro.core.naive import NaiveMapper, naive_disk, naive_remap_chain
from repro.core.operations import ScalingOp

#: Exact Figure 1c layout (disk -> X0 values), transcribed from the paper.
FIG1_FINAL = {
    0: [0, 8, 12, 16, 20, 28, 32, 36, 40],
    1: [1, 13, 21, 25, 33, 37],
    2: [2, 6, 10, 18, 22, 26, 30, 38, 42],
    3: [3, 7, 15, 27, 31, 43],
    4: [4, 9, 14, 19, 24, 34, 39],
    5: [5, 11, 17, 23, 29, 35, 41],
}

FIG1_AFTER_ONE = {
    0: [0, 8, 12, 16, 20, 28, 32, 36, 40],
    1: [1, 5, 13, 17, 21, 25, 33, 37, 41],
    2: [2, 6, 10, 18, 22, 26, 30, 38, 42],
    3: [3, 7, 11, 15, 23, 27, 31, 35, 43],
    4: [4, 9, 14, 19, 24, 29, 34, 39],
}


def _layout(counts):
    layout = {}
    for x in range(44):
        layout.setdefault(naive_disk(x, counts), []).append(x)
    return {d: sorted(v) for d, v in layout.items()}


class TestFigure1:
    def test_initial_round_robin(self):
        layout = _layout([4])
        assert layout[0] == [0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40]
        assert layout[3] == [3, 7, 11, 15, 19, 23, 27, 31, 35, 39, 43]

    def test_after_first_addition(self):
        assert _layout([4, 5]) == FIG1_AFTER_ONE

    def test_after_second_addition(self):
        assert _layout([4, 5, 6]) == FIG1_FINAL

    def test_disks_0_and_2_never_feed_disk_5(self):
        for x in range(100_000):
            chain = naive_remap_chain(x, [4, 5, 6])
            if chain[2] == 5 and chain[1] != 5:
                assert chain[1] in (1, 3, 4)


class TestNaiveDisk:
    def test_no_operations(self):
        assert naive_disk(10, [4]) == 2

    def test_negative_x_rejected(self):
        with pytest.raises(ValueError):
            naive_disk(-1, [4])

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            naive_disk(1, [])

    def test_non_increasing_counts_rejected(self):
        with pytest.raises(UnsupportedOperationError):
            naive_disk(1, [4, 4])
        with pytest.raises(UnsupportedOperationError):
            naive_disk(1, [4, 3])

    def test_chain_matches_prefixes(self):
        counts = [4, 6, 7, 10]
        for x in (0, 5, 17, 123, 999):
            chain = naive_remap_chain(x, counts)
            assert chain == [naive_disk(x, counts[: k + 1]) for k in range(4)]

    @given(x=st.integers(0, 2**32 - 1), n0=st.integers(1, 10), adds=st.lists(st.integers(1, 4), min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_disk_in_range_property(self, x, n0, adds):
        counts = [n0]
        for a in adds:
            counts.append(counts[-1] + a)
        chain = naive_remap_chain(x, counts)
        for disk, n in zip(chain, counts):
            assert 0 <= disk < n

    @given(x=st.integers(0, 2**32 - 1), n0=st.integers(1, 10), adds=st.lists(st.integers(1, 4), min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_ro1_movement_property(self, x, n0, adds):
        """A block either stays or moves onto a disk added by that op."""
        counts = [n0]
        for a in adds:
            counts.append(counts[-1] + a)
        chain = naive_remap_chain(x, counts)
        for j in range(1, len(chain)):
            if chain[j] != chain[j - 1]:
                assert counts[j - 1] <= chain[j] < counts[j]


class TestNaiveMapper:
    def test_apply_and_lookup(self):
        mapper = NaiveMapper(n0=4)
        assert mapper.apply(ScalingOp.add(1)) == 5
        assert mapper.current_disks == 5
        assert mapper.num_operations == 1
        assert mapper.disk_of(29) == 4  # Figure 1b: 29 moved to disk 4

    def test_rejects_removal(self):
        mapper = NaiveMapper(n0=4)
        with pytest.raises(UnsupportedOperationError):
            mapper.apply(ScalingOp.remove([0]))
        # The failed operation must not be recorded.
        assert mapper.num_operations == 0

    def test_disk_history(self):
        mapper = NaiveMapper(n0=4)
        mapper.apply(ScalingOp.add(1))
        mapper.apply(ScalingOp.add(1))
        assert mapper.disk_history(29) == [1, 4, 5]
