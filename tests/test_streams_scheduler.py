"""Unit tests for streams and the round scheduler."""

from __future__ import annotations

import pytest

from repro.server.objects import MediaObject
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream, StreamState
from repro.storage.array import DiskArray
from repro.storage.block import Block
from repro.storage.disk import DiskSpec


def media(num_blocks=20, rate=1, object_id=0):
    return MediaObject(
        object_id=object_id,
        name=f"m{object_id}",
        num_blocks=num_blocks,
        seed=7 + object_id,
        bits=32,
        blocks_per_round=rate,
    )


class TestStream:
    def test_initial_state(self):
        s = Stream(1, media())
        assert s.state is StreamState.PLAYING
        assert s.is_active
        assert s.position == 0

    def test_bad_start_rejected(self):
        with pytest.raises(ValueError):
            Stream(1, media(num_blocks=5), start_block=5)

    def test_blocks_needed(self):
        s = Stream(1, media(rate=2))
        needed = s.blocks_needed()
        assert [(b.object_id, b.index) for b in needed] == [(0, 0), (0, 1)]

    def test_blocks_needed_clamps_at_end(self):
        s = Stream(1, media(num_blocks=3, rate=2), start_block=2)
        assert len(s.blocks_needed()) == 1

    def test_deliver_advances_and_finishes(self):
        s = Stream(1, media(num_blocks=3))
        s.deliver(1)
        assert s.position == 1
        s.deliver(2)
        assert s.state is StreamState.DONE
        assert not s.is_active
        assert s.blocks_needed() == []

    def test_deliver_negative_rejected(self):
        with pytest.raises(ValueError):
            Stream(1, media()).deliver(-1)

    def test_pause_resume(self):
        s = Stream(1, media())
        s.pause()
        assert s.state is StreamState.PAUSED
        assert s.blocks_needed() == []
        s.resume()
        assert s.state is StreamState.PLAYING

    def test_pause_done_stream_is_noop(self):
        s = Stream(1, media(num_blocks=1))
        s.deliver(1)
        s.pause()
        assert s.state is StreamState.DONE

    def test_seek(self):
        s = Stream(1, media(num_blocks=10))
        s.seek(7)
        assert s.position == 7
        with pytest.raises(ValueError):
            s.seek(10)

    def test_seek_revives_done_stream(self):
        s = Stream(1, media(num_blocks=2))
        s.deliver(2)
        s.seek(0)
        assert s.state is StreamState.PLAYING


def build_served_array(objects, n_disks=4, bandwidth=2):
    """Place all object blocks round-robin so demand is predictable."""
    array = DiskArray(
        [DiskSpec(capacity_blocks=1000, bandwidth_blocks_per_round=bandwidth)]
        * n_disks
    )
    for obj in objects:
        for i in range(obj.num_blocks):
            array.place(Block(obj.object_id, i, x0=i), i % n_disks)
    return array


class TestScheduler:
    def test_round_serves_within_bandwidth(self):
        obj = media(num_blocks=12)
        array = build_served_array([obj])
        sched = RoundScheduler(array)
        sched.admit(Stream(1, obj))
        report = sched.run_round()
        assert report.requested == 1
        assert report.served == 1
        assert report.hiccups == 0

    def test_spare_budget_reported(self):
        obj = media(num_blocks=12)
        array = build_served_array([obj], bandwidth=3)
        sched = RoundScheduler(array)
        sched.admit(Stream(1, obj))
        report = sched.run_round()
        # One disk served one block (spare 2), others are idle (spare 3).
        assert sorted(report.spare_by_physical.values()) == [2, 3, 3, 3]

    def test_hiccup_when_one_disk_oversubscribed(self):
        obj = media(num_blocks=12)
        array = build_served_array([obj], bandwidth=1)
        sched = RoundScheduler(array)
        # Three streams all starting at block 0 -> same disk, bandwidth 1.
        for sid in range(3):
            sched.admit(Stream(sid, obj, start_block=0))
        report = sched.run_round()
        assert report.requested == 3
        assert report.served == 1
        assert report.hiccups == 2
        assert sched.total_hiccups == 2

    def test_unserved_stream_retries_same_block(self):
        obj = media(num_blocks=12)
        array = build_served_array([obj], bandwidth=1)
        sched = RoundScheduler(array)
        s1, s2 = Stream(1, obj), Stream(2, obj)
        sched.admit(s1)
        sched.admit(s2)
        sched.run_round()
        positions = sorted((s1.position, s2.position))
        assert positions == [0, 1]  # one advanced, one retries

    def test_admission_control(self):
        obj = media(num_blocks=12, rate=1)
        array = build_served_array([obj], n_disks=2, bandwidth=1)
        sched = RoundScheduler(array)
        sched.admit(Stream(1, obj))
        sched.admit(Stream(2, obj))
        with pytest.raises(ValueError):
            sched.admit(Stream(3, obj))

    def test_duplicate_stream_id_rejected(self):
        obj = media()
        array = build_served_array([obj])
        sched = RoundScheduler(array)
        sched.admit(Stream(1, obj))
        with pytest.raises(ValueError):
            sched.admit(Stream(1, obj))

    def test_depart(self):
        obj = media()
        array = build_served_array([obj])
        sched = RoundScheduler(array)
        stream = Stream(1, obj)
        sched.admit(stream)
        assert sched.depart(1) is stream
        with pytest.raises(KeyError):
            sched.depart(1)

    def test_run_rounds_and_active_count(self):
        obj = media(num_blocks=3)
        array = build_served_array([obj])
        sched = RoundScheduler(array)
        sched.admit(Stream(1, obj))
        reports = sched.run_rounds(5)
        assert len(reports) == 5
        assert sched.active_streams == 0  # finished after 3 rounds
        assert [r.round_index for r in reports] == list(range(5))

    def test_run_rounds_negative(self):
        obj = media()
        sched = RoundScheduler(build_served_array([obj]))
        with pytest.raises(ValueError):
            sched.run_rounds(-1)

    def test_custom_locator(self):
        obj = media(num_blocks=4)
        array = build_served_array([obj])
        target = array.physical_at(0)
        sched = RoundScheduler(array, locator=lambda block_id: target)
        sched.admit(Stream(1, obj))
        report = sched.run_round()
        assert report.load_by_physical[target] == 1

    def test_peak_queue_per_round(self):
        obj = media(num_blocks=6)
        array = build_served_array([obj])
        sched = RoundScheduler(array)
        sched.admit(Stream(1, obj))
        reports = sched.run_rounds(2)
        assert sched.peak_queue_per_round(reports) == [1, 1]


class TestDemandWindow:
    def test_window_matches_blocks_needed(self):
        s = Stream(1, media(num_blocks=5, rate=2), start_block=4)
        start, count = s.demand_window()
        assert (start, count) == (4, 1)
        assert [(b.object_id, b.index) for b in s.blocks_needed()] == [(0, 4)]

    def test_window_zero_when_inactive(self):
        s = Stream(1, media())
        s.pause()
        assert s.demand_window()[1] == 0
        s.resume()
        s.deliver(20)
        assert s.demand_window()[1] == 0


class TestActivityWatchers:
    def test_fires_on_flips_only(self):
        events = []
        s = Stream(1, media(num_blocks=3))
        s.add_activity_watcher(lambda stream, active: events.append(active))
        s.deliver(1)  # still active: no event
        s.pause()
        s.pause()  # already paused: no event
        s.resume()
        s.deliver(2)  # finishes
        s.seek(0)  # revives
        assert events == [False, True, False, True]

    def test_remove_watcher(self):
        events = []
        watcher = lambda stream, active: events.append(active)  # noqa: E731
        s = Stream(1, media())
        s.add_activity_watcher(watcher)
        s.remove_activity_watcher(watcher)
        s.pause()
        assert events == []


class TestGatherRoundDemand:
    def test_matches_blocks_needed(self):
        from repro.server.streams import gather_round_demand

        streams = [
            Stream(0, media(num_blocks=10, rate=2)),
            Stream(1, media(num_blocks=10, rate=3, object_id=1), start_block=8),
            Stream(2, media(num_blocks=10, rate=1, object_id=2)),
        ]
        streams[2].pause()
        demand = gather_round_demand(streams)
        expected = [
            (s.media.object_id, b.index, slot)
            for slot, s in enumerate(streams)
            for b in s.blocks_needed()
        ]
        got = list(
            zip(
                demand.object_ids.tolist(),
                demand.block_indices.tolist(),
                demand.stream_slots.tolist(),
            )
        )
        assert got == [(o, i, slot) for o, i, slot in expected]
        assert demand.total == 4
        assert demand.counts.tolist() == [2, 2, 0]

    def test_empty(self):
        from repro.server.streams import gather_round_demand

        assert gather_round_demand([]).total == 0


class TestActiveDemandAccounting:
    def brute_force(self, sched):
        return sum(
            s.media.blocks_per_round for s in sched.streams if s.is_active
        )

    def test_running_total_matches_brute_force(self):
        import random

        objects = [media(num_blocks=30, rate=r, object_id=r) for r in (1, 2, 3)]
        array = build_served_array(objects, n_disks=4, bandwidth=100)
        sched = RoundScheduler(array)
        rng = random.Random(7)
        admitted = []
        for sid in range(60):
            op = rng.choice(("admit", "pause", "resume", "seek", "round", "depart"))
            if op == "admit" or not admitted:
                stream = Stream(sid, rng.choice(objects))
                sched.admit(stream)
                admitted.append(stream)
            elif op == "pause":
                rng.choice(admitted).pause()
            elif op == "resume":
                rng.choice(admitted).resume()
            elif op == "seek":
                rng.choice(admitted).seek(rng.randrange(30))
            elif op == "round":
                sched.run_round()
            else:
                victim = rng.choice(admitted)
                sched.depart(victim.stream_id)
                admitted.remove(victim)
            assert sched.active_demand == self.brute_force(sched)

    def test_departed_stream_stops_updating_total(self):
        obj = media(num_blocks=30)
        array = build_served_array([obj])
        sched = RoundScheduler(array)
        stream = Stream(1, obj)
        sched.admit(stream)
        sched.depart(1)
        stream.pause()  # must not corrupt the (now zero) total
        assert sched.active_demand == 0


class TestVectorizedToggle:
    def test_scalar_flag_matches_default(self):
        def run(vectorized):
            obj = media(num_blocks=12)
            array = build_served_array([obj], bandwidth=1)
            sched = RoundScheduler(array, vectorized=vectorized)
            for sid in range(3):
                sched.admit(Stream(sid, obj, start_block=0))
            reports = sched.run_rounds(4)
            return (
                [(r.requested, r.served, r.hiccups) for r in reports],
                dict(sched.hiccups_by_stream),
            )

        assert run(False) == run(True)

    def test_unknown_locator_target_ignored_by_both(self):
        obj = media(num_blocks=4)
        for vectorized in (False, True):
            array = build_served_array([obj])
            sched = RoundScheduler(
                array, locator=lambda block_id: -99, vectorized=vectorized
            )
            sched.admit(Stream(1, obj))
            report = sched.run_round()
            assert report.requested == 0
            assert report.served == 0
