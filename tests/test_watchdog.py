"""The exhaustion watchdog: budget tracking, escalation, auto-reset.

Lemma 4.3's fairness bound is a consumable, and the watchdog is the
operator that notices it running out.  These tests pin the escalation
ladder (unlimited/ok/warn/blocked), the admission check wired into
``begin_scale``, the auto-reset remedy, and the observability contract
(one gauge, level-change events only).
"""

from __future__ import annotations

import pytest

from repro.core.operations import ScalingOp
from repro.obs import Obs
from repro.server.cmserver import CMServer
from repro.server.objects import ObjectCatalog
from repro.server.watchdog import (
    LEVELS,
    BudgetExhaustedError,
    ExhaustionWatchdog,
    WatchdogConfig,
)
from repro.storage.disk import DiskSpec

BITS = 16  # deliberately small: the budget runs out within a few scales


def make_server(backend="scaddar", obs=None, disks=4):
    return CMServer(
        ObjectCatalog(bits=BITS),
        [DiskSpec()] * disks,
        bits=BITS,
        backend=backend,
        obs=obs,
    )


def drain_budget(server, watchdog):
    """Scale until the watchdog reports blocked (bounded)."""
    for _ in range(64):
        if watchdog.status().exhausted:
            return
        server.scale(ScalingOp.add(1))
    raise AssertionError("budget never exhausted in 64 operations")


class TestConfig:
    def test_rejects_nonpositive_eps(self):
        with pytest.raises(ValueError, match="eps must be positive"):
            WatchdogConfig(eps=0.0)

    def test_rejects_negative_thresholds(self):
        with pytest.raises(ValueError, match="non-negative"):
            WatchdogConfig(eps=0.1, warn_threshold=-1)
        with pytest.raises(ValueError, match="non-negative"):
            WatchdogConfig(eps=0.1, warn_threshold=2, block_threshold=-1)

    def test_rejects_block_above_warn(self):
        with pytest.raises(ValueError, match="exceeds"):
            WatchdogConfig(eps=0.1, warn_threshold=1, block_threshold=2)


class TestStatus:
    def test_fresh_server_has_budget(self):
        server = make_server()
        status = ExhaustionWatchdog(server, WatchdogConfig(eps=0.05)).status()
        assert status.backend == "scaddar"
        assert status.remaining is not None and status.remaining > 0
        assert status.level == "ok"
        assert not status.exhausted

    def test_level_walks_the_ladder_as_budget_drains(self):
        server = make_server()
        watchdog = ExhaustionWatchdog(server, WatchdogConfig(eps=0.05))
        seen = [watchdog.status().level]
        for _ in range(64):
            if seen[-1] == "blocked":
                break
            server.scale(ScalingOp.add(1))
            seen.append(watchdog.status().level)
        # Monotone escalation: ok ... warn ... blocked, never skipping
        # back, and each level's remaining respects the thresholds.
        assert seen[-1] == "blocked"
        assert "warn" in seen
        ranks = [LEVELS.index(level) for level in seen]
        assert ranks == sorted(ranks)

    def test_never_degrading_backend_is_unlimited(self):
        server = make_server(backend="directory")
        watchdog = ExhaustionWatchdog(server, WatchdogConfig(eps=0.05))
        status = watchdog.status()
        assert status.remaining is None
        assert status.level == "unlimited"
        assert not status.exhausted
        # Unlimited backends are never blocked, however much they scale.
        for _ in range(8):
            server.scale(ScalingOp.add(1))
        watchdog.before_scale(ScalingOp.add(1))  # must not raise

    def test_reshuffle_restores_the_budget(self):
        server = make_server()
        watchdog = ExhaustionWatchdog(server, WatchdogConfig(eps=0.05))
        drain_budget(server, watchdog)
        server.reshuffle()
        status = watchdog.status()
        assert status.remaining > 0
        assert status.level in ("ok", "warn")


class TestAdmission:
    def test_blocked_scale_raises_with_remedy(self):
        server = make_server()
        watchdog = ExhaustionWatchdog(server, WatchdogConfig(eps=0.05))
        drain_budget(server, watchdog)
        server.attach_watchdog(watchdog)
        with pytest.raises(BudgetExhaustedError, match="reshuffle"):
            server.scale(ScalingOp.add(1))
        # The refused operation left no trace.
        ops_before = server.backend.num_operations
        with pytest.raises(BudgetExhaustedError):
            server.begin_scale(ScalingOp.add(1))
        assert server.backend.num_operations == ops_before

    def test_auto_reset_reshuffles_then_admits(self):
        server = make_server()
        watchdog = ExhaustionWatchdog(
            server, WatchdogConfig(eps=0.05, auto_reset=True)
        )
        drain_budget(server, watchdog)
        server.attach_watchdog(watchdog)
        disks_before = server.num_disks
        server.scale(ScalingOp.add(1))  # admitted via automatic reshuffle
        assert watchdog.auto_resets == 1
        assert server.reshuffles == 1
        assert server.num_disks == disks_before + 1

    def test_long_lifecycle_resets_repeatedly(self):
        server = make_server()
        watchdog = ExhaustionWatchdog(
            server, WatchdogConfig(eps=0.05, auto_reset=True)
        )
        server.attach_watchdog(watchdog)
        for _ in range(12):
            server.scale(ScalingOp.add(1))
        assert watchdog.auto_resets >= 2
        assert server.reshuffles == watchdog.auto_resets


class TestObservability:
    def test_gauge_tracks_remaining(self):
        obs = Obs()
        server = make_server(obs=obs)
        watchdog = ExhaustionWatchdog(server, WatchdogConfig(eps=0.05))
        status = watchdog.status()
        gauge = obs.registry.gauge("budget.remaining_operations")
        assert gauge.value(backend="scaddar") == status.remaining
        server.scale(ScalingOp.add(1))
        status = watchdog.status()
        assert gauge.value(backend="scaddar") == status.remaining

    def test_unlimited_gauges_minus_one(self):
        obs = Obs()
        server = make_server(backend="directory", obs=obs)
        ExhaustionWatchdog(server, WatchdogConfig(eps=0.05)).status()
        gauge = obs.registry.gauge("budget.remaining_operations")
        assert gauge.value(backend="directory") == -1

    def test_events_fire_on_level_change_only(self):
        obs = Obs()
        server = make_server(obs=obs)
        watchdog = ExhaustionWatchdog(server, WatchdogConfig(eps=0.05))
        drain_budget(server, watchdog)
        watchdog.status()
        watchdog.status()  # repeated probes at the same level: no spam
        kinds = [
            e.kind for e in obs.log.events if e.kind.startswith("budget.")
        ]
        assert kinds == ["budget.warn", "budget.blocked"]
        server.reshuffle()
        # De-escalation emits exactly one event: recovered when the reset
        # clears the thresholds, warn when the (now larger) array's fresh
        # budget still sits inside the warn band.
        status = watchdog.status()
        watchdog.status()
        kinds = [
            e.kind for e in obs.log.events if e.kind.startswith("budget.")
        ]
        expected = (
            "budget.recovered" if status.level == "ok" else "budget.warn"
        )
        assert kinds == ["budget.warn", "budget.blocked", expected]

    def test_auto_reset_emits_event(self):
        obs = Obs()
        server = make_server(obs=obs)
        watchdog = ExhaustionWatchdog(
            server, WatchdogConfig(eps=0.05, auto_reset=True)
        )
        drain_budget(server, watchdog)
        server.attach_watchdog(watchdog)
        server.scale(ScalingOp.add(1))
        resets = [
            e for e in obs.log.events if e.kind == "budget.auto_reset"
        ]
        assert len(resets) == 1
        assert resets[0].fields["backend"] == "scaddar"
        assert resets[0].fields["op"] == "add"


class TestBudgetCLI:
    def test_render_budget_tabulates_the_drain(self):
        from repro.cli import render_budget

        out = render_budget(eps=0.05, bits=16, disks=4)
        assert "remaining ops" in out
        assert "blocked" in out
        assert "Lemma 4.3" in out
