"""Sweeps of the REMAP invariants across bit-width regimes.

The paper's analysis parameterizes everything by ``b``; these tests run
the structural invariants at the extremes — tiny ranges where the budget
dies within a couple of operations, and the full 64-bit boundary where
integer overflow would bite a careless implementation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operations import OperationLog, ScalingOp
from repro.core.remap import remap_add, remap_remove
from repro.core.scaddar import ScaddarMapper
from repro.core.vectorized import (
    disks_array,
    redistribution_moves_array,
)
from repro.workloads.generator import random_x0s


class TestTinyRanges:
    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_lookups_defined_even_when_range_dead(self, bits):
        mapper = ScaddarMapper(n0=2, bits=bits)
        for __ in range(6):
            mapper.apply(ScalingOp.add(1))
        for x0 in range(1 << bits):
            assert 0 <= mapper.disk_of(x0) < mapper.current_disks

    def test_one_bit_range(self):
        mapper = ScaddarMapper(n0=2, bits=1)
        assert mapper.disk_of(0) == 0
        assert mapper.disk_of(1) == 1
        mapper.apply(ScalingOp.add(1))
        # q = x div 2 = 0 for both values: nothing can ever move.
        assert mapper.disk_of(0) == 0
        assert mapper.disk_of(1) == 1

    def test_budget_zero_at_tiny_bits(self):
        mapper = ScaddarMapper(n0=4, bits=4)
        assert mapper.remaining_operations(eps=0.05) == 0
        assert mapper.needs_reshuffle(eps=0.05)


class TestFullWidthBoundary:
    TOP = 2**64 - 1

    def test_remap_add_at_uint64_max(self):
        result = remap_add(self.TOP, 7, 9)
        assert result.x_new <= self.TOP
        assert result.disk == result.x_new % 9

    def test_remap_remove_at_uint64_max(self):
        result = remap_remove(self.TOP, 9, {4})
        assert result.x_new <= self.TOP
        assert result.disk == result.x_new % 8

    def test_long_chain_at_boundary(self):
        mapper = ScaddarMapper(n0=3, bits=64)
        for op in (
            ScalingOp.add(5),
            ScalingOp.remove([1, 6]),
            ScalingOp.add(10),
            ScalingOp.remove([0]),
        ):
            mapper.apply(op)
        chain = mapper.x_chain(self.TOP)
        assert all(0 <= x <= self.TOP for x in chain)

    def test_vectorized_matches_scalar_at_boundary(self):
        log = OperationLog(n0=3)
        for op in (ScalingOp.add(5), ScalingOp.remove([2]), ScalingOp.add(3)):
            log.append(op)
        mapper = ScaddarMapper(n0=3, bits=64)
        for op in log:
            mapper.apply(op)
        xs = [self.TOP, self.TOP - 1, 2**63, 2**63 - 1, 0, 1]
        vec = disks_array(np.array(xs, dtype=np.uint64), log)
        assert vec.tolist() == [mapper.disk_of(x) for x in xs]

    @given(bits=st.sampled_from([8, 16, 32, 48, 63, 64]), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_chain_stays_in_range_property(self, bits, seed):
        mapper = ScaddarMapper(n0=4, bits=bits)
        mapper.apply(ScalingOp.add(2))
        mapper.apply(ScalingOp.remove([1]))
        for x0 in random_x0s(50, bits=bits, seed=seed):
            chain = mapper.x_chain(x0)
            assert all(0 <= x < (1 << bits) for x in chain)


class TestVectorizedRF:
    def test_matches_scalar_rf(self):
        log = OperationLog(n0=4)
        mapper = ScaddarMapper(n0=4, bits=32)
        for op in (ScalingOp.add(2), ScalingOp.remove([1]), ScalingOp.add(1)):
            log.append(op)
            mapper.apply(op)
        x0s = random_x0s(4_000, bits=32, seed=8)
        indices, sources, targets = redistribution_moves_array(x0s, log)
        scalar = mapper.redistribution_moves(
            {i: x for i, x in enumerate(x0s)}
        )
        scalar_by_index = {m.block: m for m in scalar}
        assert set(indices.tolist()) == set(scalar_by_index)
        for i, src, dst in zip(indices.tolist(), sources, targets):
            assert scalar_by_index[i].source_disk == int(src)
            assert scalar_by_index[i].target_disk == int(dst)

    def test_empty_log(self):
        log = OperationLog(n0=4)
        indices, sources, targets = redistribution_moves_array([1, 2, 3], log)
        assert indices.size == sources.size == targets.size == 0

    def test_addition_fraction(self):
        log = OperationLog(n0=4)
        log.append(ScalingOp.add(1))
        x0s = random_x0s(30_000, bits=32, seed=9)
        indices, __, targets = redistribution_moves_array(x0s, log)
        assert abs(len(indices) / len(x0s) - 0.2) < 0.01
        assert set(targets.tolist()) == {4}
