"""Tests for the reshuffle-cost and ingest-under-load experiments."""

from __future__ import annotations

import pytest

from repro.experiments import ingest_under_load, reshuffle_cost


class TestReshuffleCost:
    @pytest.fixture(scope="class")
    def results(self):
        return reshuffle_cost.run_reshuffle_cost(
            num_blocks=10_000, operations=20
        )

    def test_one_result_per_bit_width(self, results):
        assert [r.bits for r in results] == [32, 64]

    def test_three_strategies_each(self, results):
        for result in results:
            assert len(result.strategies) == 3

    def test_floor_is_floor(self, results):
        for result in results:
            floor = result.strategies[-1]
            for strategy in result.strategies:
                assert strategy.total_moved_fraction >= (
                    floor.total_moved_fraction - 0.05
                )

    def test_scaddar_beats_complete(self, results):
        for result in results:
            scaddar, complete, __ = result.strategies
            assert scaddar.total_moved_fraction < complete.total_moved_fraction

    def test_wider_bits_fewer_reshuffles(self, results):
        b32, b64 = results
        assert b64.strategies[0].reshuffles <= b32.strategies[0].reshuffles

    def test_complete_reshuffles_every_op(self, results):
        complete = results[0].strategies[1]
        assert complete.reshuffles == complete.operations

    def test_report_renders(self, results):
        assert "reshuffles" in reshuffle_cost.report(results)


class TestIngestUnderLoad:
    @pytest.fixture(scope="class")
    def rows(self):
        return ingest_under_load.run_ingest_under_load(
            utilizations=(0.2, 0.6),
            blocks_per_object=600,
            ingest_blocks=200,
        )

    def test_zero_ingest_caused_hiccups(self, rows):
        assert all(r.ingest_caused_hiccups == 0 for r in rows)

    def test_all_blocks_land(self, rows):
        assert all(r.ingest_blocks == 200 for r in rows)

    def test_load_slows_ingest(self, rows):
        assert rows[0].ingest_rounds <= rows[1].ingest_rounds

    def test_report_renders(self, rows):
        assert "ingest-caused" in ingest_under_load.report(rows)
