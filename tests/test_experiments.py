"""Tests that the experiment harness reproduces the paper's claims.

Each test pins the qualitative (and where the paper gives them,
quantitative) results: these are the EXPERIMENTS.md numbers, enforced.
"""

from __future__ import annotations

import pytest

from repro.core.operations import ScalingOp
from repro.experiments import (
    access_cost,
    cov_curve,
    fault_tolerance,
    fig1,
    heterogeneous,
    modern,
    movement,
    online_scaling,
    rule_of_thumb,
    uniformity,
)
from repro.experiments.tables import format_table


class TestTables:
    def test_format_alignment(self):
        text = format_table(("a", "bbb"), [(1, "x"), (22, "yy")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bbb" in lines[0]

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_float_rendering(self):
        text = format_table(("v",), [(0.123456,), (float("inf"),)])
        assert "0.1235" in text
        assert "inf" in text

    def test_bool_rendering(self):
        text = format_table(("ok",), [(True,), (False,)])
        assert "yes" in text and "no" in text

    def test_empty_rows(self):
        text = format_table(("a",), [])
        assert "a" in text


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1.run_fig1(random_population=5_000)

    def test_exact_paper_layout(self, result):
        final = result.naive_layouts[2]
        assert final[0] == [0, 8, 12, 16, 20, 28, 32, 36, 40]
        assert final[5] == [5, 11, 17, 23, 29, 35, 41]

    def test_naive_contributors_match_paper(self, result):
        assert result.naive_contributors == (1, 3, 4)

    def test_violation_is_structural(self, result):
        assert set(result.naive_contributors_random) <= {1, 3, 4}

    def test_scaddar_covers_all_disks(self, result):
        assert result.scaddar_contributors_random == (0, 1, 2, 3, 4)

    def test_report_renders(self, result):
        text = fig1.report(result)
        assert "disk 5" in text


class TestCovCurve:
    @pytest.fixture(scope="class")
    def result(self):
        return cov_curve.run_cov_curve(
            num_objects=10, blocks_per_object=800, operations=9
        )

    def test_budget_is_eight(self, result):
        """Paper Section 5: threshold reached after 8 operations."""
        assert result.budget == 8

    def test_scaddar_cov_degrades_past_budget(self, result):
        in_budget = [p.cov_scaddar for p in result.points if p.operations <= 8]
        past = [p.cov_scaddar for p in result.points if p.operations > 8]
        assert max(in_budget) < min(past)

    def test_complete_stays_flat(self, result):
        covs = [p.cov_complete for p in result.points]
        assert max(covs) < 0.05

    def test_within_tolerance_flags(self, result):
        flags = [p.within_tolerance for p in result.points]
        assert flags == [True] * 9 + [False]

    def test_unfairness_bound_monotone(self, result):
        bounds = [p.unfairness_bound for p in result.points]
        assert bounds == sorted(bounds)

    def test_report_renders(self, result):
        assert "paper: 8" in cov_curve.report(result)


class TestRuleOfThumb:
    @pytest.fixture(scope="class")
    def rows(self):
        return rule_of_thumb.run_rule_of_thumb()

    def test_paper_examples_first(self, rows):
        assert rows[0].rule_of_thumb_k == 13 == rows[0].paper_k
        assert rows[1].rule_of_thumb_k == 8 == rows[1].paper_k

    def test_rule_matches_constant_schedule_exactly(self, rows):
        """For the constant-nbar schedule the rule assumes, the rule of
        thumb and explicit Pi tracking must agree to within one op (the
        rule floors a logarithm)."""
        for row in rows:
            if row.rule_of_thumb_k >= 0:
                assert abs(row.rule_of_thumb_k - row.exact_constant_k) <= 1

    def test_budget_monotone_in_bits(self, rows):
        by_config = {
            (r.bits, r.eps, r.nbar): r.rule_of_thumb_k for r in rows
        }
        for eps in (0.01, 0.05, 0.10):
            for nbar in (4.0, 8.0, 16.0, 64.0):
                ks = [by_config[(b, eps, nbar)] for b in (16, 32, 48, 64)]
                assert ks == sorted(ks)

    def test_report_renders(self, rows):
        assert "paper k" in rule_of_thumb.report(rows)


class TestMovement:
    @pytest.fixture(scope="class")
    def results(self):
        return movement.run_movement(num_blocks=6_000)

    def test_scaddar_is_movement_optimal(self, results):
        scaddar = next(r for r in results if r.policy == "scaddar")
        assert 0.9 < scaddar.mean_overhead < 1.1

    def test_complete_moves_far_more(self, results):
        complete = next(r for r in results if r.policy == "complete")
        scaddar = next(r for r in results if r.policy == "scaddar")
        assert complete.mean_overhead > 4 * scaddar.mean_overhead

    def test_round_robin_moves_far_more(self, results):
        rr = next(r for r in results if r.policy == "round_robin")
        assert rr.mean_overhead > 4

    def test_extendible_is_skipped_on_non_doubling(self, results):
        ext = next(r for r in results if r.policy == "extendible")
        assert ext.skipped_reason is not None
        assert ext.per_op == ()

    def test_report_renders(self, results):
        assert "scaddar" in movement.report(results)


class TestUniformity:
    @pytest.fixture(scope="class")
    def results(self):
        return uniformity.run_uniformity(num_blocks=15_000)

    def test_scaddar_sources_healthy(self, results):
        scaddar = next(r for r in results if r.policy == "scaddar")
        assert all(op.source_p > 1e-3 for op in scaddar.per_op)
        assert all(op.silent_sources == 0 for op in scaddar.per_op)

    def test_naive_first_operation_fine(self, results):
        naive = next(r for r in results if r.policy == "naive")
        assert naive.per_op[0].source_p > 1e-3

    def test_naive_violates_ro2_later(self, results):
        naive = next(r for r in results if r.policy == "naive")
        later = naive.per_op[1:]
        assert any(op.source_p < 1e-6 for op in later)
        assert any(op.silent_sources > 0 for op in later)

    def test_directory_is_gold_standard(self, results):
        directory = next(r for r in results if r.policy == "directory")
        assert all(op.source_p > 1e-3 for op in directory.per_op)

    def test_group_addition_destinations(self):
        results = uniformity.run_uniformity(
            schedule=[ScalingOp.add(3), ScalingOp.add(3)],
            num_blocks=15_000,
            policies=("scaddar",),
        )
        for op in results[0].per_op:
            assert op.destination_p > 1e-3
            assert op.empty_destinations == 0

    def test_removal_destinations_uniform(self):
        results = uniformity.run_uniformity(
            schedule=[ScalingOp.add(2), ScalingOp.remove([1, 4])],
            num_blocks=15_000,
            policies=("scaddar",),
        )
        removal = results[0].per_op[1]
        assert removal.kind == "remove"
        assert removal.destination_p > 1e-3
        assert removal.empty_destinations == 0

    def test_report_renders(self, results):
        assert "p-value" in uniformity.report(results)


class TestAccessCost:
    @pytest.fixture(scope="class")
    def result(self):
        return access_cost.run_access_cost(
            max_operations=6,
            op_stride=3,
            num_probe_blocks=50,
            state_block_counts=(1_000, 10_000),
        )

    def test_remap_steps_equal_j(self, result):
        assert [p.remap_steps for p in result.lookups] == [0, 3, 6]

    def test_latency_grows_with_j(self, result):
        latencies = [p.scaddar_ns for p in result.lookups]
        assert latencies[-1] > latencies[0]

    def test_directory_state_linear_in_blocks(self, result):
        assert [row.entries_by_policy["directory"] for row in result.state] == [
            1_000,
            10_000,
        ]

    def test_scaddar_state_constant(self, result):
        entries = {row.entries_by_policy["scaddar"] for row in result.state}
        assert len(entries) == 1

    def test_report_renders(self, result):
        assert "ns/lookup" in access_cost.report(result)


class TestFaultTolerance:
    @pytest.fixture(scope="class")
    def result(self):
        return fault_tolerance.run_fault_tolerance(num_blocks=6_000)

    def test_no_data_loss(self, result):
        assert result.survives_all_single_failures
        assert result.distinct_replicas

    def test_every_disk_covered(self, result):
        assert len(result.cases) == result.disks

    def test_failover_concentration_documented(self, result):
        # The fixed-offset trade-off: exactly one partner is overloaded.
        assert all(c.overloaded_disks == 1 for c in result.cases)

    def test_report_renders(self, result):
        assert "survivable: yes" in fault_tolerance.report(result)


class TestHeterogeneous:
    @pytest.fixture(scope="class")
    def result(self):
        return heterogeneous.run_heterogeneous(num_blocks=20_000)

    def test_three_snapshots(self, result):
        assert len(result.snapshots) == 3

    def test_load_proportional_everywhere(self, result):
        for snap in result.snapshots:
            assert snap.max_share_error < 0.08

    def test_membership_changes(self, result):
        first, second, third = result.snapshots
        assert set(second.loads) == set(first.loads) | {4}
        assert set(third.loads) == set(second.loads) - {0}

    def test_report_renders(self, result):
        assert "drive" in heterogeneous.report(result)


class TestOnlineScaling:
    @pytest.fixture(scope="class")
    def results(self):
        return online_scaling.run_online_scaling(
            utilizations=(0.3, 0.6),
            num_objects=4,
            blocks_per_object=400,
        )

    def test_migration_causes_no_hiccups(self, results):
        assert all(r.migration_caused_hiccups == 0 for r in results)

    def test_online_takes_longer_than_stop_world(self, results):
        assert all(r.online_rounds >= r.stop_world_rounds for r in results)

    def test_stop_world_loses_service(self, results):
        assert all(r.stop_world_lost_service > 0 for r in results)

    def test_report_renders(self, results):
        assert "zero-downtime" in online_scaling.report(results)


class TestModern:
    @pytest.fixture(scope="class")
    def rows(self):
        return modern.run_modern(num_blocks=4_000)

    def test_all_registered_backends_present(self, rows):
        assert {r.backend for r in rows} == {
            "scaddar",
            "consistent_hash",
            "jump_hash",
            "directory",
            "sequential_checking",
            "straw",
            "weighted_straw",
        }

    def test_full_loop_covers_at_least_three_backends(self, rows):
        assert len(rows) >= 3

    def test_every_backend_survives_crash_resume(self, rows):
        for row in rows:
            assert row.resumed_clean, f"{row.backend} resumed dirty"
            assert row.blocks_lost == 0, f"{row.backend} lost blocks"
            assert row.survived

    def test_all_reasonably_movement_efficient(self, rows):
        for row in rows:
            if row.backend == "sequential_checking":
                # Reallocation-free: moves nothing while the RO1 optimum
                # is nonzero, so its efficiency score is 0 by definition.
                assert row.mean_moved_fraction == 0.0
                continue
            assert row.mean_efficiency > 0.5, row

    def test_scaddar_and_directory_near_optimal(self, rows):
        by_name = {r.backend: r for r in rows}
        assert by_name["scaddar"].mean_efficiency > 0.8
        assert by_name["directory"].mean_efficiency > 0.8

    def test_scaddar_state_smallest_nonzero_class(self, rows):
        by_name = {r.backend: r for r in rows}
        assert (
            by_name["scaddar"].state_entries
            < by_name["consistent_hash"].state_entries
            < by_name["directory"].state_entries
        )

    def test_report_renders(self, rows):
        assert "crash-resume clean" in modern.report(rows)
