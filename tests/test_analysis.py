"""Unit tests for the analysis helpers (stats, fairness, movement)."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.analysis.fairness import (
    destination_counts,
    empirical_unfairness,
    proportional_chi_square,
    uniformity_pvalue,
)
from repro.analysis.movement import (
    PhysicalTracker,
    optimal_move_fraction,
    run_schedule,
)
from repro.analysis.stats import (
    chi_square_uniform,
    coefficient_of_variation,
    summarize_loads,
)
from repro.core.operations import ScalingOp
from repro.placement import CompleteRedistribution, ScaddarPolicy
from repro.storage.block import Block
from repro.workloads.generator import random_x0s


class TestStats:
    def test_cov_zero_for_equal_loads(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_cov_known_value(self):
        # loads 2,4: mean 3, population std 1 -> CoV = 1/3.
        assert coefficient_of_variation([2, 4]) == pytest.approx(1 / 3)

    def test_cov_empty_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([])

    def test_cov_all_zero(self):
        assert coefficient_of_variation([0, 0]) == 0.0

    def test_cov_zero_mean_mixed(self):
        assert coefficient_of_variation([-1, 1]) == math.inf

    def test_chi_square_uniform_accepts_uniform(self):
        __, p = chi_square_uniform([100, 101, 99, 100])
        assert p > 0.9

    def test_chi_square_uniform_rejects_skew(self):
        __, p = chi_square_uniform([400, 0, 0, 0])
        assert p < 1e-10

    def test_chi_square_validation(self):
        with pytest.raises(ValueError):
            chi_square_uniform([5])
        with pytest.raises(ValueError):
            chi_square_uniform([0, 0])

    def test_summarize_loads(self):
        summary = summarize_loads([1, 2, 3])
        assert summary.disks == 3
        assert summary.total == 6
        assert summary.mean == 2.0
        assert summary.minimum == 1
        assert summary.maximum == 3
        assert summary.max_over_min == 3.0

    def test_summarize_empty_disk(self):
        assert summarize_loads([0, 5]).max_over_min == math.inf
        assert summarize_loads([0, 0]).max_over_min == 1.0

    def test_summarize_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize_loads([])


class TestFairness:
    def test_destination_counts(self):
        counts = destination_counts([4, 5, 4, 4], eligible=[4, 5])
        assert counts == [3, 1]

    def test_destination_counts_rejects_stranger(self):
        with pytest.raises(ValueError):
            destination_counts([3], eligible=[4, 5])

    def test_uniformity_pvalue(self):
        assert uniformity_pvalue([50, 50]) > 0.9

    def test_empirical_unfairness(self):
        assert empirical_unfairness([10, 10]) == 0.0
        assert empirical_unfairness([10, 20]) == pytest.approx(1.0)
        assert empirical_unfairness([0, 5]) == math.inf
        assert empirical_unfairness([0, 0]) == 0.0
        with pytest.raises(ValueError):
            empirical_unfairness([])

    def test_proportional_chi_square_accepts_proportional(self):
        __, p = proportional_chi_square([100, 200, 300], [1, 2, 3])
        assert p > 0.9

    def test_proportional_chi_square_rejects_skew(self):
        __, p = proportional_chi_square([300, 0, 300], [1, 1, 1])
        assert p < 1e-10

    def test_proportional_chi_square_drops_zero_weights(self):
        __, p = proportional_chi_square([50, 0, 50], [1, 0, 1])
        assert p > 0.9

    def test_proportional_chi_square_zero_weight_with_count(self):
        with pytest.raises(ValueError):
            proportional_chi_square([50, 1], [1, 0])

    def test_proportional_chi_square_length_mismatch(self):
        with pytest.raises(ValueError):
            proportional_chi_square([1, 2], [1])

    def test_proportional_chi_square_degenerate(self):
        assert proportional_chi_square([5], [1]) == (0.0, 1.0)
        assert proportional_chi_square([0, 0], [1, 1]) == (0.0, 1.0)


class TestPhysicalTracker:
    def test_initial_identity(self):
        tracker = PhysicalTracker(3)
        assert tracker.table == (0, 1, 2)

    def test_invalid_n0(self):
        with pytest.raises(ValueError):
            PhysicalTracker(0)

    def test_add_mints_fresh_ids(self):
        tracker = PhysicalTracker(3)
        tracker.apply(ScalingOp.add(2))
        assert tracker.table == (0, 1, 2, 3, 4)

    def test_remove_deletes_slots(self):
        tracker = PhysicalTracker(5)
        tracker.apply(ScalingOp.remove([1, 3]))
        assert tracker.table == (0, 2, 4)

    def test_removed_ids_never_reused(self):
        tracker = PhysicalTracker(3)
        tracker.apply(ScalingOp.remove([0]))
        tracker.apply(ScalingOp.add(1))
        assert tracker.table == (1, 2, 3)

    def test_remove_bounds(self):
        tracker = PhysicalTracker(3)
        with pytest.raises(IndexError):
            tracker.apply(ScalingOp.remove([3]))


class TestOptimalMoveFraction:
    def test_addition(self):
        assert optimal_move_fraction(ScalingOp.add(1), 4) == Fraction(1, 5)
        assert optimal_move_fraction(ScalingOp.add(4), 4) == Fraction(1, 2)

    def test_removal(self):
        assert optimal_move_fraction(ScalingOp.remove([0]), 4) == Fraction(1, 4)
        assert optimal_move_fraction(ScalingOp.remove([0, 1]), 4) == Fraction(1, 2)


class TestRunSchedule:
    def test_scaddar_near_optimal(self):
        blocks = [
            Block(0, i, x0) for i, x0 in enumerate(random_x0s(8_000, 32, seed=1))
        ]
        results = run_schedule(
            ScaddarPolicy(4, bits=32), blocks, [ScalingOp.add(1), ScalingOp.remove([0])]
        )
        assert len(results) == 2
        add, remove = results
        assert add.kind == "add"
        assert abs(add.moved_fraction - 0.2) < 0.02
        assert add.overhead_ratio == pytest.approx(1.0, abs=0.1)
        assert remove.kind == "remove"
        assert abs(remove.moved_fraction - 0.2) < 0.02

    def test_complete_moves_nearly_all(self):
        blocks = [
            Block(0, i, x0) for i, x0 in enumerate(random_x0s(5_000, 32, seed=2))
        ]
        results = run_schedule(CompleteRedistribution(4), blocks, [ScalingOp.add(1)])
        assert results[0].moved_fraction > 0.7

    def test_requires_fresh_policy(self):
        policy = ScaddarPolicy(4, bits=32)
        policy.apply(ScalingOp.add(1))
        with pytest.raises(ValueError):
            run_schedule(policy, [], [ScalingOp.add(1)])

    def test_removal_counts_only_physical_moves(self):
        """Survivor re-indexing must not count as movement."""
        blocks = [
            Block(0, i, x0) for i, x0 in enumerate(random_x0s(5_000, 32, seed=3))
        ]
        policy = ScaddarPolicy(4, bits=32)
        before = {b.block_id: policy.disk_of(b) for b in blocks}
        results = run_schedule(policy, blocks, [ScalingOp.remove([0])])
        evicted = sum(1 for d in before.values() if d == 0)
        assert results[0].moved == evicted

    def test_overhead_ratio_semantics(self):
        move = run_schedule(
            ScaddarPolicy(4, bits=32),
            [Block(0, i, x) for i, x in enumerate(random_x0s(2_000, 32, seed=4))],
            [ScalingOp.add(1)],
        )[0]
        assert move.overhead_ratio == pytest.approx(
            move.moved_fraction / float(move.optimal_fraction)
        )
