"""Pinning the paper's Definition 4.1 algebra on the live mapper.

Section 4.2 derives each REMAP from identities on
``q_j = X_j div N_j`` and ``r_j = X_j mod N_j``:

* ``D_k`` always equals ``r_k`` ("D_k always equals r_k for any k-th
  operation");
* after an addition, the stored fresh randomness is
  ``X_j div N_j = q_{j-1} div N_j`` (Eq. 4 construction);
* after a removal that keeps the block, ``X_j div N_j = q_{j-1}``
  (Eq. 3a "later we can retrieve q_{j-1}");
* after a removal that moves the block, ``X_j = q_{j-1}`` itself.

These tests walk random schedules and check the identities at every
link of the chain — the strongest guard against a subtly wrong REMAP.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.remap import survivor_ranks
from repro.core.scaddar import ScaddarMapper


@st.composite
def schedules_with_x0(draw):
    from repro.core.operations import ScalingOp

    n0 = draw(st.integers(2, 8))
    ops = []
    n = n0
    for __ in range(draw(st.integers(1, 6))):
        if n > 2 and draw(st.booleans()):
            victims = draw(
                st.sets(st.integers(0, n - 1), min_size=1, max_size=min(2, n - 2))
            )
            ops.append(ScalingOp.remove(victims))
            n -= len(victims)
        else:
            count = draw(st.integers(1, 3))
            ops.append(ScalingOp.add(count))
            n += count
    x0 = draw(st.integers(0, 2**32 - 1))
    return n0, ops, x0


class TestDef41:
    @given(spec=schedules_with_x0())
    @settings(max_examples=150, deadline=None)
    def test_disk_equals_r_at_every_epoch(self, spec):
        """D_k == X_k mod N_k along the whole chain."""
        n0, ops, x0 = spec
        mapper = ScaddarMapper(n0=n0, bits=32)
        for op in ops:
            mapper.apply(op)
        chain = mapper.x_chain(x0)
        history = mapper.disk_history(x0)
        counts = mapper.log.disk_counts()
        for x, disk, n in zip(chain, history, counts):
            assert disk == x % n

    @given(spec=schedules_with_x0())
    @settings(max_examples=150, deadline=None)
    def test_fresh_randomness_identities(self, spec):
        """The q-recovery identities of Eq. 3 and Eq. 4."""
        n0, ops, x0 = spec
        mapper = ScaddarMapper(n0=n0, bits=32)
        for op in ops:
            mapper.apply(op)
        chain = mapper.x_chain(x0)
        counts = mapper.log.disk_counts()
        for j, op in enumerate(mapper.log.operations):
            x_prev, x_next = chain[j], chain[j + 1]
            n_prev, n_next = counts[j], counts[j + 1]
            q_prev, r_prev = divmod(x_prev, n_prev)
            if op.kind == "add":
                # Eq. 4: X_j div N_j == q_{j-1} div N_j (both branches).
                assert x_next // n_next == q_prev // n_next
            else:
                ranks = survivor_ranks(op.removed, n_prev)
                if ranks[r_prev] >= 0:
                    # Eq. 3a: stays put, q preserved as the high part.
                    assert x_next // n_next == q_prev
                    assert x_next % n_next == ranks[r_prev]
                else:
                    # Eq. 3b: the fresh draw IS q_{j-1}.
                    assert x_next == q_prev

    @given(spec=schedules_with_x0())
    @settings(max_examples=100, deadline=None)
    def test_stayers_preserve_physical_identity(self, spec):
        """Any block whose physical disk survives an operation and whose
        remap says 'stay' must still map to that same physical disk."""
        from repro.analysis.movement import PhysicalTracker

        n0, ops, x0 = spec
        mapper = ScaddarMapper(n0=n0, bits=32)
        tracker = PhysicalTracker(n0)
        previous_physical = tracker.physical(mapper.disk_of(x0))
        for op in ops:
            n_before = mapper.current_disks
            x_before = mapper.x_chain(x0)[-1]
            r_before = x_before % n_before
            mapper.apply(op)
            tracker.apply(op)
            now_physical = tracker.physical(mapper.disk_of(x0))
            evicted = op.kind == "remove" and r_before in op.removed
            if not evicted and op.kind == "remove":
                assert now_physical == previous_physical
            previous_physical = now_physical
