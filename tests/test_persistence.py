"""Tests for server snapshot/restore (seeds + op log = whole layout)."""

from __future__ import annotations

import json

import pytest

from repro.core.operations import ScalingOp
from repro.server.cmserver import CMServer
from repro.server.persistence import (
    SNAPSHOT_VERSION,
    restore_server,
    server_to_json,
    snapshot_server,
)
from repro.storage.disk import DiskSpec
from repro.workloads.generator import uniform_catalog


def make_server(scaled=True):
    catalog = uniform_catalog(4, 150, master_seed=0x9E57, bits=32)
    spec = DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=6)
    server = CMServer(catalog, [spec] * 4, bits=32, default_spec=spec)
    if scaled:
        server.scale(ScalingOp.add(2))
        server.scale(ScalingOp.remove([1]))
        server.scale(ScalingOp.add(1))
    return server


def logical_layout(server):
    """Logical disk of every block (physical ids differ across restores)."""
    layout = {}
    for media in server.catalog:
        for index in range(media.num_blocks):
            pid = server.block_location(media.object_id, index)
            layout[(media.object_id, index)] = server.array.logical_of(pid)
    return layout


class TestSnapshot:
    def test_snapshot_is_block_count_independent(self):
        small = snapshot_server(make_server(scaled=False))
        big_catalog = uniform_catalog(4, 3_000, master_seed=0x9E57, bits=32)
        spec = DiskSpec(capacity_blocks=100_000)
        big = snapshot_server(CMServer(big_catalog, [spec] * 4, bits=32))
        # Same number of JSON keys/entries modulo num_blocks scalars.
        assert len(small["catalog"]["objects"]) == len(big["catalog"]["objects"])

    def test_snapshot_is_json_serializable(self):
        payload = server_to_json(make_server())
        assert json.loads(payload)["version"] == SNAPSHOT_VERSION

    def test_disk_specs_recorded_in_logical_order(self):
        server = make_server(scaled=False)
        fancy = DiskSpec(capacity_blocks=1_000, bandwidth_blocks_per_round=99)
        server.scale(ScalingOp.add(1), specs=[fancy])
        snap = snapshot_server(server)
        assert snap["disks"][-1]["bandwidth_blocks_per_round"] == 99


class TestRestore:
    def test_layout_identical_after_restore(self):
        server = make_server()
        restored = restore_server(server_to_json(server))
        assert logical_layout(restored) == logical_layout(server)

    def test_restore_preserves_counts(self):
        server = make_server()
        restored = restore_server(snapshot_server(server))
        assert restored.num_disks == server.num_disks
        assert restored.total_blocks == server.total_blocks
        assert restored.mapper.num_operations == server.mapper.num_operations
        assert restored.load_vector() == server.load_vector()

    def test_restored_server_keeps_scaling(self):
        server = make_server()
        restored = restore_server(snapshot_server(server))
        report = restored.scale(ScalingOp.add(1))
        assert report.n_after == server.num_disks + 1
        # The original and restored evolve identically on the same op.
        server.scale(ScalingOp.add(1))
        assert logical_layout(restored) == logical_layout(server)

    def test_restore_preserves_budget_position(self):
        server = make_server()
        restored = restore_server(snapshot_server(server))
        assert restored.mapper.remaining_operations(0.05) == (
            server.mapper.remaining_operations(0.05)
        )

    def test_restore_after_reshuffle(self):
        server = make_server()
        server.reshuffle()
        restored = restore_server(snapshot_server(server))
        assert restored.reshuffles == 1
        assert logical_layout(restored) == logical_layout(server)

    def test_unknown_version_rejected(self):
        snap = snapshot_server(make_server(scaled=False))
        snap["version"] = 99
        with pytest.raises(ValueError):
            restore_server(snap)

    def test_new_objects_after_restore_get_fresh_ids(self):
        server = make_server(scaled=False)
        restored = restore_server(snapshot_server(server))
        media = restored.add_object("late", 10)
        assert media.object_id == len(server.catalog)


class TestFromState:
    def test_spec_count_must_match_mapper(self):
        server = make_server(scaled=False)
        from repro.server.cmserver import CMServer as Cls

        with pytest.raises(ValueError):
            Cls.from_state(
                server.catalog, server.mapper, [DiskSpec()] * 3
            )
