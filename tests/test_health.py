"""Disk health: state machine, circuit breakers, and the scrubber."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.cmserver import CMServer
from repro.server.faults import FaultInjector
from repro.server.health import (
    CircuitBreaker,
    DiskHealth,
    DiskHealthMonitor,
    HealthTransitionError,
    Scrubber,
)
from repro.storage.disk import DiskSpec


@pytest.fixture
def server(small_catalog):
    spec = DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=8)
    return CMServer(small_catalog, [spec] * 4, bits=32, default_spec=spec)


class TestCircuitBreaker:
    def test_closed_allows_reads(self):
        breaker = CircuitBreaker(trip_after=3)
        assert not breaker.is_open
        assert breaker.allows(0)

    def test_trips_after_k_consecutive_failures(self):
        breaker = CircuitBreaker(trip_after=3)
        assert not breaker.record_failure(0)
        assert not breaker.record_failure(0)
        assert breaker.record_failure(0)  # third in a row trips
        assert breaker.is_open
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(trip_after=3)
        breaker.record_failure(0)
        breaker.record_failure(0)
        breaker.record_success()
        assert not breaker.record_failure(0)  # streak restarted
        assert not breaker.is_open

    def test_open_blocks_until_cooldown_elapses(self):
        breaker = CircuitBreaker(trip_after=1, cooldown_rounds=4)
        breaker.record_failure(10)
        for r in range(10, 14):
            assert not breaker.allows(r)
        assert breaker.allows(14)  # half-open probe

    def test_half_open_admits_one_probe_per_round(self):
        breaker = CircuitBreaker(trip_after=1, cooldown_rounds=1)
        breaker.record_failure(0)
        assert breaker.allows(1)
        assert not breaker.allows(1)  # second read same round: blocked
        breaker.new_round()
        assert breaker.allows(2)

    def test_failed_probe_doubles_cooldown_up_to_cap(self):
        breaker = CircuitBreaker(
            trip_after=1, cooldown_rounds=2, max_cooldown_rounds=4
        )
        breaker.record_failure(0)
        assert breaker.allows(2)
        assert breaker.record_failure(2)  # probe fails: re-open, cooldown 4
        assert not breaker.allows(5)
        assert breaker.allows(6)
        assert breaker.record_failure(6)  # cooldown capped at 4, not 8
        assert breaker.allows(10)

    def test_successful_probe_closes_and_resets_backoff(self):
        breaker = CircuitBreaker(trip_after=1, cooldown_rounds=2)
        breaker.record_failure(0)
        assert breaker.allows(2)
        breaker.record_success()
        assert not breaker.is_open
        breaker.record_failure(7)
        assert not breaker.allows(8)  # back to the base 2-round cooldown
        assert breaker.allows(9)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(trip_after=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_rounds=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_rounds=8, max_cooldown_rounds=4)


class TestCircuitBreakerBackoffProperty:
    """Satellite: the capped-exponential cooldown law, under any probe
    outcome sequence — doubles per failed half-open probe, caps at
    ``max_cooldown_rounds``, resets to base on success."""

    @given(
        base=st.integers(1, 8),
        doublings=st.integers(0, 4),
        outcomes=st.lists(st.booleans(), min_size=1, max_size=24),
    )
    @settings(max_examples=80, deadline=None)
    def test_cooldown_doubles_caps_and_resets(self, base, doublings, outcomes):
        max_cooldown = base * 2**doublings
        breaker = CircuitBreaker(
            trip_after=1,
            cooldown_rounds=base,
            max_cooldown_rounds=max_cooldown,
        )
        breaker.record_failure(0)
        assert breaker.current_cooldown == base
        expected = base
        round_index = 0
        for ok in outcomes:
            # The breaker blocks the whole cooldown, then admits exactly
            # one half-open probe.
            assert not breaker.allows(round_index + expected - 1)
            round_index += expected
            breaker.new_round()
            assert breaker.allows(round_index)
            if ok:
                breaker.record_success()
                assert not breaker.is_open
                assert breaker.current_cooldown == base
                # Re-trip so the next iteration starts from an open
                # breaker with the backoff freshly reset.
                breaker.record_failure(round_index)
                expected = base
            else:
                assert breaker.record_failure(round_index)
                expected = min(expected * 2, max_cooldown)
            assert breaker.is_open
            assert breaker.current_cooldown == expected
            assert breaker.current_cooldown <= max_cooldown


class TestDiskHealthMonitor:
    def test_disks_default_to_healthy(self, server):
        monitor = DiskHealthMonitor(server.array)
        for pid in server.array.physical_ids:
            assert monitor.state(pid) is DiskHealth.HEALTHY
            assert monitor.is_readable(pid, 0)

    def test_breaker_trip_demotes_to_suspect(self, server):
        monitor = DiskHealthMonitor(server.array, trip_after=2)
        pid = server.array.physical_at(0)
        monitor.observe_failure(pid, 0)
        assert monitor.state(pid) is DiskHealth.HEALTHY
        monitor.observe_failure(pid, 0)
        assert monitor.state(pid) is DiskHealth.SUSPECT
        assert not monitor.is_readable(pid, 1)  # cooling down

    def test_successful_probe_restores_healthy(self, server):
        monitor = DiskHealthMonitor(
            server.array, trip_after=1, cooldown_rounds=2
        )
        pid = server.array.physical_at(0)
        monitor.observe_failure(pid, 0)
        assert monitor.state(pid) is DiskHealth.SUSPECT
        assert monitor.is_readable(pid, 2)  # the half-open probe
        monitor.observe_success(pid)
        assert monitor.state(pid) is DiskHealth.HEALTHY
        assert monitor.is_readable(pid, 2)

    def test_dead_and_rebuilding_never_serve(self, server):
        monitor = DiskHealthMonitor(server.array)
        pid = server.array.physical_at(1)
        monitor.mark_dead(pid)
        assert not monitor.is_readable(pid, 0)
        monitor.begin_rebuild(pid)
        assert monitor.state(pid) is DiskHealth.REBUILDING
        assert not monitor.is_readable(pid, 0)

    def test_only_dead_disks_can_begin_rebuild(self, server):
        monitor = DiskHealthMonitor(server.array)
        pid = server.array.physical_at(0)
        with pytest.raises(HealthTransitionError):
            monitor.begin_rebuild(pid)

    def test_dead_disks_cannot_jump_to_healthy(self, server):
        monitor = DiskHealthMonitor(server.array)
        pid = server.array.physical_at(0)
        monitor.mark_dead(pid)
        with pytest.raises(HealthTransitionError):
            monitor.mark_healthy(pid)

    def test_snapshot_and_transition_log(self, server):
        monitor = DiskHealthMonitor(server.array)
        pid = server.array.physical_at(2)
        monitor.mark_dead(pid)
        monitor.begin_rebuild(pid)
        monitor.mark_healthy(pid)
        snap = monitor.snapshot()
        assert set(snap) == set(server.array.physical_ids)
        assert snap[pid] == "healthy"
        assert [(f.value, t.value) for p, f, t in monitor.transitions
                if p == pid] == [
            ("healthy", "dead"),
            ("dead", "rebuilding"),
            ("rebuilding", "healthy"),
        ]


class TestScrubber:
    def test_rebuild_is_rate_bounded_and_promotes(self, server):
        monitor = DiskHealthMonitor(server.array)
        pid = server.array.physical_at(1)
        resident = len(server.array.blocks_on_physical(pid))
        assert resident > 0
        monitor.mark_dead(pid)
        monitor.begin_rebuild(pid)
        rate = max(1, resident // 4)
        scrubber = Scrubber(server.array, monitor, rate_per_round=rate)
        rounds = 0
        while monitor.state(pid) is DiskHealth.REBUILDING:
            report = scrubber.run_round(rounds)
            assert report.rebuilt_blocks + report.checked <= rate
            rounds += 1
            assert rounds < 100
        assert monitor.state(pid) is DiskHealth.HEALTHY
        assert scrubber.total_rebuilt == resident
        assert scrubber.rebuild_progress(pid) == 1.0
        # Promotion takes ceil(resident / rate) rounds: bounded, not instant.
        assert rounds == -(-resident // rate)

    def test_patrol_checks_and_repairs_divergence(self, server):
        monitor = DiskHealthMonitor(server.array)
        injector = FaultInjector(seed=7, scrub_divergence_rate=0.999999)
        repaired = []
        scrubber = Scrubber(
            server.array,
            monitor,
            rate_per_round=5,
            injector=injector,
            on_repair=repaired.append,
        )
        report = scrubber.run_round(0)
        assert report.checked == 5
        assert report.repaired == 5  # near-certain divergence: every check
        assert len(repaired) == 5
        assert scrubber.total_checked == scrubber.total_repaired == 5

    def test_patrol_walks_deterministically(self, server):
        def checked_blocks():
            monitor = DiskHealthMonitor(server.array)
            seen = []
            scrubber = Scrubber(
                server.array,
                monitor,
                rate_per_round=8,
                injector=FaultInjector(
                    seed=3, scrub_divergence_rate=0.999999
                ),
                on_repair=seen.append,
            )
            for r in range(4):
                scrubber.run_round(r)
            return seen

        assert checked_blocks() == checked_blocks()

    def test_rate_validation(self, server):
        monitor = DiskHealthMonitor(server.array)
        with pytest.raises(ValueError):
            Scrubber(server.array, monitor, rate_per_round=0)
