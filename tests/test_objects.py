"""Unit tests for MediaObject and ObjectCatalog."""

from __future__ import annotations

import pytest

from repro.server.objects import MediaObject, ObjectCatalog


class TestMediaObject:
    def test_validation(self):
        with pytest.raises(ValueError):
            MediaObject(object_id=0, name="x", num_blocks=0, seed=1)
        with pytest.raises(ValueError):
            MediaObject(
                object_id=0, name="x", num_blocks=1, seed=1, blocks_per_round=0
            )

    def test_blocks_match_sequence(self):
        obj = MediaObject(object_id=3, name="m", num_blocks=20, seed=99, bits=32)
        blocks = obj.blocks()
        assert len(blocks) == 20
        seq = obj.sequence()
        assert [b.x0 for b in blocks] == seq.prefix(20)
        assert all(b.object_id == 3 for b in blocks)
        assert [b.index for b in blocks] == list(range(20))

    def test_block_indexed_access(self):
        obj = MediaObject(object_id=1, name="m", num_blocks=10, seed=7, bits=32)
        for i in (0, 5, 9):
            assert obj.block(i) == obj.blocks()[i]

    def test_block_bounds(self):
        obj = MediaObject(object_id=1, name="m", num_blocks=10, seed=7)
        with pytest.raises(IndexError):
            obj.block(10)
        with pytest.raises(IndexError):
            obj.block(-1)


class TestObjectCatalog:
    def test_ids_increment(self):
        catalog = ObjectCatalog()
        a = catalog.add_object("a", 5)
        b = catalog.add_object("b", 5)
        assert (a.object_id, b.object_id) == (0, 1)
        assert len(catalog) == 2

    def test_seeds_are_unique(self):
        catalog = ObjectCatalog()
        seeds = {catalog.add_object(f"o{i}", 1).seed for i in range(200)}
        assert len(seeds) == 200

    def test_reproducible_from_master_seed(self):
        a = ObjectCatalog(master_seed=5)
        b = ObjectCatalog(master_seed=5)
        assert a.add_object("x", 3).seed == b.add_object("x", 3).seed

    def test_different_master_seeds_differ(self):
        a = ObjectCatalog(master_seed=5).add_object("x", 3)
        b = ObjectCatalog(master_seed=6).add_object("x", 3)
        assert a.seed != b.seed

    def test_get_and_contains(self):
        catalog = ObjectCatalog()
        obj = catalog.add_object("a", 5)
        assert catalog.get(obj.object_id) is obj
        assert obj.object_id in catalog
        assert 99 not in catalog
        with pytest.raises(KeyError):
            catalog.get(99)

    def test_remove_object(self):
        catalog = ObjectCatalog()
        obj = catalog.add_object("a", 5)
        removed = catalog.remove_object(obj.object_id)
        assert removed is obj
        assert len(catalog) == 0
        with pytest.raises(KeyError):
            catalog.remove_object(obj.object_id)

    def test_total_blocks_and_all_blocks(self):
        catalog = ObjectCatalog(bits=32)
        catalog.add_object("a", 5)
        catalog.add_object("b", 7)
        assert catalog.total_blocks == 12
        blocks = catalog.all_blocks()
        assert len(blocks) == 12
        assert [(b.object_id, b.index) for b in blocks] == [
            (0, i) for i in range(5)
        ] + [(1, i) for i in range(7)]

    def test_reseed_all_changes_sequences_preserves_identity(self):
        catalog = ObjectCatalog(bits=32)
        obj = catalog.add_object("a", 10)
        old_seed = obj.seed
        old_x0s = [b.x0 for b in obj.blocks()]
        catalog.reseed_all()
        renewed = catalog.get(obj.object_id)
        assert renewed.seed != old_seed
        assert renewed.name == "a"
        assert renewed.num_blocks == 10
        assert [b.x0 for b in renewed.blocks()] != old_x0s

    def test_reseed_epochs_differ(self):
        catalog = ObjectCatalog(bits=32)
        catalog.add_object("a", 1)
        seeds = set()
        for __ in range(5):
            seeds.add(catalog.get(0).seed)
            catalog.reseed_all()
        assert len(seeds) == 5

    def test_iteration(self):
        catalog = ObjectCatalog()
        catalog.add_object("a", 1)
        catalog.add_object("b", 2)
        assert [o.name for o in catalog] == ["a", "b"]
