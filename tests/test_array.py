"""Unit tests for the DiskArray (logical/physical mapping + inventory)."""

from __future__ import annotations

import pytest

from repro.storage.array import DiskArray, PlacementConflictError
from repro.storage.block import Block, BlockId
from repro.storage.disk import DiskSpec


def make_array(n=4, capacity=100):
    return DiskArray([DiskSpec(capacity_blocks=capacity)] * n)


def b(i, x0=None):
    return Block(object_id=0, index=i, x0=x0 if x0 is not None else i)


class TestTopology:
    def test_initial_logical_order(self):
        array = make_array(4)
        assert array.num_disks == 4
        assert len(array.physical_ids) == 4
        assert [array.logical_of(pid) for pid in array.physical_ids] == [0, 1, 2, 3]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DiskArray([])

    def test_add_group_appends_logicals(self):
        array = make_array(3)
        before = array.physical_ids
        new_ids = array.add_group([DiskSpec(), DiskSpec()])
        assert array.num_disks == 5
        assert array.physical_ids == before + tuple(new_ids)
        assert array.physical_at(3) == new_ids[0]
        assert array.physical_at(4) == new_ids[1]

    def test_add_empty_group_rejected(self):
        with pytest.raises(ValueError):
            make_array().add_group([])

    def test_physical_at_bounds(self):
        array = make_array(2)
        with pytest.raises(IndexError):
            array.physical_at(2)
        with pytest.raises(IndexError):
            array.physical_at(-1)

    def test_logical_of_unknown(self):
        with pytest.raises(KeyError):
            make_array().logical_of(10**9)

    def test_disk_lookup(self):
        array = make_array()
        pid = array.physical_at(0)
        assert array.disk(pid).physical_id == pid
        with pytest.raises(KeyError):
            array.disk(10**9)

    def test_survivors_after_removal(self):
        array = make_array(5)
        pids = array.physical_ids
        survivors = array.survivors_after_removal([1, 3])
        assert survivors == [pids[0], pids[2], pids[4]]
        # Non-destructive.
        assert array.num_disks == 5

    def test_survivors_bounds_check(self):
        with pytest.raises(IndexError):
            make_array(3).survivors_after_removal([3])

    def test_remove_group_compacts(self):
        array = make_array(5)
        pids = array.physical_ids
        removed = array.remove_group([1, 3])
        assert [d.physical_id for d in removed] == [pids[1], pids[3]]
        assert array.physical_ids == (pids[0], pids[2], pids[4])
        assert array.logical_of(pids[4]) == 2

    def test_remove_nonempty_disk_refused(self):
        array = make_array()
        array.place(b(0), 1)
        with pytest.raises(PlacementConflictError):
            array.remove_group([1])

    def test_remove_all_refused(self):
        with pytest.raises(ValueError):
            make_array(2).remove_group([0, 1])

    def test_remove_empty_group_refused(self):
        with pytest.raises(ValueError):
            make_array().remove_group([])


class TestInventory:
    def test_place_and_home(self):
        array = make_array()
        array.place(b(0), 2)
        assert array.home_of(BlockId(0, 0)) == array.physical_at(2)
        assert array.total_blocks == 1
        assert array.load_vector() == [0, 0, 1, 0]

    def test_place_duplicate_refused(self):
        array = make_array()
        array.place(b(0), 0)
        with pytest.raises(PlacementConflictError):
            array.place(b(0), 1)

    def test_place_capacity_enforced(self):
        array = make_array(2, capacity=2)
        array.place(b(0), 0)
        array.place(b(1), 0)
        with pytest.raises(PlacementConflictError):
            array.place(b(2), 0)

    def test_place_physical(self):
        array = make_array()
        pid = array.physical_at(3)
        array.place_physical(b(9), pid)
        assert array.home_of(BlockId(0, 9)) == pid

    def test_place_unknown_physical(self):
        with pytest.raises(KeyError):
            make_array().place_physical(b(0), 10**9)

    def test_move_transfers_and_counts(self):
        array = make_array()
        array.place(b(0), 0)
        target = array.physical_at(3)
        assert array.move(BlockId(0, 0), target) is True
        assert array.home_of(BlockId(0, 0)) == target
        assert array.blocks_moved == 1
        assert array.load_vector() == [0, 0, 0, 1]

    def test_move_noop_when_already_there(self):
        array = make_array()
        array.place(b(0), 1)
        assert array.move(BlockId(0, 0), array.physical_at(1)) is False
        assert array.blocks_moved == 0

    def test_move_unknown_block(self):
        with pytest.raises(KeyError):
            make_array().move(BlockId(0, 0), 0)

    def test_move_unknown_target(self):
        array = make_array()
        array.place(b(0), 0)
        with pytest.raises(KeyError):
            array.move(BlockId(0, 0), 10**9)

    def test_move_respects_capacity(self):
        array = make_array(2, capacity=1)
        array.place(b(0), 0)
        array.place(b(1), 1)
        with pytest.raises(PlacementConflictError):
            array.move(BlockId(0, 0), array.physical_at(1))

    def test_blocks_on(self):
        array = make_array()
        array.place(b(0), 1)
        array.place(b(1), 1)
        assert {blk.index for blk in array.blocks_on(1)} == {0, 1}
        assert array.blocks_on(0) == frozenset()

    def test_blocks_on_unknown_physical(self):
        with pytest.raises(KeyError):
            make_array().blocks_on_physical(10**9)

    def test_drop(self):
        array = make_array()
        array.place(b(0), 0)
        array.drop(BlockId(0, 0))
        assert array.total_blocks == 0
        with pytest.raises(KeyError):
            array.home_of(BlockId(0, 0))

    def test_utilization(self):
        array = make_array(2, capacity=10)
        assert array.utilization() == 0.0
        array.place(b(0), 0)
        array.place(b(1), 1)
        assert array.utilization() == pytest.approx(0.1)

    def test_repr(self):
        assert "disks=4" in repr(make_array())
