"""Unit tests for the from-scratch pseudo-random generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import chi_square_uniform
from repro.prng.generators import (
    Lcg48,
    Pcg32,
    SplitMix64,
    Xorshift64Star,
    _mix64,
)

ALL_GENERATORS = [SplitMix64, Xorshift64Star, Lcg48, Pcg32]

#: Generators whose output is narrower than 64 bits.
NARROW = (Lcg48, Pcg32)


def _make(cls, seed, bits=None):
    if bits is None:
        bits = 32 if cls in NARROW else 64
    return cls(seed, bits)


class TestInterface:
    @pytest.mark.parametrize("cls", ALL_GENERATORS)
    def test_same_seed_same_stream(self, cls):
        a = _make(cls, 42)
        b = _make(cls, 42)
        assert [a.next() for _ in range(50)] == [b.next() for _ in range(50)]

    @pytest.mark.parametrize("cls", ALL_GENERATORS)
    def test_different_seeds_differ(self, cls):
        a = _make(cls, 1)
        b = _make(cls, 2)
        assert [a.next() for _ in range(10)] != [b.next() for _ in range(10)]

    @pytest.mark.parametrize("cls", ALL_GENERATORS)
    def test_values_within_bits(self, cls):
        bits = 16
        gen = cls(7, bits=bits)
        for _ in range(200):
            assert 0 <= gen.next() < (1 << bits)

    @pytest.mark.parametrize("cls", ALL_GENERATORS)
    def test_r_max(self, cls):
        gen = cls(1, bits=20)
        assert gen.r_max == (1 << 20) - 1

    @pytest.mark.parametrize("cls", ALL_GENERATORS)
    def test_index_counts_draws(self, cls):
        gen = _make(cls, 9)
        assert gen.index == 0
        for expected in range(1, 6):
            gen.next()
            assert gen.index == expected

    @pytest.mark.parametrize("bits", [0, -1, 65])
    def test_invalid_bits_rejected(self, bits):
        with pytest.raises(ValueError):
            SplitMix64(1, bits=bits)

    def test_lcg48_rejects_wide_output(self):
        with pytest.raises(ValueError):
            Lcg48(1, bits=33)

    def test_pcg32_rejects_wide_output(self):
        with pytest.raises(ValueError):
            Pcg32(1, bits=33)

    @pytest.mark.parametrize("cls", ALL_GENERATORS)
    def test_family_names_distinct(self, cls):
        assert cls.family != "abstract"

    def test_family_names_are_unique(self):
        families = {cls.family for cls in ALL_GENERATORS}
        assert len(families) == len(ALL_GENERATORS)


class TestIndexedAccess:
    @pytest.mark.parametrize("cls", ALL_GENERATORS)
    def test_at_matches_iteration(self, cls):
        gen = _make(cls, 1234)
        stream = [gen.next() for _ in range(30)]
        fresh = _make(cls, 1234)
        assert [fresh.at(i) for i in range(30)] == stream

    @pytest.mark.parametrize("cls", ALL_GENERATORS)
    def test_at_does_not_disturb_iteration(self, cls):
        gen = _make(cls, 55)
        first = gen.next()
        gen.at(10)
        second_a = gen.next()
        replay = _make(cls, 55)
        assert replay.next() == first
        assert replay.next() == second_a

    @pytest.mark.parametrize("cls", ALL_GENERATORS)
    def test_at_negative_rejected(self, cls):
        with pytest.raises(ValueError):
            _make(cls, 1).at(-1)

    @given(seed=st.integers(0, 2**64 - 1), index=st.integers(0, 300))
    @settings(max_examples=50, deadline=None)
    def test_splitmix_random_access_property(self, seed, index):
        gen = SplitMix64(seed)
        for _ in range(index):
            gen.next()
        assert gen.next() == SplitMix64(seed).at(index)

    @given(seed=st.integers(0, 2**48 - 1), index=st.integers(0, 500))
    @settings(max_examples=50, deadline=None)
    def test_lcg48_jump_ahead_property(self, seed, index):
        gen = Lcg48(seed)
        for _ in range(index):
            gen.next()
        assert gen.next() == Lcg48(seed).at(index)

    def test_lcg48_affine_power_identity(self):
        assert Lcg48._affine_power(0) == (1, 0)

    def test_lcg48_affine_power_one(self):
        assert Lcg48._affine_power(1) == (Lcg48._A, Lcg48._C)

    def test_lcg48_affine_power_composes(self):
        a2, c2 = Lcg48._affine_power(2)
        m = Lcg48._M
        x = 123456789
        one = (Lcg48._A * x + Lcg48._C) % m
        two = (Lcg48._A * one + Lcg48._C) % m
        assert (a2 * x + c2) % m == two

    @given(seed=st.integers(0, 2**64 - 1), index=st.integers(0, 500))
    @settings(max_examples=50, deadline=None)
    def test_pcg32_jump_ahead_property(self, seed, index):
        gen = Pcg32(seed)
        for _ in range(index):
            gen.next()
        assert gen.next() == Pcg32(seed).at(index)


class TestStatisticalQuality:
    @pytest.mark.parametrize("cls", ALL_GENERATORS)
    def test_low_bits_roughly_uniform(self, cls):
        gen = _make(cls, 99)
        counts = [0] * 8
        for _ in range(8_000):
            counts[gen.next() % 8] += 1
        __, pvalue = chi_square_uniform(counts)
        assert pvalue > 1e-4

    @pytest.mark.parametrize("cls", ALL_GENERATORS)
    def test_mod_n_uniform_for_odd_n(self, cls):
        gen = _make(cls, 7)
        counts = [0] * 7
        for _ in range(14_000):
            counts[gen.next() % 7] += 1
        __, pvalue = chi_square_uniform(counts)
        assert pvalue > 1e-4

    def test_mix64_is_bijective_on_samples(self):
        seen = {_mix64(x) for x in range(10_000)}
        assert len(seen) == 10_000

    def test_mix64_avalanche(self):
        # Flipping one input bit should flip roughly half the output bits.
        flips = bin(_mix64(0) ^ _mix64(1)).count("1")
        assert 16 <= flips <= 48

    def test_xorshift_zero_seed_does_not_stick(self):
        gen = Xorshift64Star(0)
        values = {gen.next() for _ in range(10)}
        assert len(values) == 10
