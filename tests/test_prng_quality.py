"""Tests for the PRNG statistical-quality battery."""

from __future__ import annotations

import pytest

from repro.prng.generators import Lcg48, Pcg32, SplitMix64, Xorshift64Star
from repro.prng.quality import Randu, run_battery
from repro.prng.sequence import GENERATOR_FAMILIES


class TestBattery:
    @pytest.mark.parametrize(
        "cls,bits",
        [(SplitMix64, 32), (Xorshift64Star, 32), (Lcg48, 32), (Pcg32, 32)],
    )
    def test_shipped_families_pass(self, cls, bits):
        report = run_battery(cls(0xBEEF, bits=bits), samples=20_000)
        assert report.passes, report

    @pytest.mark.parametrize("seed", [1, 12345, 2**30 + 7])
    def test_randu_fails(self, seed):
        report = run_battery(Randu(seed), samples=20_000)
        assert not report.passes

    def test_randu_failure_mode_is_byte_uniformity(self):
        # RANDU's low bits are catastrophically regular.
        report = run_battery(Randu(12345), samples=20_000)
        assert report.byte_chi2_p < 1e-6

    def test_sample_size_validation(self):
        with pytest.raises(ValueError):
            run_battery(SplitMix64(1, bits=32), samples=10)

    def test_report_fields(self):
        report = run_battery(SplitMix64(7, bits=16), samples=2_000)
        assert report.family == "splitmix64"
        assert report.bits == 16
        assert report.samples == 2_000

    def test_64bit_width_also_passes(self):
        report = run_battery(SplitMix64(3, bits=64), samples=10_000)
        assert report.passes


class TestRandu:
    def test_not_a_registered_family(self):
        assert "randu" not in GENERATOR_FAMILIES

    def test_width_validation(self):
        with pytest.raises(ValueError):
            Randu(1, bits=32)

    def test_state_forced_odd(self):
        # An even seed would collapse RANDU's period; the seed is nudged.
        gen = Randu(4)
        values = {gen.next() for __ in range(100)}
        assert len(values) == 100

    def test_deterministic(self):
        a = [Randu(9).next() for __ in range(5)]
        b = [Randu(9).next() for __ in range(5)]
        assert a == b

    def test_lattice_structure_is_detectable(self):
        """The famous identity: x_{k+2} = 6 x_{k+1} - 9 x_k (mod 2^31)."""
        gen = Randu(12345)
        xs = [gen.next() for __ in range(100)]
        m = 1 << 31
        for a, b, c in zip(xs, xs[1:], xs[2:]):
            assert c == (6 * b - 9 * a) % m
