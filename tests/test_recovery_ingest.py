"""Tests for failure recovery and incremental ingest."""

from __future__ import annotations

import pytest

from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.server.cmserver import CMServer
from repro.server.faults import MirroredPlacement
from repro.server.ingest import IngestSession, IngestStalledError
from repro.server.recovery import simulate_failure_recovery
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream
from repro.storage.block import BlockId
from repro.storage.disk import DiskSpec
from repro.workloads.generator import random_x0s, uniform_catalog


class TestFailureRecovery:
    def make_mapper(self, n0=6, ops=2):
        mapper = ScaddarMapper(n0=n0, bits=32)
        for __ in range(ops):
            mapper.apply(ScalingOp.add(1))
        return mapper

    def test_validation(self):
        mapper = self.make_mapper()
        with pytest.raises(ValueError):
            simulate_failure_recovery(mapper, [1], failed_disk=99)
        with pytest.raises(ValueError):
            simulate_failure_recovery(mapper, [1], 0, bandwidth_per_disk=0)

    def test_no_data_loss(self):
        mapper = self.make_mapper()
        x0s = random_x0s(8_000, bits=32, seed=1)
        __, report = simulate_failure_recovery(mapper, x0s, failed_disk=3)
        assert report.blocks_lost == 0
        assert report.blocks_recovered > 0

    def test_input_mapper_untouched(self):
        mapper = self.make_mapper()
        ops_before = mapper.num_operations
        simulate_failure_recovery(mapper, random_x0s(500, 32, seed=2), 1)
        assert mapper.num_operations == ops_before

    def test_result_mapper_has_removal(self):
        mapper = self.make_mapper()
        after, __ = simulate_failure_recovery(
            mapper, random_x0s(500, 32, seed=3), 2
        )
        assert after.current_disks == mapper.current_disks - 1
        assert after.log.operations[-1] == ScalingOp.remove([2])

    def test_post_recovery_replicas_all_live(self):
        mapper = self.make_mapper()
        x0s = random_x0s(3_000, bits=32, seed=4)
        after, __ = simulate_failure_recovery(mapper, x0s, failed_disk=0)
        mirrored = MirroredPlacement(after)
        for x0 in x0s[:500]:
            pair = mirrored.replica_pair(x0)
            assert pair.primary != pair.mirror
            assert 0 <= pair.primary < after.current_disks

    def test_traffic_balance(self):
        """Reads equal writes equal recovered copies."""
        mapper = self.make_mapper()
        x0s = random_x0s(6_000, bits=32, seed=5)
        __, report = simulate_failure_recovery(mapper, x0s, failed_disk=4)
        assert sum(report.reads_by_disk.values()) == report.blocks_recovered
        assert sum(report.writes_by_disk.values()) == report.blocks_recovered

    def test_rebuild_rounds_scale_with_bandwidth(self):
        mapper = self.make_mapper()
        x0s = random_x0s(6_000, bits=32, seed=6)
        __, slow = simulate_failure_recovery(
            mapper, x0s, 1, bandwidth_per_disk=2
        )
        __, fast = simulate_failure_recovery(
            mapper, x0s, 1, bandwidth_per_disk=20
        )
        assert slow.rebuild_rounds > fast.rebuild_rounds >= 1


def make_server(n0=4, bandwidth=6):
    catalog = uniform_catalog(2, 100, master_seed=0x16E5, bits=32)
    spec = DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=bandwidth)
    return CMServer(catalog, [spec] * n0, bits=32, default_spec=spec)


class TestIngest:
    def test_unthrottled_ingest_matches_direct_load(self):
        server = make_server()
        direct = make_server()
        session = IngestSession(server, "new-movie", 150)
        report = session.run(budget=10_000)
        assert report.blocks_written == 150
        assert session.done

        direct.add_object("new-movie", 150)
        # Same catalog seeds -> identical placement.
        for index in range(150):
            block_id = BlockId(2, index)
            a = server.array.logical_of(server.array.home_of(block_id))
            b = direct.array.logical_of(direct.array.home_of(block_id))
            assert a == b

    def test_throttled_ingest_spreads_rounds(self):
        server = make_server()
        session = IngestSession(server, "slow-load", 120)
        report = session.run(budget=1)
        assert report.rounds > 120 / server.num_disks
        assert sum(report.writes_per_round) == 120

    def test_frontier_is_contiguous(self):
        server = make_server()
        session = IngestSession(server, "partial", 60)
        session.step(budget=2)
        frontier = session.frontier
        assert 0 < frontier < 60
        for index in range(frontier):
            assert server.block_location(session.object_id, index) >= 0
        with pytest.raises(KeyError):
            server.array.home_of(BlockId(session.object_id, frontier))

    def test_af_matches_inventory_after_ingest(self):
        server = make_server()
        session = IngestSession(server, "checked", 80)
        session.run(budget=3)
        for index in range(80):
            assert server.block_location(session.object_id, index) == (
                server.array.home_of(BlockId(session.object_id, index))
            )

    def test_zero_budget_stalls_loudly(self):
        server = make_server()
        session = IngestSession(server, "stuck", 10)
        with pytest.raises(IngestStalledError):
            session.run(budget=0)

    def test_watch_while_ingesting(self):
        """A stream can play behind the write frontier."""
        server = make_server(bandwidth=4)
        scheduler = RoundScheduler(server.array)
        session = IngestSession(server, "live", 100)
        session.step(budget=2)  # a few blocks exist
        stream = Stream(0, session.media)
        scheduler.admit(stream)
        hiccups = 0
        for __ in range(120):
            report = scheduler.run_round()
            hiccups += report.hiccups
            if not session.done:
                session.step(report.spare_by_physical)
        assert session.done
        assert stream.blocks_consumed == 100
        assert hiccups == 0

    def test_ingest_survives_scaling(self):
        server = make_server()
        session = IngestSession(server, "mid-scale", 100)
        session.step(budget=3)
        server.scale(ScalingOp.add(1))
        session.run(budget=5)
        for index in range(100):
            assert server.block_location(session.object_id, index) == (
                server.array.home_of(BlockId(session.object_id, index))
            )
