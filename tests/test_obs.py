"""The observability layer: events, spans, metrics, exporters, facade."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.availability import run_availability
from repro.obs import (
    NULL_OBS,
    SPAN_HISTOGRAM,
    Counter,
    EventLog,
    Histogram,
    MetricsRegistry,
    NullObs,
    Obs,
    Tracer,
    sanitize_name,
    to_json,
    to_prometheus,
)

QUICK = dict(
    num_objects=2,
    blocks_per_object=60,
    rounds=60,
    kill_round=15,
    replace_round=30,
    read_fault_rates=(0.05,),
    schemes=("mirror",),
    scrub_rate=16,
)


class TestEventLog:
    def test_emit_sequences_monotonically(self):
        log = EventLog()
        for i in range(5):
            event = log.emit("tick", i=i)
            assert event.seq == i
        assert [e.seq for e in log.events] == list(range(5))
        assert log.total_emitted == 5

    def test_ring_drops_oldest_and_counts(self):
        log = EventLog(capacity=3)
        for i in range(7):
            log.emit("tick", i=i)
        assert len(log) == 3
        assert log.dropped == 4
        assert log.total_emitted == 7
        assert [e.fields["i"] for e in log.events] == [4, 5, 6]
        # Sequence numbers keep counting past evictions.
        assert [e.seq for e in log.events] == [4, 5, 6]

    def test_tail_and_kinds(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert [e.kind for e in log.tail(2)] == ["b", "a"]
        assert log.tail(0) == ()
        assert log.tail(99) == log.events
        assert log.kinds() == {"a": 2, "b": 1}
        with pytest.raises(ValueError):
            log.tail(-1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_deterministic_view_strips_wall_clock_fields(self):
        log = EventLog(clock=lambda: 123.456)
        log.emit("span.end", name="x", duration_s=0.5, ok=True)
        ((seq, kind, fields),) = log.deterministic_view()
        assert (seq, kind) == (0, "span.end")
        assert fields == {"name": "x", "ok": True}  # duration_s stripped

    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("health.transition", disk=3, old="healthy", new="dead")
        log.emit("breaker.trip", disk=3, cooldown=4)
        path = tmp_path / "events.jsonl"
        text = log.to_jsonl(path)
        assert path.read_text(encoding="utf-8") == text
        back = EventLog.read_jsonl(path)
        assert [(e.seq, e.kind, e.fields) for e in back] == [
            (e.seq, e.kind, e.fields) for e in log.events
        ]

    def test_read_jsonl_tolerates_torn_final_line(self, tmp_path):
        log = EventLog()
        log.emit("a", i=1)
        log.emit("b", i=2)
        path = tmp_path / "torn.jsonl"
        path.write_text(
            log.to_jsonl() + '{"seq": 2, "ts": 0.0, "ki',  # crash mid-append
            encoding="utf-8",
        )
        back = EventLog.read_jsonl(path)
        assert [e.kind for e in back] == ["a", "b"]

    def test_read_jsonl_rejects_interior_corruption(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            'not json\n{"seq": 0, "ts": 0.0, "kind": "a", "fields": {}}\n',
            encoding="utf-8",
        )
        with pytest.raises(ValueError):
            EventLog.read_jsonl(path)


class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        counter = Counter("reads.served")
        counter.inc()
        counter.inc(2, path="mirror")
        counter.inc(3, path="mirror")
        assert counter.value() == 1
        assert counter.value(path="mirror") == 5
        assert counter.total == 6

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_histogram_buckets_sum_count_min_max(self):
        hist = Histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            hist.observe(v)
        ((key, series),) = hist.series.items()
        assert key == ()
        assert series.bucket_counts == [1, 2, 1]  # <=0.1, <=1.0, +Inf
        assert series.count == 4
        assert series.sum == pytest.approx(6.05)
        assert series.min == 0.05 and series.max == 5.0
        assert hist.mean() == pytest.approx(6.05 / 4)

    def test_registry_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")
        assert [c.name for c in registry.counters] == ["a"]
        assert [h.name for h in registry.histograms] == ["b"]


class TestTracer:
    def test_spans_nest_and_record_parentage(self):
        log = EventLog(clock=lambda: 0.0)
        tracer = Tracer(log, clock=lambda: 0.0)
        with tracer.span("outer") as outer:
            assert tracer.depth == 1
            with tracer.span("inner") as inner:
                assert tracer.depth == 2
                assert inner.parent_id == outer.span_id
        assert tracer.depth == 0
        assert outer.parent_id is None
        kinds = [e.kind for e in log.events]
        assert kinds == ["span.start", "span.start", "span.end", "span.end"]
        starts = {e.fields["name"]: e.fields for e in log.events[:2]}
        assert starts["inner"]["parent"] == starts["outer"]["span"]

    def test_span_duration_lands_in_the_histogram(self):
        ticks = iter([1.0, 3.5])
        registry = MetricsRegistry()
        tracer = Tracer(EventLog(), registry, clock=lambda: next(ticks, 9.0))
        with tracer.span("scale.plan") as span:
            pass
        assert span.duration == pytest.approx(2.5)
        hist = registry.histogram(SPAN_HISTOGRAM)
        assert hist.count(name="scale.plan") == 1
        assert hist.sum(name="scale.plan") == pytest.approx(2.5)

    def test_span_end_reports_failure_and_annotations(self):
        log = EventLog()
        tracer = Tracer(log)
        with pytest.raises(RuntimeError):
            with tracer.span("scale.apply") as span:
                span.annotate(moves=7)
                raise RuntimeError("boom")
        end = log.events[-1]
        assert end.kind == "span.end"
        assert end.fields["ok"] is False
        assert end.fields["moves"] == 7


class TestExporters:
    def test_sanitize_name(self):
        assert sanitize_name("reads.served") == "reads_served"
        assert sanitize_name("span.seconds") == "span_seconds"
        assert sanitize_name("9lives") == "_9lives"

    def test_prometheus_counter_lines(self):
        registry = MetricsRegistry()
        registry.counter("reads.served", help="served reads").inc(
            3, path="mirror"
        )
        text = to_prometheus(registry)
        assert "# HELP reads_served served reads" in text
        assert "# TYPE reads_served counter" in text
        assert 'reads_served{path="mirror"} 3' in text

    def test_prometheus_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)
        lines = to_prometheus(registry).splitlines()
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="1"} 2' in lines
        assert 'lat_bucket{le="+Inf"} 3' in lines
        assert "lat_count 3" in lines

    def test_json_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("b").observe(0.2, backend="scaddar")
        snapshot = to_json(registry)
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped["counters"][0]["name"] == "a"
        series = round_tripped["histograms"][0]["series"][0]
        assert series["labels"] == {"backend": "scaddar"}
        assert series["count"] == 1


class TestFacade:
    def test_obs_bundles_the_three_instruments(self):
        obs = Obs()
        with obs.span("scale.plan", kind="add"):
            obs.event("cell.begin", scheme="mirror")
            obs.inc("reads.served", 2)
        with obs.timer("journal.fsync.seconds"):
            pass
        kinds = [e.kind for e in obs.log.events]
        assert kinds == ["span.start", "cell.begin", "span.end"]
        assert obs.registry.counter("reads.served").total == 2
        assert obs.registry.histogram("journal.fsync.seconds").count() == 1
        assert "reads_served 2" in obs.prometheus()

    def test_null_obs_mirrors_the_obs_api(self):
        public = [
            name
            for name in dir(Obs)
            if not name.startswith("_") and callable(getattr(Obs, name))
        ]
        for name in public:
            assert callable(getattr(NullObs, name, None)), (
                f"NullObs is missing Obs.{name}"
            )
        assert Obs.enabled is True
        assert NullObs.enabled is False

    def test_null_obs_is_inert(self):
        NULL_OBS.event("anything", x=1)
        NULL_OBS.inc("reads.served", 5)
        NULL_OBS.set_gauge("budget", 3)
        NULL_OBS.observe("lat", 1.0)
        with NULL_OBS.span("scale.plan") as span:
            span.annotate(moves=1)
        with NULL_OBS.timer("lat"):
            pass
        assert NULL_OBS.prometheus() == ""
        assert NULL_OBS.json_snapshot() == {
            "counters": [], "gauges": [], "histograms": [],
        }
        assert NULL_OBS.write_events() == ""


class TestSeededTraceDeterminism:
    """Tentpole acceptance: same seed, same event sequence."""

    def observed_run(self, seed):
        obs = Obs()
        run_availability(obs=obs, seed=seed, **QUICK)
        return obs

    def test_same_seed_same_deterministic_view(self):
        first = self.observed_run(0xD1CE)
        second = self.observed_run(0xD1CE)
        assert first.log.total_emitted == second.log.total_emitted
        assert first.log.deterministic_view() == second.log.deterministic_view()
        # Counters are seed-determined too; histograms hold wall-clock
        # durations, so they (and the full Prometheus text) may differ.
        def counters(obs):
            return [
                (c.name, sorted(c.series.items()))
                for c in obs.registry.counters
            ]

        assert counters(first) == counters(second)

    def test_different_seed_different_trace(self):
        assert (
            self.observed_run(1).log.deterministic_view()
            != self.observed_run(2).log.deterministic_view()
        )

    def test_trace_carries_the_expected_kinds(self):
        obs = self.observed_run(0xD1CE)
        kinds = obs.log.kinds()
        assert kinds["cell.begin"] == 1
        assert kinds["span.start"] == kinds["span.end"]
        assert "health.transition" in kinds
        served = obs.registry.counter("reads.requested").total
        assert served > 0


class TestPropertyEventLog:
    @given(
        capacity=st.integers(1, 16),
        n=st.integers(0, 60),
    )
    @settings(max_examples=60, deadline=None)
    def test_ring_invariants(self, capacity, n):
        log = EventLog(capacity=capacity)
        for i in range(n):
            log.emit("tick", i=i)
        assert len(log) == min(n, capacity)
        assert log.dropped == max(0, n - capacity)
        assert log.total_emitted == n
        assert [e.seq for e in log.events] == list(
            range(max(0, n - capacity), n)
        )
