"""Tests for workload trace recording and replay."""

from __future__ import annotations

import pytest

from repro.server.cmserver import CMServer
from repro.server.simulation import ServerSimulation
from repro.storage.disk import DiskSpec
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.generator import uniform_catalog
from repro.workloads.traces import (
    TraceEvent,
    TracePlayer,
    generate_trace,
    load_trace,
    save_trace,
)


def make_catalog():
    return uniform_catalog(4, 60, master_seed=0x7AACE, bits=32)


class TestTraceEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceEvent(round_index=-1, object_id=0, start_block=0)
        with pytest.raises(ValueError):
            TraceEvent(round_index=0, object_id=0, start_block=-1)


class TestGenerateTrace:
    def test_records_all_arrivals(self):
        catalog = make_catalog()
        process = ArrivalProcess(catalog, rate=1.5, seed=5)
        events = generate_trace(process, rounds=100)
        assert 100 < len(events) < 200
        assert all(0 <= e.round_index < 100 for e in events)

    def test_matches_direct_process(self):
        catalog = make_catalog()
        recorded = generate_trace(ArrivalProcess(catalog, 1.0, seed=9), 50)
        fresh = ArrivalProcess(catalog, 1.0, seed=9)
        replayed = []
        for round_index in range(50):
            for arrival in fresh.next_round():
                replayed.append(
                    (round_index, arrival.object_id, arrival.start_block)
                )
        assert [
            (e.round_index, e.object_id, e.start_block) for e in recorded
        ] == replayed

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(ArrivalProcess(make_catalog(), 1.0), -1)


class TestTracePlayer:
    def test_replay_in_order(self):
        events = [
            TraceEvent(0, 1, 10),
            TraceEvent(0, 2, 20),
            TraceEvent(2, 3, 30),
        ]
        player = TracePlayer(events)
        first = player.next_round()
        assert [(a.object_id, a.start_block) for a in first] == [(1, 10), (2, 20)]
        assert player.next_round() == []
        third = player.next_round()
        assert [(a.object_id, a.start_block) for a in third] == [(3, 30)]
        assert player.next_round() == []

    def test_rewind(self):
        player = TracePlayer([TraceEvent(0, 1, 0)])
        assert len(player.next_round()) == 1
        player.rewind()
        assert player.current_round == 0
        assert len(player.next_round()) == 1

    def test_simulation_accepts_player(self):
        """Same trace -> identical simulations on identical servers."""
        catalog = make_catalog()
        trace = generate_trace(ArrivalProcess(catalog, 0.4, seed=3), 200)

        def run():
            cat = make_catalog()
            spec = DiskSpec(capacity_blocks=50_000, bandwidth_blocks_per_round=4)
            server = CMServer(cat, [spec] * 3, bits=32, default_spec=spec)
            sim = ServerSimulation(server, TracePlayer(trace))
            return sim.run(200)

        a, b = run(), run()
        assert a.arrivals == b.arrivals == len(trace)
        assert a.admitted == b.admitted
        assert a.hiccups == b.hiccups
        assert a.completed == b.completed


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        catalog = make_catalog()
        events = generate_trace(ArrivalProcess(catalog, 1.2, seed=4), 30)
        path = tmp_path / "trace.jsonl"
        save_trace(events, path)
        assert load_trace(path) == events

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"round": 0, "object_id": 1, "start_block": 2}\n\n'
            '{"round": 1, "object_id": 3, "start_block": 4}\n'
        )
        events = load_trace(path)
        assert len(events) == 2
        assert events[1].object_id == 3
