"""Deterministic fault injection and the disk-death escalation path."""

from __future__ import annotations

import pytest

from repro.core.operations import ScalingOp
from repro.experiments.chaos_scaling import run_chaos_scaling
from repro.server.cmserver import CMServer
from repro.server.faults import (
    OUTCOME_OK,
    DiskDeathError,
    FaultInjector,
    TransferRetryExhaustedError,
)
from repro.server.fsck import check_layout
from repro.server.journal import ScalingJournal
from repro.server.online import OnlineScaler
from repro.server.recovery import escalate_disk_death
from repro.server.scheduler import RoundScheduler
from repro.storage.disk import DiskSpec
from repro.storage.migration import MigrationSession
from repro.workloads.generator import uniform_catalog


def make_server(n0=4, blocks=120, journal=None):
    catalog = uniform_catalog(3, blocks, master_seed=0xFA17, bits=32)
    spec = DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=8)
    return CMServer(
        catalog, [spec] * n0, bits=32, default_spec=spec, journal=journal
    )


class _AlwaysFire:
    """RNG stub whose draws always land below any positive rate."""

    def random(self):
        return 0.0


class TestFaultInjector:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultInjector(transient_rate=1.0)
        with pytest.raises(ValueError):
            FaultInjector(slow_rate=-0.1)
        with pytest.raises(ValueError):
            FaultInjector(death_victim="bystander")
        with pytest.raises(ValueError):
            FaultInjector(death_at_transfer=0)

    def test_zero_rates_always_ok(self):
        injector = FaultInjector(seed=7)
        assert all(
            injector.attempt(0, 1) == OUTCOME_OK for _ in range(200)
        )
        assert injector.stats.attempts == 200
        assert injector.stats.transient_faults == 0

    def test_same_seed_same_schedule(self):
        a = FaultInjector(seed=42, transient_rate=0.3, slow_rate=0.2)
        b = FaultInjector(seed=42, transient_rate=0.3, slow_rate=0.2)
        outcomes_a = [a.attempt(0, 1) for _ in range(300)]
        outcomes_b = [b.attempt(0, 1) for _ in range(300)]
        assert outcomes_a == outcomes_b
        assert len(set(outcomes_a)) == 3  # all three outcomes occur

    def test_different_seed_different_schedule(self):
        a = FaultInjector(seed=1, transient_rate=0.4)
        b = FaultInjector(seed=2, transient_rate=0.4)
        assert [a.attempt(0, 1) for _ in range(100)] != [
            b.attempt(0, 1) for _ in range(100)
        ]

    def test_scheduled_death_kills_victim(self):
        injector = FaultInjector(death_at_transfer=3, death_victim="target")
        injector.attempt(10, 20)
        injector.attempt(10, 20)
        with pytest.raises(DiskDeathError) as exc:
            injector.attempt(10, 20)
        assert exc.value.physical_id == 20
        assert injector.dead == {20}
        assert injector.stats.deaths == [20]

    def test_dead_target_always_blocked(self):
        injector = FaultInjector()
        injector.dead.add(5)
        injector.enable_mirror_reads()
        with pytest.raises(DiskDeathError):
            injector.check_alive(0, 5)

    def test_dead_source_blocked_until_mirror_reads(self):
        injector = FaultInjector()
        injector.dead.add(5)
        with pytest.raises(DiskDeathError):
            injector.check_alive(5, 0)
        injector.enable_mirror_reads()
        injector.check_alive(5, 0)  # replica-served, no raise
        assert injector.stats.mirror_reads == 1


class TestFaultySession:
    def make_session(self, injector, **kwargs):
        server = make_server()
        pending = server.begin_scale(ScalingOp.add(1))
        return server, pending, MigrationSession(
            server.array, pending.plan, injector=injector, **kwargs
        )

    def test_transient_faults_delay_but_complete(self):
        injector = FaultInjector(seed=3, transient_rate=0.3)
        server, pending, session = self.make_session(injector)
        report = session.run(1_000, stall_rounds=64)
        server.finish_scale(pending)
        assert session.done
        assert injector.stats.transient_faults > 0
        # Backoff stretches the migration past the one-round faultless run.
        assert report.rounds_used > 1
        assert check_layout(server).clean

    def test_transient_consumes_both_budgets(self):
        injector = FaultInjector(transient_rate=0.5)
        injector._rng = _AlwaysFire()  # every attempt is transient
        server, pending, session = self.make_session(injector)
        move = session.pending_moves[0]
        executed = session.step({move.source_physical: 1, move.target_physical: 1})
        assert executed == []
        # Budget was spent on the fault, so nothing else could run either.
        assert session._spent[move.source_physical] == 1
        assert session._spent[move.target_physical] == 1

    def test_backoff_is_exponential(self):
        injector = FaultInjector(transient_rate=0.5)
        injector._rng = _AlwaysFire()
        server, pending, session = self.make_session(injector)
        block = session.pending_moves[0].block_id
        deferrals = []
        for round_no in range(40):
            before = session._deferred_until.get(block, 0)
            session.step({
                session.pending_moves[0].source_physical: 1,
                session.pending_moves[0].target_physical: 1,
            })
            after = session._deferred_until.get(block, 0)
            if after != before:
                deferrals.append(after - round_no - 1)
        # Gaps double: 1, 2, 4, ... (first entry is the first backoff).
        assert deferrals[:4] == [1, 2, 4, 8]

    def test_retry_exhaustion_raises(self):
        injector = FaultInjector(transient_rate=0.5)
        injector._rng = _AlwaysFire()
        server, pending, session = self.make_session(injector, max_retries=3)
        with pytest.raises(TransferRetryExhaustedError):
            for _ in range(200):
                session.step(1_000)

    def test_slow_transfers_cost_rounds_not_retries(self):
        injector = FaultInjector(seed=9, slow_rate=0.4)
        server, pending, session = self.make_session(injector)
        report = session.run(1_000, stall_rounds=8)
        server.finish_scale(pending)
        assert injector.stats.slow_transfers > 0
        assert session._retries == {}  # slow is not a failure
        assert report.moves_executed == len(pending.plan)

    def test_death_mid_round_keeps_unvisited_moves_pending(self):
        injector = FaultInjector(death_at_transfer=4, death_victim="source")
        server, pending, session = self.make_session(injector)
        total = len(pending.plan)
        with pytest.raises(DiskDeathError):
            while not session.done:
                session.step(1_000)
        assert len(session.executed) + session.remaining == total

    def test_stall_rounds_tolerates_backoff_idle_rounds(self):
        injector = FaultInjector(seed=11, transient_rate=0.6)
        server, pending, session = self.make_session(injector)
        # stall_rounds=1 would abort on the first all-deferred round;
        # a tolerant setting rides out the backoff and completes.
        report = session.run(1_000, stall_rounds=64)
        assert session.done
        assert 0 in report.moves_per_round  # an idle round really happened


class TestDeathEscalation:
    def run_death(self, death_at=6):
        journal = ScalingJournal()
        server = make_server(journal=journal)
        before = server.total_blocks
        injector = FaultInjector(
            seed=5, transient_rate=0.1, death_at_transfer=death_at,
            death_victim="source",
        )
        pending = server.begin_scale(ScalingOp.add(1))
        session = MigrationSession(
            server.array, pending.plan,
            journal=journal, op_seq=pending.op_seq, injector=injector,
        )
        try:
            while not session.done:
                session.step(1_000)
            raise AssertionError("death never fired")
        except DiskDeathError as death:
            report = escalate_disk_death(
                server, pending, session, death.physical_id, injector=injector
            )
        return server, journal, before, report

    def test_zero_loss_and_clean_layout(self):
        server, journal, before, report = self.run_death()
        assert server.total_blocks == before
        assert check_layout(server).clean
        assert report.dead_physical not in server.array.physical_ids

    def test_one_operation_log_two_committed_ops(self):
        server, journal, _, report = self.run_death()
        records = journal.replay()
        assert [r.committed for r in records] == [True, True]
        assert records[0].op == report.interrupted_op
        assert records[1].op.kind == "remove"
        assert server.mapper.num_operations == 2

    def test_mirror_reads_served_dead_sources(self):
        server, journal, _, report = self.run_death()
        # The dead disk held blocks, so draining it needed replica reads.
        assert report.mirror_reads > 0
        assert report.removal_moves > 0

    def test_escalation_refuses_already_doomed_disk(self):
        server = make_server(journal=ScalingJournal())
        pending = server.begin_scale(ScalingOp.remove([1]))
        session = MigrationSession(
            server.array, pending.plan,
            journal=server.journal, op_seq=pending.op_seq,
        )
        doomed = pending.removed_physicals[0]
        with pytest.raises(ValueError):
            escalate_disk_death(server, pending, session, doomed)


class TestOnlineChaos:
    def test_report_carries_fault_counters(self):
        server = make_server(journal=ScalingJournal())
        scheduler = RoundScheduler(server.array)
        injector = FaultInjector(seed=2, transient_rate=0.2, slow_rate=0.1)
        report = OnlineScaler(server, scheduler).scale_online(
            ScalingOp.add(1), injector=injector
        )
        assert report.transient_faults == injector.stats.transient_faults
        assert report.slow_transfers == injector.stats.slow_transfers
        assert report.transient_faults > 0
        assert check_layout(server).clean

    def test_death_error_carries_resume_context(self):
        server = make_server(journal=ScalingJournal())
        scheduler = RoundScheduler(server.array)
        injector = FaultInjector(death_at_transfer=3, death_victim="source")
        with pytest.raises(DiskDeathError) as exc:
            OnlineScaler(server, scheduler).scale_online(
                ScalingOp.add(1), injector=injector
            )
        death = exc.value
        assert death.pending is not None and death.session is not None
        # The carried context is exactly what escalation needs.
        escalate_disk_death(
            server, death.pending, death.session, death.physical_id,
            injector=injector,
        )
        assert check_layout(server).clean


class TestChaosExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        return run_chaos_scaling(num_objects=3, blocks_per_object=120)

    def test_all_scenarios_survive(self, results):
        assert [r.scenario for r in results] == [
            "scale-up", "scale-down", "disk-death"
        ]
        for r in results:
            assert r.survived, f"{r.scenario} lost {r.blocks_lost} blocks"

    def test_faults_actually_fired(self, results):
        for r in results:
            assert r.transient_faults > 0, r.scenario
        assert results[-1].mirror_reads > 0

    def test_deterministic_across_runs(self, results):
        again = run_chaos_scaling(num_objects=3, blocks_per_object=120)
        assert again == results
