"""Unit + property tests for the REMAP arithmetic (Section 4.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.remap import remap_add, remap_remove, survivor_ranks


class TestSurvivorRanks:
    def test_paper_example(self):
        # Removing disk 1 from {0,1,2,3}: disk 2 becomes the 1st disk.
        assert survivor_ranks({1}, 4) == [0, -1, 1, 2]

    def test_no_removal(self):
        assert survivor_ranks(set(), 3) == [0, 1, 2]

    def test_remove_first(self):
        assert survivor_ranks({0}, 3) == [-1, 0, 1]

    def test_remove_last(self):
        assert survivor_ranks({2}, 3) == [0, 1, -1]

    def test_group_removal(self):
        assert survivor_ranks({0, 2, 4}, 6) == [-1, 0, -1, 1, -1, 2]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            survivor_ranks({4}, 4)

    @given(
        n=st.integers(2, 30),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_ranks_are_compact_permutation(self, n, data):
        removed = data.draw(
            st.sets(st.integers(0, n - 1), min_size=0, max_size=n - 1)
        )
        ranks = survivor_ranks(removed, n)
        survivors = [r for r in ranks if r >= 0]
        assert survivors == list(range(n - len(removed)))
        assert all(ranks[d] == -1 for d in removed)


class TestRemapAdd:
    def test_rejects_non_growth(self):
        with pytest.raises(ValueError):
            remap_add(10, 5, 5)
        with pytest.raises(ValueError):
            remap_add(10, 5, 4)

    def test_rejects_negative_x(self):
        with pytest.raises(ValueError):
            remap_add(-1, 4, 5)

    def test_stay_case_keeps_disk(self):
        # x=10, n_prev=4 -> q=2, r=2; q mod 5 = 2 < 4 -> stays on disk 2.
        result = remap_add(10, 4, 5)
        assert not result.moved
        assert result.disk == 2
        assert result.x_new % 5 == 2

    def test_move_case_targets_added_disk(self):
        # x = q * 4 + r with q mod 5 == 4 -> moves to disk 4.
        x = 4 * 4 + 1  # q=4, r=1; 4 mod 5 == 4 >= n_prev
        result = remap_add(x, 4, 5)
        assert result.moved
        assert result.disk == 4
        assert result.x_new % 5 == 4

    @given(x=st.integers(0, 2**32 - 1), n_prev=st.integers(1, 40), grow=st.integers(1, 10))
    @settings(max_examples=200, deadline=None)
    def test_disk_consistency_property(self, x, n_prev, grow):
        n_new = n_prev + grow
        result = remap_add(x, n_prev, n_new)
        # The reported disk always equals X_j mod N_j.
        assert result.disk == result.x_new % n_new
        # RO1: a block moves iff its disk changed, and the disk changes
        # exactly onto an added disk.
        if result.moved:
            assert n_prev <= result.disk < n_new
        else:
            assert result.disk == x % n_prev

    @given(x=st.integers(0, 2**32 - 1), n_prev=st.integers(1, 40), grow=st.integers(1, 10))
    @settings(max_examples=200, deadline=None)
    def test_fresh_randomness_is_recoverable(self, x, n_prev, grow):
        # Eq. 4: X_j div N_j must equal q_{j-1} div N_j so the next
        # operation can keep drawing from the shrunken reserve.
        n_new = n_prev + grow
        q_prev = x // n_prev
        result = remap_add(x, n_prev, n_new)
        assert result.x_new // n_new == q_prev // n_new

    def test_move_probability_matches_z(self):
        n_prev, n_new = 4, 6
        total = 120_000
        moved = sum(
            1 for x in range(total) if remap_add(x, n_prev, n_new).moved
        )
        expected = total * (n_new - n_prev) / n_new
        assert abs(moved - expected) / expected < 0.01

    def test_moved_destinations_cover_all_added_disks(self):
        n_prev, n_new = 4, 8
        destinations = {
            remap_add(x, n_prev, n_new).disk
            for x in range(50_000)
            if remap_add(x, n_prev, n_new).moved
        }
        assert destinations == set(range(n_prev, n_new))


class TestRemapRemove:
    def test_paper_example_moved_block(self):
        # Section 4.2.1: X=28 on 6 disks, disk 4 removed -> X_j = 4,
        # landing on the 4th surviving disk.
        result = remap_remove(28, 6, {4})
        assert result.moved
        assert result.x_new == 4
        assert result.disk == 4

    def test_paper_example_staying_block(self):
        # X=41 on disk 5 stays; X_j = 34, disk index compacts to 4.
        result = remap_remove(41, 6, {4})
        assert not result.moved
        assert result.x_new == 34
        assert result.disk == 4

    def test_rejects_negative_x(self):
        with pytest.raises(ValueError):
            remap_remove(-5, 4, {0})

    def test_rejects_full_removal(self):
        with pytest.raises(ValueError):
            remap_remove(5, 2, {0, 1})

    def test_rejects_bad_index(self):
        with pytest.raises(ValueError):
            remap_remove(5, 4, {4})

    @given(
        x=st.integers(0, 2**32 - 1),
        n_prev=st.integers(2, 40),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_disk_consistency_property(self, x, n_prev, data):
        removed = data.draw(
            st.sets(st.integers(0, n_prev - 1), min_size=1, max_size=n_prev - 1)
        )
        n_new = n_prev - len(removed)
        ranks = survivor_ranks(removed, n_prev)
        result = remap_remove(x, n_prev, removed)
        assert result.disk == result.x_new % n_new
        assert 0 <= result.disk < n_new
        if result.moved:
            # RO1: only blocks on removed disks move.
            assert x % n_prev in removed
        else:
            # Stayers keep their physical disk (compacted index).
            assert result.disk == ranks[x % n_prev]

    def test_moved_destinations_roughly_uniform(self):
        n_prev = 6
        removed = {2}
        counts = [0] * 5
        for x in range(60_000):
            result = remap_remove(x, n_prev, removed)
            if result.moved:
                counts[result.disk] += 1
        mean = sum(counts) / len(counts)
        assert all(abs(c - mean) / mean < 0.05 for c in counts)

    def test_group_removal_moves_all_their_blocks(self):
        n_prev = 8
        removed = {1, 4, 6}
        for x in range(5_000):
            result = remap_remove(x, n_prev, removed)
            assert result.moved == (x % n_prev in removed)


class TestAddRemoveInverse:
    @given(x=st.integers(0, 2**40), n=st.integers(2, 20))
    @settings(max_examples=100, deadline=None)
    def test_add_then_remove_last_keeps_stayers_put(self, x, n):
        """Adding one disk and removing it again must return every block
        that never moved to its original disk."""
        added = remap_add(x, n, n + 1)
        back = remap_remove(added.x_new, n + 1, {n})
        if not added.moved:
            assert back.disk == x % n
