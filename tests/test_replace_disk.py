"""Tests for the disk-replacement convenience operation."""

from __future__ import annotations

import pytest

from repro.core.errors import RandomnessExhaustedError
from repro.server.cmserver import CMServer
from repro.server.fsck import check_layout
from repro.storage.disk import DiskSpec
from repro.workloads.generator import uniform_catalog


def make_server(n0=4, bits=32):
    catalog = uniform_catalog(3, 150, master_seed=0x4E9, bits=bits)
    spec = DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=8)
    return CMServer(catalog, [spec] * n0, bits=bits, default_spec=spec)


class TestReplaceDisk:
    def test_same_disk_count_after(self):
        server = make_server()
        old_physical = server.array.physical_at(1)
        add_report, remove_report = server.replace_disk(1)
        assert server.num_disks == 4
        assert old_physical not in server.array.physical_ids
        assert add_report.n_after == 5
        assert remove_report.n_after == 4
        assert check_layout(server).clean

    def test_new_spec_applied(self):
        server = make_server()
        fast = DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=32,
                        model="gen3")
        server.replace_disk(0, spec=fast)
        # The replacement went in at the top logical index, then the old
        # disk's removal compacted indices; the new disk is still there.
        models = [
            server.array.disk(pid).model for pid in server.array.physical_ids
        ]
        assert "gen3" in models

    def test_costs_two_budget_operations(self):
        server = make_server()
        before = server.mapper.remaining_operations(0.05)
        server.replace_disk(2)
        assert server.mapper.num_operations == 2
        assert server.mapper.remaining_operations(0.05) <= before - 1

    def test_bounds_checked_before_mutation(self):
        server = make_server()
        with pytest.raises(IndexError):
            server.replace_disk(9)
        assert server.mapper.num_operations == 0
        assert server.num_disks == 4

    def test_eps_guard_propagates(self):
        server = make_server(bits=16)
        with pytest.raises(RandomnessExhaustedError):
            for __ in range(10):
                server.replace_disk(0, eps=0.05)

    def test_movement_is_bounded(self):
        """Replacement moves ~1/5 + ~1/5 of blocks, never everything."""
        server = make_server()
        moved_before = server.array.blocks_moved
        server.replace_disk(1)
        moved = server.array.blocks_moved - moved_before
        assert moved < 0.6 * server.total_blocks
