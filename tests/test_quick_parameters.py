"""Every experiment's quick parameters actually run and report.

The CLI's ``--quick`` path (and the 5-second smoke run the README
advertises) is only as good as the parameter sets in ``QUICK_KWARGS``;
this test executes every one of them end-to-end.
"""

from __future__ import annotations

import pytest

from repro.cli import QUICK_KWARGS
from repro.experiments import EXPERIMENTS


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_quick_run_and_report(name):
    module = EXPERIMENTS[name]
    result = module.run(**QUICK_KWARGS[name])
    assert result is not None
    text = module.report(result)
    assert isinstance(text, str)
    assert len(text.strip()) > 50, f"{name} quick report suspiciously empty"
