"""Unit tests for the bandwidth-throttled migration engine."""

from __future__ import annotations

import pytest

from repro.storage.array import DiskArray
from repro.storage.block import Block, BlockId
from repro.storage.disk import DiskSpec
from repro.storage.migration import (
    CapacityDeadlockError,
    InfeasibleBudgetError,
    MigrationPlan,
    MigrationSession,
    PhysicalMove,
    order_capacity_safe,
)


def setup_array(n=3, blocks_on_zero=6):
    array = DiskArray([DiskSpec(capacity_blocks=100)] * n)
    for i in range(blocks_on_zero):
        array.place(Block(object_id=0, index=i, x0=i), 0)
    return array


def plan_spread(array, count):
    """Plan: move `count` blocks from logical 0 to logical 1."""
    src = array.physical_at(0)
    dst = array.physical_at(1)
    return MigrationPlan.from_moves(
        [PhysicalMove(BlockId(0, i), src, dst) for i in range(count)]
    )


class TestPlan:
    def test_rejects_self_move(self):
        with pytest.raises(ValueError):
            PhysicalMove(BlockId(0, 0), 1, 1)

    def test_rejects_duplicate_blocks(self):
        with pytest.raises(ValueError):
            MigrationPlan.from_moves(
                [
                    PhysicalMove(BlockId(0, 0), 1, 2),
                    PhysicalMove(BlockId(0, 0), 1, 3),
                ]
            )

    def test_len(self):
        assert len(MigrationPlan.from_moves([])) == 0

    def test_traffic_by_disk(self):
        plan = MigrationPlan.from_moves(
            [
                PhysicalMove(BlockId(0, 0), 1, 2),
                PhysicalMove(BlockId(0, 1), 1, 3),
            ]
        )
        assert plan.traffic_by_disk() == {1: 2, 2: 1, 3: 1}


class TestSession:
    def test_unthrottled_completes_in_one_round(self):
        array = setup_array()
        session = MigrationSession(array, plan_spread(array, 6))
        executed = session.step(100)
        assert len(executed) == 6
        assert session.done
        assert array.load_vector() == [0, 6, 0]

    def test_throttled_spreads_over_rounds(self):
        array = setup_array()
        session = MigrationSession(array, plan_spread(array, 6))
        report = session.run(budget=2)
        assert report.rounds_used == 3
        assert report.moves_executed == 6
        assert report.moves_per_round == [2, 2, 2]

    def test_budget_charged_on_both_endpoints(self):
        # Moves 0->1 and 1->... share disk 1's budget.
        array = setup_array(n=3)
        array.place(Block(object_id=1, index=0, x0=0), 1)
        src0 = array.physical_at(0)
        dst1 = array.physical_at(1)
        dst2 = array.physical_at(2)
        plan = MigrationPlan.from_moves(
            [
                PhysicalMove(BlockId(0, 0), src0, dst1),
                PhysicalMove(BlockId(1, 0), dst1, dst2),
            ]
        )
        session = MigrationSession(array, plan)
        executed = session.step(1)
        # Disk 1 participates in both moves; budget 1 allows only one.
        assert len(executed) == 1
        assert session.remaining == 1

    def test_mapping_budget(self):
        array = setup_array()
        src = array.physical_at(0)
        dst = array.physical_at(1)
        session = MigrationSession(array, plan_spread(array, 4))
        executed = session.step({src: 2, dst: 10})
        assert len(executed) == 2

    def test_missing_budget_key_means_zero(self):
        array = setup_array()
        src = array.physical_at(0)
        session = MigrationSession(array, plan_spread(array, 2))
        assert session.step({src: 5}) == []

    def test_run_raises_on_stall(self):
        array = setup_array()
        session = MigrationSession(array, plan_spread(array, 2))
        with pytest.raises(InfeasibleBudgetError):
            session.run(budget=0)

    def test_run_respects_max_rounds(self):
        array = setup_array(blocks_on_zero=10)
        session = MigrationSession(array, plan_spread(array, 10))
        with pytest.raises(InfeasibleBudgetError):
            session.run(budget=1, max_rounds=3)

    def test_empty_plan_is_done(self):
        array = setup_array()
        session = MigrationSession(array, MigrationPlan.from_moves([]))
        assert session.done
        report = session.run(budget=1)
        assert report.rounds_used == 0

    def test_stall_rounds_must_be_positive(self):
        array = setup_array()
        session = MigrationSession(array, plan_spread(array, 2))
        with pytest.raises(ValueError):
            session.run(budget=1, stall_rounds=0)

    def test_stall_rounds_extends_patience(self):
        array = setup_array()
        session = MigrationSession(array, plan_spread(array, 2))
        with pytest.raises(InfeasibleBudgetError, match="3 consecutive"):
            session.run(budget=0, stall_rounds=3)
        assert session._round == 3  # waited the full allowance

    def test_max_moves_caps_a_round(self):
        array = setup_array()
        session = MigrationSession(array, plan_spread(array, 6))
        assert len(session.step(100, max_moves=2)) == 2
        assert session.remaining == 4


def tight_array():
    """Three nearly-full disks: 0 and 1 at capacity, 2 with one free slot."""
    array = DiskArray([DiskSpec(capacity_blocks=2)] * 3)
    array.place(Block(object_id=0, index=0, x0=0), 0)
    array.place(Block(object_id=0, index=1, x0=1), 0)
    array.place(Block(object_id=1, index=0, x0=2), 1)
    array.place(Block(object_id=1, index=1, x0=3), 1)
    array.place(Block(object_id=2, index=0, x0=4), 2)
    return array


class TestOrderCapacitySafe:
    def wedging_plan(self, array):
        """Naive order wedges: the 0->1 move needs 1 drained first."""
        p0, p1, p2 = (array.physical_at(i) for i in range(3))
        return MigrationPlan.from_moves(
            [
                PhysicalMove(BlockId(0, 0), p0, p1),  # target full
                PhysicalMove(BlockId(1, 0), p1, p2),  # frees a slot on 1
            ]
        )

    def test_naive_order_wedges_in_one_round(self):
        array = tight_array()
        session = MigrationSession(array, self.wedging_plan(array))
        # Unlimited budget, yet only the second move lands this round.
        assert len(session.step(100)) == 1
        assert session.remaining == 1

    def test_reordered_plan_completes_in_one_round(self):
        array = tight_array()
        plan = self.wedging_plan(array)
        safe = order_capacity_safe(array, plan)
        assert [m.block_id for m in safe.moves] == [BlockId(1, 0), BlockId(0, 0)]
        session = MigrationSession(array, safe)
        assert len(session.step(100)) == 2
        assert session.done

    def test_reorder_preserves_move_set(self):
        array = tight_array()
        plan = self.wedging_plan(array)
        safe = order_capacity_safe(array, plan)
        key = lambda m: (m.block_id.object_id, m.block_id.index)
        assert sorted(safe.moves, key=key) == sorted(plan.moves, key=key)

    def test_every_prefix_respects_capacity(self):
        array = tight_array()
        safe = order_capacity_safe(array, self.wedging_plan(array))
        free = {
            pid: array.disk(pid).capacity_blocks
            - len(array.blocks_on_physical(pid))
            for pid in array.physical_ids
        }
        for move in safe.moves:
            assert free[move.target_physical] > 0, "prefix overflows a disk"
            free[move.target_physical] -= 1
            free[move.source_physical] += 1

    def test_already_safe_plan_unchanged(self):
        array = tight_array()
        p1, p2 = array.physical_at(1), array.physical_at(2)
        plan = MigrationPlan.from_moves([PhysicalMove(BlockId(1, 0), p1, p2)])
        assert order_capacity_safe(array, plan).moves == plan.moves

    def test_zero_free_slot_cycle_deadlocks(self):
        # Two full one-block disks swapping their blocks: physically
        # unschedulable without scratch space.
        array = DiskArray([DiskSpec(capacity_blocks=1)] * 2)
        array.place(Block(object_id=0, index=0, x0=0), 0)
        array.place(Block(object_id=1, index=0, x0=1), 1)
        p0, p1 = array.physical_at(0), array.physical_at(1)
        plan = MigrationPlan.from_moves(
            [
                PhysicalMove(BlockId(0, 0), p0, p1),
                PhysicalMove(BlockId(1, 0), p1, p0),
            ]
        )
        with pytest.raises(CapacityDeadlockError, match="scratch"):
            order_capacity_safe(array, plan)
