"""Unit tests for the bandwidth-throttled migration engine."""

from __future__ import annotations

import pytest

from repro.storage.array import DiskArray
from repro.storage.block import Block, BlockId
from repro.storage.disk import DiskSpec
from repro.storage.migration import (
    InfeasibleBudgetError,
    MigrationPlan,
    MigrationSession,
    PhysicalMove,
)


def setup_array(n=3, blocks_on_zero=6):
    array = DiskArray([DiskSpec(capacity_blocks=100)] * n)
    for i in range(blocks_on_zero):
        array.place(Block(object_id=0, index=i, x0=i), 0)
    return array


def plan_spread(array, count):
    """Plan: move `count` blocks from logical 0 to logical 1."""
    src = array.physical_at(0)
    dst = array.physical_at(1)
    return MigrationPlan.from_moves(
        [PhysicalMove(BlockId(0, i), src, dst) for i in range(count)]
    )


class TestPlan:
    def test_rejects_self_move(self):
        with pytest.raises(ValueError):
            PhysicalMove(BlockId(0, 0), 1, 1)

    def test_rejects_duplicate_blocks(self):
        with pytest.raises(ValueError):
            MigrationPlan.from_moves(
                [
                    PhysicalMove(BlockId(0, 0), 1, 2),
                    PhysicalMove(BlockId(0, 0), 1, 3),
                ]
            )

    def test_len(self):
        assert len(MigrationPlan.from_moves([])) == 0

    def test_traffic_by_disk(self):
        plan = MigrationPlan.from_moves(
            [
                PhysicalMove(BlockId(0, 0), 1, 2),
                PhysicalMove(BlockId(0, 1), 1, 3),
            ]
        )
        assert plan.traffic_by_disk() == {1: 2, 2: 1, 3: 1}


class TestSession:
    def test_unthrottled_completes_in_one_round(self):
        array = setup_array()
        session = MigrationSession(array, plan_spread(array, 6))
        executed = session.step(100)
        assert len(executed) == 6
        assert session.done
        assert array.load_vector() == [0, 6, 0]

    def test_throttled_spreads_over_rounds(self):
        array = setup_array()
        session = MigrationSession(array, plan_spread(array, 6))
        report = session.run(budget=2)
        assert report.rounds_used == 3
        assert report.moves_executed == 6
        assert report.moves_per_round == [2, 2, 2]

    def test_budget_charged_on_both_endpoints(self):
        # Moves 0->1 and 1->... share disk 1's budget.
        array = setup_array(n=3)
        array.place(Block(object_id=1, index=0, x0=0), 1)
        src0 = array.physical_at(0)
        dst1 = array.physical_at(1)
        dst2 = array.physical_at(2)
        plan = MigrationPlan.from_moves(
            [
                PhysicalMove(BlockId(0, 0), src0, dst1),
                PhysicalMove(BlockId(1, 0), dst1, dst2),
            ]
        )
        session = MigrationSession(array, plan)
        executed = session.step(1)
        # Disk 1 participates in both moves; budget 1 allows only one.
        assert len(executed) == 1
        assert session.remaining == 1

    def test_mapping_budget(self):
        array = setup_array()
        src = array.physical_at(0)
        dst = array.physical_at(1)
        session = MigrationSession(array, plan_spread(array, 4))
        executed = session.step({src: 2, dst: 10})
        assert len(executed) == 2

    def test_missing_budget_key_means_zero(self):
        array = setup_array()
        src = array.physical_at(0)
        session = MigrationSession(array, plan_spread(array, 2))
        assert session.step({src: 5}) == []

    def test_run_raises_on_stall(self):
        array = setup_array()
        session = MigrationSession(array, plan_spread(array, 2))
        with pytest.raises(InfeasibleBudgetError):
            session.run(budget=0)

    def test_run_respects_max_rounds(self):
        array = setup_array(blocks_on_zero=10)
        session = MigrationSession(array, plan_spread(array, 10))
        with pytest.raises(InfeasibleBudgetError):
            session.run(budget=1, max_rounds=3)

    def test_empty_plan_is_done(self):
        array = setup_array()
        session = MigrationSession(array, MigrationPlan.from_moves([]))
        assert session.done
        report = session.run(budget=1)
        assert report.rounds_used == 0
