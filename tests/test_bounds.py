"""Unit + property tests for the Section 4.3 analysis."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    exact_max_operations,
    lemma_43_allows,
    range_lower_bound,
    rule_of_thumb_max_operations,
    unfairness_coefficient,
    unfairness_upper_bound,
)


class TestUnfairnessCoefficient:
    def test_definition(self):
        # R = 10 values over N = 3 disks: loads 4,3,3 -> f = 1/3.
        assert unfairness_coefficient(10, 3) == pytest.approx(1 / 3)

    def test_divisible_range(self):
        assert unfairness_coefficient(12, 3) == pytest.approx(1 / 4)

    def test_range_smaller_than_disks(self):
        assert unfairness_coefficient(2, 3) == math.inf

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            unfairness_coefficient(-1, 3)
        with pytest.raises(ValueError):
            unfairness_coefficient(10, 0)

    @given(r=st.integers(1, 10**9), n=st.integers(1, 1000))
    @settings(max_examples=100, deadline=None)
    def test_matches_exact_load_ratio(self, r, n):
        """f is exactly max_load/min_load - 1 for uniform x in [0, R)."""
        if r < n:
            assert unfairness_coefficient(r, n) == math.inf
            return
        max_load = -(-r // n)  # ceil
        min_load = r // n
        expected = max_load / min_load - 1
        # f = 1/(r div n) upper-bounds the exact ratio and equals it
        # whenever r mod n != 0.
        f = unfairness_coefficient(r, n)
        assert f >= expected - 1e-12
        if r % n:
            assert f == pytest.approx(expected)


class TestRangeLowerBound:
    def test_single_epoch(self):
        assert range_lower_bound(100, [4]) == 25

    def test_lemma_42_product(self):
        assert range_lower_bound(2**32, [4, 5, 6]) == 2**32 // 120

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            range_lower_bound(100, [])

    def test_zero_disk_rejected(self):
        with pytest.raises(ValueError):
            range_lower_bound(100, [4, 0])

    @given(
        r0=st.integers(1, 2**48),
        counts=st.lists(st.integers(1, 50), min_size=1, max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_lemma_42_simulation_property(self, r0, counts):
        """Simulating the worst-case range shrink (divide by N each op)
        never goes below the closed-form bound."""
        simulated = r0
        for n in counts:
            simulated //= n
        assert simulated >= range_lower_bound(r0, counts)
        # In fact iterated integer division equals division by the product.
        product = math.prod(counts)
        assert simulated == r0 // product

    def test_upper_bound_inf_when_exhausted(self):
        assert unfairness_upper_bound(100, [50, 50]) == math.inf

    def test_upper_bound_finite(self):
        assert unfairness_upper_bound(2**32, [4, 5]) == pytest.approx(
            1 / (2**32 // 20)
        )


class TestLemma43:
    def test_exact_threshold(self):
        # Pi <= R0 * eps / (1 + eps), exact in rationals.
        r0 = 1000
        eps = Fraction(1, 19)  # eps/(1+eps) = 1/20 -> limit 50
        assert lemma_43_allows(r0, 50, eps)
        assert not lemma_43_allows(r0, 51, eps)

    def test_accepts_floats(self):
        assert lemma_43_allows(2**32, 4 * 5 * 6, 0.05)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            lemma_43_allows(100, 0, 0.05)
        with pytest.raises(ValueError):
            lemma_43_allows(100, 10, 0)

    @given(
        r0=st.integers(10, 2**40),
        pi=st.integers(1, 2**40),
        eps_num=st.integers(1, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_lemma_43_implies_bounded_unfairness(self, r0, pi, eps_num):
        """Whenever the precondition holds, the paper's conclusion
        f(R_k, N_k) < eps must hold for the worst-case shrunken range."""
        eps = Fraction(eps_num, 100)
        if not lemma_43_allows(r0, pi, eps):
            return
        worst_range_div_n = r0 // pi  # Lemma 4.2 with Pi = N0...Nk
        assert worst_range_div_n > 0
        f = 1 / worst_range_div_n
        assert f < eps or math.isclose(f, float(eps), rel_tol=1e-12)


class TestRuleOfThumb:
    def test_paper_example_64bit(self):
        assert rule_of_thumb_max_operations(64, 0.01, 16) == 13

    def test_paper_example_32bit(self):
        assert rule_of_thumb_max_operations(32, 0.05, 8) == 8

    def test_floor_behaviour(self):
        # (16 - log2(20)) / 2 = 5.83 -> k = 4
        assert rule_of_thumb_max_operations(16, 0.05, 4) == 4

    def test_negative_budget_clamps(self):
        assert rule_of_thumb_max_operations(4, 0.01, 16) == -1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            rule_of_thumb_max_operations(0, 0.05, 8)
        with pytest.raises(ValueError):
            rule_of_thumb_max_operations(32, 0, 8)
        with pytest.raises(ValueError):
            rule_of_thumb_max_operations(32, 0.05, 1)


class TestExactMaxOperations:
    def test_section5_configuration(self):
        assert exact_max_operations(2**32, 4, 0.05) == 8

    def test_zero_when_initial_state_tight(self):
        # Pi_0 = n0 already close to the limit.
        assert exact_max_operations(100, 4, 0.05) == 0

    def test_negative_when_initial_state_exceeds(self):
        assert exact_max_operations(10, 4, 0.05) == -1

    def test_group_size(self):
        single = exact_max_operations(2**32, 4, 0.05, group_size=1)
        grouped = exact_max_operations(2**32, 4, 0.05, group_size=4)
        assert grouped <= single

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            exact_max_operations(2**32, 0, 0.05)
        with pytest.raises(ValueError):
            exact_max_operations(2**32, 4, 0.05, group_size=0)

    @given(
        bits=st.integers(8, 48),
        n0=st.integers(2, 16),
        eps_pct=st.integers(1, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_budget_is_maximal_property(self, bits, n0, eps_pct):
        """k ops satisfy Lemma 4.3, k+1 ops would not."""
        eps = Fraction(eps_pct, 100)
        r0 = 1 << bits
        k = exact_max_operations(r0, n0, eps)
        if k < 0:
            assert not lemma_43_allows(r0, n0, eps)
            return
        pi = n0
        n = n0
        for __ in range(k):
            n += 1
            pi *= n
        assert lemma_43_allows(r0, pi, eps)
        assert not lemma_43_allows(r0, pi * (n + 1), eps)
