"""Tests for the Wilson confidence intervals — and their use against
the movement experiments' binomial claims."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.confidence import (
    Interval,
    proportion_consistent,
    wilson_interval,
)
from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.workloads.generator import random_x0s


class TestWilson:
    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(-1, 4)
        with pytest.raises(ValueError):
            wilson_interval(1, 4, z=0)
        with pytest.raises(ValueError):
            proportion_consistent(1, 4, expected=1.5)

    def test_symmetric_at_half(self):
        interval = wilson_interval(500, 1000)
        assert interval.contains(0.5)
        assert abs((0.5 - interval.low) - (interval.high - 0.5)) < 1e-9

    def test_extremes_stay_in_unit_range(self):
        assert wilson_interval(0, 50).low == 0.0
        assert wilson_interval(50, 50).high == 1.0
        # Unlike Wald, Wilson gives a non-degenerate interval at 0/n.
        assert wilson_interval(0, 50).high > 0.0

    def test_narrows_with_samples(self):
        wide = wilson_interval(50, 100)
        narrow = wilson_interval(5_000, 10_000)
        assert narrow.width < wide.width

    def test_interval_contains(self):
        interval = Interval(low=0.2, high=0.4)
        assert interval.contains(0.2) and interval.contains(0.4)
        assert not interval.contains(0.41)

    @given(
        trials=st.integers(1, 10_000),
        data=st.data(),
        z=st.floats(0.5, 5.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_interval_well_formed_property(self, trials, data, z):
        successes = data.draw(st.integers(0, trials))
        interval = wilson_interval(successes, trials, z)
        assert 0.0 <= interval.low <= interval.high <= 1.0
        assert interval.contains(successes / trials)


class TestAgainstMovementClaims:
    def test_addition_rate_consistent_with_z_j(self):
        """The RO1 claim stated properly: observed movers are a binomial
        sample at rate z_j = 1/5."""
        mapper = ScaddarMapper(n0=4, bits=32)
        x0s = random_x0s(30_000, bits=32, seed=5)
        before = {x: mapper.disk_of(x) for x in x0s}
        mapper.apply(ScalingOp.add(1))
        moved = sum(1 for x in x0s if mapper.disk_of(x) != before[x])
        assert proportion_consistent(moved, len(x0s), expected=1 / 5)

    def test_removal_rate_consistent(self):
        mapper = ScaddarMapper(n0=5, bits=32)
        x0s = random_x0s(30_000, bits=32, seed=6)
        before = {x: mapper.disk_of(x) for x in x0s}
        mapper.apply(ScalingOp.remove([2]))
        survivor_rank = {0: 0, 1: 1, 3: 2, 4: 3}
        moved = sum(
            1
            for x in x0s
            if before[x] == 2
            or mapper.disk_of(x) != survivor_rank[before[x]]
        )
        assert proportion_consistent(moved, len(x0s), expected=1 / 5)

    def test_group_addition_rate(self):
        mapper = ScaddarMapper(n0=6, bits=32)
        x0s = random_x0s(30_000, bits=32, seed=7)
        before = {x: mapper.disk_of(x) for x in x0s}
        mapper.apply(ScalingOp.add(3))
        moved = sum(1 for x in x0s if mapper.disk_of(x) != before[x])
        assert proportion_consistent(moved, len(x0s), expected=3 / 9)
