"""Tests for the group-size ablation experiment."""

from __future__ import annotations

import math

import pytest

from repro.experiments import group_size


class TestGroupSize:
    @pytest.fixture(scope="class")
    def result(self):
        return group_size.run_group_size(num_blocks=6_000)

    def test_divisibility_validation(self):
        with pytest.raises(ValueError):
            group_size.run_group_size(total_new=12, group_sizes=(5,))

    def test_all_rows_reach_same_size(self, result):
        for row in result.rows:
            assert row.group_size * row.operations == result.total_new

    def test_pi_decreases_with_group_size(self, result):
        pis = [r.pi for r in result.rows]
        assert pis == sorted(pis, reverse=True)

    def test_single_group_is_one_shot_optimal(self, result):
        big = result.rows[-1]
        assert big.group_size == result.total_new
        assert big.cumulative_moved_fraction == pytest.approx(
            big.one_shot_fraction, abs=0.02
        )

    def test_theory_matches_healthy_rows(self, result):
        for row in result.rows:
            if not math.isinf(row.unfairness_bound):
                assert row.cumulative_moved_fraction == pytest.approx(
                    row.theoretical_moved_fraction, abs=0.03
                )

    def test_exhausted_range_starves_movement(self, result):
        ones = result.rows[0]
        assert ones.group_size == 1
        assert math.isinf(ones.unfairness_bound)
        assert (
            ones.cumulative_moved_fraction
            < ones.theoretical_moved_fraction - 0.05
        )

    def test_theoretical_fraction_decreases_with_group_size(self, result):
        theory = [r.theoretical_moved_fraction for r in result.rows]
        assert theory == sorted(theory, reverse=True)

    def test_report_renders(self, result):
        assert "Definition 3.3" in group_size.report(result)
