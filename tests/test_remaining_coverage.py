"""Targeted tests for the remaining under-exercised paths."""

from __future__ import annotations

import pytest

from repro.core.operations import ScalingOp
from repro.server.cmserver import CMServer, ScaleReport
from repro.server.online import OnlineScaler, StalledMigrationError
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream
from repro.storage.block import BlockId
from repro.storage.disk import DiskSpec
from repro.storage.migration import MigrationSession
from repro.workloads.generator import uniform_catalog


def make_server(num_objects=2, blocks=100, n0=4, bandwidth=8):
    catalog = uniform_catalog(num_objects, blocks, master_seed=0xC0B, bits=32)
    spec = DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=bandwidth)
    return CMServer(catalog, [spec] * n0, bits=32, default_spec=spec)


class TestScaleReportEdges:
    def test_moved_fraction_empty_server(self):
        report = ScaleReport(
            op=ScalingOp.add(1),
            n_before=4,
            n_after=5,
            blocks_moved=0,
            total_blocks=0,
            optimal_fraction=0,
        )
        assert report.moved_fraction == 0.0

    def test_scale_on_empty_server(self):
        from repro.server.objects import ObjectCatalog

        server = CMServer(ObjectCatalog(bits=32), [DiskSpec()] * 3, bits=32)
        report = server.scale(ScalingOp.add(1))
        assert report.blocks_moved == 0
        assert server.num_disks == 4


class TestAddObjectDuringPendingScale:
    def test_new_object_lands_in_new_epoch(self):
        """Objects added mid-scale are placed by the already-updated
        mapper; the pending plan only covers pre-existing blocks."""
        server = make_server(blocks=50)
        pending = server.begin_scale(ScalingOp.add(1))
        media = server.add_object("late-arrival", 40)
        # The newcomer's blocks are already where AF() says (new epoch).
        for index in (0, 20, 39):
            assert server.block_location(media.object_id, index) == (
                server.array.home_of(BlockId(media.object_id, index))
            )
        MigrationSession(server.array, pending.plan).run(budget=10_000)
        server.finish_scale(pending)
        from repro.server.fsck import check_layout

        assert check_layout(server).clean


class TestOnlineScalerLimits:
    def test_max_rounds_enforced(self):
        server = make_server(bandwidth=2)
        scheduler = RoundScheduler(server.array)
        for sid in range(4):
            scheduler.admit(Stream(sid, server.catalog.get(sid % 2)))
        scaler = OnlineScaler(server, scheduler)
        with pytest.raises(StalledMigrationError):
            scaler.scale_online(ScalingOp.add(1), max_rounds=1)

    def test_eps_guard_passes_through(self):
        from repro.core.errors import RandomnessExhaustedError

        server = make_server()
        for __ in range(8):
            server.scale(ScalingOp.add(1), eps=0.05)
        scaler = OnlineScaler(server, RoundScheduler(server.array))
        with pytest.raises(RandomnessExhaustedError):
            scaler.scale_online(ScalingOp.add(1), eps=0.05)


class TestDefaultSpecBehaviour:
    def test_added_disks_inherit_default_spec(self):
        catalog = uniform_catalog(1, 10, master_seed=1, bits=32)
        small = DiskSpec(capacity_blocks=500, bandwidth_blocks_per_round=2)
        big = DiskSpec(capacity_blocks=9_000, bandwidth_blocks_per_round=20)
        server = CMServer(catalog, [small] * 2, bits=32, default_spec=big)
        server.scale(ScalingOp.add(1))
        new_pid = server.array.physical_at(2)
        assert server.array.disk(new_pid).capacity_blocks == 9_000

    def test_default_spec_falls_back_to_first(self):
        catalog = uniform_catalog(1, 10, master_seed=1, bits=32)
        spec = DiskSpec(capacity_blocks=777)
        server = CMServer(catalog, [spec] * 2, bits=32)
        assert server.default_spec.capacity_blocks == 777


class TestHiccupRetrySemantics:
    def test_blocked_stream_eventually_served(self):
        """A stream starved in one round retries the same block and is
        served in a later round (no blocks are skipped)."""
        from repro.server.objects import MediaObject
        from repro.storage.array import DiskArray
        from repro.storage.block import Block

        array = DiskArray(
            [DiskSpec(capacity_blocks=100, bandwidth_blocks_per_round=1)] * 2
        )
        media = MediaObject(object_id=0, name="m", num_blocks=6, seed=1, bits=32)
        for i in range(6):
            array.place(Block(0, i, x0=0), 0)  # everything on disk 0
        scheduler = RoundScheduler(array)
        a, b = Stream(1, media), Stream(2, media)
        scheduler.admit(a)
        scheduler.admit(b)
        scheduler.run_rounds(12)
        # Bandwidth 1 on the only loaded disk: 12 serves split between 2
        # streams; both progressed and consumed consecutive prefixes.
        assert a.blocks_consumed + b.blocks_consumed == 12
        assert a.position == a.blocks_consumed
        assert b.position == b.blocks_consumed


class TestCliReportQuick:
    def test_report_quick_is_markdown(self):
        from repro.cli import main

        import io
        import contextlib

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main(["report", "--quick"])
        assert code == 0
        text = buffer.getvalue()
        assert text.startswith("# SCADDAR reproduction")
        assert "```text" in text
