"""Shared fixtures and Hypothesis profiles for the SCADDAR test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.core.scaddar import ScaddarMapper
from repro.storage.block import Block
from repro.storage.disk import DiskSpec
from repro.workloads.generator import random_x0s, uniform_catalog

# Property-test effort tiers: "ci" is the thorough profile the workflow
# runs with (HYPOTHESIS_PROFILE=ci), "dev" keeps local iteration fast,
# and "state_machine" tunes the long-horizon soak state machine
# (tests/test_soak_stateful.py): fewer examples, each running a much
# longer rule sequence, so the lifecycle invariants see deep histories.
# Tests that pin their own @settings(...) still inherit the profile's
# defaults for anything they leave unset (notably deadline=None).
settings.register_profile("ci", max_examples=100, deadline=None)
settings.register_profile("dev", max_examples=20, deadline=None)
settings.register_profile(
    "state_machine",
    max_examples=12,
    stateful_step_count=60,
    deadline=None,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

#: The soak profile's settings, importable by the state-machine test
#: (applied per-class via ``settings`` when the profile is not loaded).
STATE_MACHINE = settings.get_profile("state_machine")


@pytest.fixture
def mapper32() -> ScaddarMapper:
    """A fresh 32-bit mapper on 4 disks (the paper's evaluation shape)."""
    return ScaddarMapper(n0=4, bits=32)


@pytest.fixture
def blocks_small() -> list[Block]:
    """2 000 blocks with random 32-bit X0 values."""
    return [
        Block(object_id=0, index=i, x0=x0)
        for i, x0 in enumerate(random_x0s(2_000, bits=32, seed=0x7E57))
    ]


@pytest.fixture
def blocks_large() -> list[Block]:
    """20 000 blocks for statistical assertions."""
    return [
        Block(object_id=0, index=i, x0=x0)
        for i, x0 in enumerate(random_x0s(20_000, bits=32, seed=0x7E57))
    ]


@pytest.fixture
def small_catalog():
    """Five objects of 100 blocks each, 32-bit sequences."""
    return uniform_catalog(5, 100, master_seed=0xCAFE, bits=32)


@pytest.fixture
def default_specs() -> list[DiskSpec]:
    """Four identical disk specs with generous capacity."""
    return [DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=8)] * 4
