"""Cross-module property tests (hypothesis) tying the subsystems together."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operations import OperationLog, ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.core.vectorized import disks_array
from repro.placement import ConsistentHashPolicy, StrawPolicy
from repro.server.faults import MirroredPlacement, mirror_offset
from repro.server.parity import ParityPlacement, survives_single_failure
from repro.server.recovery import simulate_failure_recovery
from repro.storage.array import DiskArray
from repro.storage.block import Block, BlockId
from repro.storage.disk import DiskSpec
from repro.storage.migration import (
    MigrationPlan,
    PhysicalMove,
    order_capacity_safe,
)
from repro.workloads.generator import random_x0s


@st.composite
def mixed_schedules(draw, n0_range=(2, 8), max_ops=5):
    """A valid schedule of adds and removals keeping N >= 2."""
    n0 = draw(st.integers(*n0_range))
    ops = []
    n = n0
    for __ in range(draw(st.integers(0, max_ops))):
        if n > 2 and draw(st.booleans()):
            victim = draw(st.integers(0, n - 1))
            ops.append(ScalingOp.remove([victim]))
            n -= 1
        else:
            count = draw(st.integers(1, 3))
            ops.append(ScalingOp.add(count))
            n += count
    return n0, ops


class TestVectorizedAgainstMapper:
    @given(spec=mixed_schedules())
    @settings(max_examples=40, deadline=None)
    def test_full_agreement_over_schedules(self, spec):
        n0, ops = spec
        mapper = ScaddarMapper(n0=n0, bits=32)
        log = OperationLog(n0=n0)
        for op in ops:
            mapper.apply(op)
            log.append(op)
        x0s = random_x0s(300, bits=32, seed=n0)
        vec = disks_array(np.asarray(x0s, dtype=np.uint64), log)
        assert vec.tolist() == [mapper.disk_of(x) for x in x0s]


class TestComparatorMovementProperties:
    @given(adds=st.lists(st.integers(1, 3), min_size=1, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_straw_addition_only_moves_to_new_disks(self, adds):
        policy = StrawPolicy(3)
        blocks = [
            Block(0, i, x) for i, x in enumerate(random_x0s(400, 32, seed=9))
        ]
        for count in adds:
            n_before = policy.current_disks
            before = [policy.disk_of(b) for b in blocks]
            policy.apply(ScalingOp.add(count))
            for block, old in zip(blocks, before):
                new = policy.disk_of(block)
                if new != old:
                    assert n_before <= new < n_before + count

    @given(adds=st.lists(st.integers(1, 3), min_size=1, max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_ring_addition_only_moves_to_new_disks(self, adds):
        policy = ConsistentHashPolicy(3, vnodes=16)
        blocks = [
            Block(0, i, x) for i, x in enumerate(random_x0s(300, 32, seed=10))
        ]
        for count in adds:
            n_before = policy.current_disks
            before = [policy.disk_of(b) for b in blocks]
            policy.apply(ScalingOp.add(count))
            for block, old in zip(blocks, before):
                new = policy.disk_of(block)
                if new != old:
                    assert n_before <= new < n_before + count


class TestMirrorProperties:
    @given(spec=mixed_schedules(n0_range=(2, 8)))
    @settings(max_examples=40, deadline=None)
    def test_replicas_distinct_whenever_possible(self, spec):
        n0, ops = spec
        mapper = ScaddarMapper(n0=n0, bits=32)
        for op in ops:
            mapper.apply(op)
        mirrored = MirroredPlacement(mapper)
        n = mirrored.num_disks
        for x0 in random_x0s(100, bits=32, seed=3):
            pair = mirrored.replica_pair(x0)
            if n >= 2:
                assert pair.primary != pair.mirror
            assert pair.mirror == (pair.primary + mirror_offset(n)) % n


class TestParityProperties:
    @given(
        n=st.integers(5, 12),
        k=st.integers(2, 4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_layout_always_single_failure_safe(self, n, k, seed):
        mapper = ScaddarMapper(n0=n, bits=32)
        placement = ParityPlacement(mapper, k=k)
        layout = placement.build_layout(random_x0s(600, bits=32, seed=seed))
        assert survives_single_failure(layout)
        grouped = sum(len(g.members) for g in layout.groups)
        assert grouped + len(layout.ungrouped) == 600


class TestRecoveryProperties:
    @given(
        ops=st.integers(0, 3),
        failed=st.integers(0, 20),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=25, deadline=None)
    def test_recovery_never_loses_data(self, ops, failed, seed):
        mapper = ScaddarMapper(n0=5, bits=32)
        for __ in range(ops):
            mapper.apply(ScalingOp.add(1))
        n = mapper.current_disks
        x0s = random_x0s(400, bits=32, seed=seed)
        after, report = simulate_failure_recovery(mapper, x0s, failed % n)
        assert report.blocks_lost == 0
        assert after.current_disks == n - 1
        # Traffic conservation.
        assert sum(report.reads_by_disk.values()) == report.blocks_recovered


class TestCapacityOrderingProperties:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_ordered_prefixes_respect_capacity(self, data):
        """For any feasible random plan, every prefix of the safe order
        keeps every disk within capacity."""
        n = data.draw(st.integers(2, 5))
        capacity = data.draw(st.integers(2, 4))
        array = DiskArray([DiskSpec(capacity_blocks=capacity)] * n)
        pids = array.physical_ids
        # Fill disks partially.
        block_index = 0
        fills = {}
        for logical in range(n):
            fill = data.draw(st.integers(0, capacity - 1))
            fills[pids[logical]] = fill
            for __ in range(fill):
                array.place(Block(0, block_index, block_index), logical)
                block_index += 1
        # Random moves among resident blocks.
        moves = []
        for pid in pids:
            for block in array.blocks_on_physical(pid):
                if data.draw(st.booleans()):
                    target = pids[data.draw(st.integers(0, n - 1))]
                    if target != pid:
                        moves.append(
                            PhysicalMove(block.block_id, pid, target)
                        )
        try:
            plan = MigrationPlan.from_moves(moves)
            ordered = order_capacity_safe(array, plan)
        except Exception:
            return  # deadlocked or invalid plan: nothing to check
        # Simulate the ordered moves; occupancy must never exceed capacity.
        occupancy = dict(fills)
        for move in ordered.moves:
            occupancy[move.target_physical] += 1
            assert occupancy[move.target_physical] <= capacity
            occupancy[move.source_physical] -= 1


class TestServerIdentityProperties:
    @given(spec=mixed_schedules(n0_range=(3, 6), max_ops=4))
    @settings(max_examples=15, deadline=None)
    def test_af_inventory_identity_over_random_schedules(self, spec):
        from repro.server.cmserver import CMServer
        from repro.workloads.generator import uniform_catalog

        n0, ops = spec
        catalog = uniform_catalog(2, 60, master_seed=n0 + 17, bits=32)
        server = CMServer(
            catalog,
            [DiskSpec(capacity_blocks=10_000)] * n0,
            bits=32,
        )
        for op in ops:
            server.scale(op)
        for media in server.catalog:
            for index in (0, 30, 59):
                assert server.block_location(media.object_id, index) == (
                    server.array.home_of(BlockId(media.object_id, index))
                )
