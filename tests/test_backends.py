"""The pluggable-backend layer: registry, snapshots, full server loop.

Covers the backend abstraction end to end for every registered backend:
snapshot round-trips restore bit-identical layouts, unknown backends
fail with a clear :class:`SnapshotError`, aborts roll stateful backends
back via their payloads, and the whole
load -> scale -> crash -> resume -> fsck loop works uniformly.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.errors import UnsupportedOperationError
from repro.core.operations import ScalingOp
from repro.placement import (
    BACKENDS,
    ScaddarBackend,
    UnknownBackendError,
    make_backend,
)
from repro.server.cmserver import CMServer, ScaleReport
from repro.server.fsck import check_layout
from repro.server.journal import ScalingJournal
from repro.server.persistence import (
    SnapshotError,
    resume_server,
    restore_server,
    snapshot_server,
)
from repro.storage.disk import DiskSpec
from repro.storage.migration import MigrationSession
from repro.workloads.generator import uniform_catalog

BITS = 32

#: Tail removal at 6 disks so every backend (jump hash included) can run.
SCHEDULE = [ScalingOp.add(2), ScalingOp.remove([5]), ScalingOp.add(2)]

#: Sequential checking is reallocation-free and adds-only, so its loop
#: runs a growth-only schedule of the same length.
ADDS_ONLY_SCHEDULE = [ScalingOp.add(2), ScalingOp.add(1), ScalingOp.add(2)]


def schedule_for(name: str) -> list[ScalingOp]:
    if name == "sequential_checking":
        return ADDS_ONLY_SCHEDULE
    return SCHEDULE


def _server(backend: str, journal: ScalingJournal | None = None) -> CMServer:
    catalog = uniform_catalog(3, 60, master_seed=0xBE, bits=BITS)
    spec = DiskSpec(capacity_blocks=10_000, bandwidth_blocks_per_round=8)
    return CMServer(
        catalog, [spec] * 4, bits=BITS, default_spec=spec,
        journal=journal, backend=backend,
    )


def _layout(server: CMServer) -> dict:
    """Block locations in *logical* indices (physical ids are
    process-local and legitimately differ across a restore)."""
    logical = {pid: i for i, pid in enumerate(server.array.physical_ids)}
    return {
        media.object_id: [
            logical[pid] for pid in server.block_locations(media.object_id)
        ]
        for media in server.catalog
    }


class TestRegistry:
    def test_all_expected_backends_registered(self):
        assert set(BACKENDS) == {
            "scaddar", "jump_hash", "consistent_hash", "directory",
            "sequential_checking", "straw", "weighted_straw",
        }

    def test_make_backend_unknown_name(self):
        with pytest.raises(UnknownBackendError, match="registered backends"):
            make_backend("btrfs", n0=4)

    def test_make_backend_instances_carry_names(self):
        for name in BACKENDS:
            backend = make_backend(name, n0=4, bits=BITS)
            assert backend.name == name
            assert backend.current_disks == 4

    def test_server_accepts_backend_instance(self):
        backend = make_backend("scaddar", n0=4, bits=BITS)
        catalog = uniform_catalog(1, 10, bits=BITS)
        server = CMServer(catalog, [DiskSpec()] * 4, bits=BITS, backend=backend)
        assert server.backend is backend

    def test_server_rejects_disk_count_mismatch(self):
        backend = make_backend("scaddar", n0=3, bits=BITS)
        catalog = uniform_catalog(1, 10, bits=BITS)
        with pytest.raises(ValueError, match="expects 3 disks"):
            CMServer(catalog, [DiskSpec()] * 4, bits=BITS, backend=backend)

    def test_mapper_property_raises_for_non_scaddar(self):
        server = _server("jump_hash")
        with pytest.raises(AttributeError, match="no SCADDAR mapper"):
            server.mapper
        with pytest.raises(AttributeError, match="no placement engine"):
            server.engine

    def test_mapper_property_works_for_scaddar(self):
        server = _server("scaddar")
        assert server.mapper.current_disks == 4
        assert server.engine is not None


@pytest.mark.parametrize("name", sorted(BACKENDS))
class TestPerBackendLoop:
    def test_snapshot_round_trip(self, name):
        server = _server(name)
        for op in schedule_for(name):
            server.scale(op)
        before = _layout(server)
        restored = restore_server(snapshot_server(server))
        assert restored.backend.name == name
        assert _layout(restored) == before
        assert check_layout(restored).clean

    def test_scale_moves_blocks_and_stays_clean(self, name):
        server = _server(name)
        schedule = schedule_for(name)
        expected_disks = 4
        for op in schedule:
            report = server.scale(op)
            if name == "sequential_checking":
                # Reallocation-free by construction: nothing ever moves.
                assert report.blocks_moved == 0
            else:
                assert report.blocks_moved > 0
            assert check_layout(server).clean
            expected_disks = op.next_disk_count(expected_disks)
        assert server.num_disks == expected_disks
        assert server.backend.num_operations == len(schedule)

    def test_crash_resume_full_loop(self, name):
        schedule = schedule_for(name)
        journal = ScalingJournal()
        server = _server(name, journal=journal)
        blocks = server.total_blocks
        server.scale(schedule[0])
        snapshot = snapshot_server(server)
        pending = server.begin_scale(schedule[1])
        session = MigrationSession(
            server.array, pending.plan, journal=journal, op_seq=pending.op_seq
        )
        session.step(len(pending.plan), max_moves=max(1, len(pending.plan) // 2))
        del server  # crash mid-migration

        server, pending, session = resume_server(snapshot, journal)
        assert pending is not None and session is not None
        while not session.done:
            session.step(len(pending.plan) + 1)
        server.finish_scale(pending)
        assert server.total_blocks == blocks
        assert check_layout(server).clean

    def test_placement_snapshot_matches_locations(self, name):
        server = _server(name)
        server.scale(ScalingOp.add(1))
        for media in server.catalog:
            snapshot = server.backend.placement_snapshot(media.blocks())
            table = server.array.physical_ids
            locations = server.block_locations(media.object_id)
            for index in range(media.num_blocks):
                block_id = media.block(index).block_id
                assert table[snapshot[block_id]] == locations[index]


class TestSnapshotErrors:
    def test_unknown_backend_raises_snapshot_error(self):
        server = _server("scaddar")
        snapshot = snapshot_server(server)
        snapshot["backend"]["name"] = "btrfs"
        with pytest.raises(SnapshotError, match="btrfs"):
            restore_server(snapshot)

    def test_unknown_backend_on_resume_raises_snapshot_error(self):
        journal = ScalingJournal()
        server = _server("scaddar", journal=journal)
        server.scale(ScalingOp.add(1))
        snapshot = snapshot_server(server)
        snapshot["backend"]["name"] = "btrfs"
        with pytest.raises(SnapshotError, match="does not register"):
            resume_server(snapshot, journal)

    def test_snapshot_error_is_a_value_error(self):
        # Callers catching the old ValueError contract keep working.
        assert issubclass(SnapshotError, ValueError)

    def test_legacy_v2_snapshot_restores_as_scaddar(self):
        server = _server("scaddar")
        server.scale(ScalingOp.add(2))
        snapshot = snapshot_server(server)
        before = _layout(server)
        # Strip the v3 field and stamp the old version: what a snapshot
        # written by the previous build looks like.
        del snapshot["backend"]
        snapshot["version"] = 2
        snapshot["bits"] = BITS
        restored = restore_server(snapshot)
        assert isinstance(restored.backend, ScaddarBackend)
        assert _layout(restored) == before


class TestBackendSemantics:
    def test_jump_hash_rejects_interior_removal(self):
        server = _server("jump_hash")
        with pytest.raises(UnsupportedOperationError, match="end"):
            server.scale(ScalingOp.remove([0]))
        # The refused operation must not have mutated anything.
        assert server.num_disks == 4
        assert server.backend.num_operations == 0
        assert check_layout(server).clean

    def test_sequential_checking_rejects_any_removal(self):
        server = _server("sequential_checking")
        with pytest.raises(UnsupportedOperationError, match="reallocation-free"):
            server.scale(ScalingOp.remove([3]))
        # The refused operation must not have mutated anything.
        assert server.num_disks == 4
        assert server.backend.num_operations == 0
        assert check_layout(server).clean

    def test_sequential_checking_never_moves_blocks(self):
        server = _server("sequential_checking")
        before = {
            media.object_id: server.block_locations(media.object_id)
            for media in server.catalog
        }
        for op in ADDS_ONLY_SCHEDULE:
            report = server.scale(op)
            assert report.blocks_moved == 0
        for media in server.catalog:
            assert server.block_locations(media.object_id) == before[
                media.object_id
            ]

    def test_only_scaddar_reshuffles(self):
        for name in BACKENDS:
            server = _server(name)
            if name == "scaddar":
                server.reshuffle()
                assert server.reshuffles == 1
                assert check_layout(server).clean
            else:
                with pytest.raises(UnsupportedOperationError):
                    server.reshuffle()

    @pytest.mark.parametrize("name", ["directory", "consistent_hash"])
    def test_abort_restores_stateful_backend(self, name):
        server = _server(name)
        before = _layout(server)
        payload_before = server.backend.state_payload()
        pending = server.begin_scale(ScalingOp.add(2))
        session = MigrationSession(server.array, pending.plan)
        session.step(len(pending.plan), max_moves=3)
        server.abort_scale(pending, session)
        assert server.num_disks == 4
        assert server.backend.state_payload() == payload_before
        assert _layout(server) == before
        assert check_layout(server).clean

    def test_directory_forgets_removed_objects(self):
        server = _server("directory")
        victim = next(iter(server.catalog)).object_id
        entries_before = server.backend.state_entries()
        server.remove_object(victim)
        assert server.backend.state_entries() < entries_before


class TestScaleReportEfficiency:
    def _report(self, moved: int, total: int, optimal: Fraction) -> ScaleReport:
        return ScaleReport(
            op=ScalingOp.add(1),
            n_before=4,
            n_after=5,
            blocks_moved=moved,
            total_blocks=total,
            optimal_fraction=optimal,
        )

    def test_optimal_scores_one(self):
        assert self._report(20, 100, Fraction(1, 5)).efficiency == 1.0

    def test_overshoot_scores_below_one(self):
        assert self._report(40, 100, Fraction(1, 5)).efficiency == 0.5

    def test_zero_moves_zero_optimal_scores_one(self):
        assert self._report(0, 100, Fraction(0)).efficiency == 1.0

    def test_zero_moves_nonzero_optimal_scores_zero(self):
        assert self._report(0, 100, Fraction(1, 5)).efficiency == 0.0

    def test_empty_server_scores_one_when_nothing_due(self):
        assert self._report(0, 0, Fraction(0)).efficiency == 1.0
