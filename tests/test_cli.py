"""Unit tests for the CLI entry point."""

from __future__ import annotations

import pytest

from repro.cli import QUICK_KWARGS, build_parser, main
from repro.experiments import EXPERIMENTS


class TestParser:
    def test_all_experiments_are_choices(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_all_keyword(self):
        assert build_parser().parse_args(["all"]).experiment == "all"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_missing_argument_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_seed_flag_accepts_decimal_and_hex(self):
        parser = build_parser()
        assert parser.parse_args(["chaos", "--seed", "42"]).seed == 42
        assert parser.parse_args(["chaos", "--seed", "0xBEEF"]).seed == 0xBEEF
        assert parser.parse_args(["chaos"]).seed is None


class TestMain:
    def test_runs_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "=== fig1 ===" in out
        assert "disk 5" in out

    def test_runs_rule_of_thumb(self, capsys):
        assert main(["rule-of-thumb"]) == 0
        out = capsys.readouterr().out
        assert "paper k" in out

    def test_quick_mode_runs(self, capsys):
        assert main(["bound-tightness", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "2^14" in out  # quick mode shrinks the enumeration

    def test_every_experiment_has_quick_parameters(self):
        assert set(QUICK_KWARGS) == set(EXPERIMENTS)

    def test_every_experiment_has_run_alias(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.report)

    def test_seed_threads_into_seed_aware_experiments(self, capsys):
        assert main(["availability", "--quick", "--seed", "0xD1FF"]) == 0
        first = capsys.readouterr().out
        assert main(["availability", "--quick", "--seed", "0xD1FF"]) == 0
        assert capsys.readouterr().out == first  # bit-reproducible
        assert "dead-disk hiccups" in first

    def test_seed_is_ignored_by_seedless_experiments(self, capsys):
        assert main(["rule-of-thumb", "--seed", "7"]) == 0
        assert "paper k" in capsys.readouterr().out
