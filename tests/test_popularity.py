"""Popularity-aware replication: tracker, policy, adaptation, manifest.

The pledges under test:

* :class:`DemandTracker` decays lazily but *exactly* — bringing a score
  forward over k idle rounds equals one-shot ``0.5 ** (k / half_life)``
  — and the vectorized ``record_batch`` feed folds to the same scores
  as scalar ``record`` calls;
* :class:`ReplicationPolicy` apportions a fixed total-copy budget by
  highest averages — floor one copy per object, hot objects first,
  ceilings respected, surplus spread to cold objects — and hysteresis
  commits a changed target only after it persists;
* the manager's ``adapt()`` pass converges copy placement toward the
  per-object targets at a bounded rate per round, within budget, and
  fsck understands the per-object invariant (including the in-flight
  dirty allowance);
* policy + tracker state round-trips bit-exactly through cluster
  manifest v3, and a policy-free manifest restores to a policy-free
  cluster;
* under random shard death / readmit churn, ``repair()`` is idempotent
  and every object's live copies sit on pairwise-distinct shards and
  failure domains (Hypothesis property).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ClusterCoordinator,
    DemandTracker,
    ReplicationPolicy,
    check_cluster,
    restore_cluster,
    snapshot_cluster,
)
from repro.storage.disk import DiskSpec

SPEC = DiskSpec(capacity_blocks=50_000, bandwidth_blocks_per_round=8)


def build_policy_cluster(
    num_shards: int = 4,
    num_objects: int = 8,
    blocks_per_object: int = 20,
    num_domains: int = 2,
    copy_budget: int | None = None,
    **policy_kwargs,
) -> ClusterCoordinator:
    """An R=1 cluster with a demand-driven policy attached."""
    policy = ReplicationPolicy(
        copy_budget if copy_budget is not None else num_objects + 4,
        **policy_kwargs,
    )
    coordinator = ClusterCoordinator.create(
        num_shards, 2, SPEC, bits=32, master_seed=0xBEEF,
        router_backend="consistent_hash",
        replication_factor=1,
        num_domains=num_domains,
        replication_policy=policy,
    )
    for i in range(num_objects):
        coordinator.add_object(f"title-{i}", blocks_per_object)
    return coordinator


class TestDemandTracker:
    def test_validation(self):
        with pytest.raises(ValueError):
            DemandTracker(half_life_rounds=0)

    def test_half_life_halves_idle_scores(self):
        tracker = DemandTracker(half_life_rounds=8)
        tracker.record(5, units=6)
        tracker.advance_to(8)
        assert tracker.demand(5) == pytest.approx(3.0)

    def test_lazy_decay_matches_one_shot(self):
        # Reading after 13 idle rounds must equal reading after 6 then
        # 7 — lazy decay is exact, not an approximation.
        lazy = DemandTracker(half_life_rounds=5)
        stepped = DemandTracker(half_life_rounds=5)
        for t in (lazy, stepped):
            t.record(1, units=4)
        stepped.advance_to(6)
        stepped.demand(1)  # forces a bring-forward at round 6
        stepped.advance_to(13)
        lazy.advance_to(13)
        assert lazy.demand(1) == pytest.approx(stepped.demand(1))
        assert lazy.demand(1) == pytest.approx(4 * 0.5 ** (13 / 5))

    def test_record_batch_matches_scalar(self):
        import numpy as np

        scalar = DemandTracker(half_life_rounds=4)
        batched = DemandTracker(half_life_rounds=4)
        reads = [3, 1, 3, 3, 2, 1]
        for gid in reads:
            scalar.record(gid)
        batched.record_batch(np.array(reads, dtype=np.int64))
        assert batched.total_units == scalar.total_units == len(reads)
        for gid in {1, 2, 3}:
            assert batched.demand(gid) == scalar.demand(gid)

    def test_record_batch_folds_before_the_clock_moves(self):
        import numpy as np

        tracker = DemandTracker(half_life_rounds=8)
        tracker.record_batch(np.array([7, 7], dtype=np.int64))
        tracker.advance_to(8)  # fold stamps at round 0, then decay
        assert tracker.demand(7) == pytest.approx(1.0)

    def test_rank_ties_break_by_gid(self):
        tracker = DemandTracker()
        tracker.record(4, units=2)
        tracker.record(9, units=2)
        tracker.record(1, units=5)
        assert tracker.rank([9, 4, 1, 2]) == [1, 4, 9, 2]

    def test_forget_and_compact(self):
        tracker = DemandTracker(half_life_rounds=1)
        tracker.record(0, units=1)
        tracker.record(1, units=1)
        tracker.forget(0)
        assert tracker.demand(0) == 0.0
        tracker.advance_to(60)  # 60 half-lives: decayed to noise
        assert tracker.compact() == 1
        assert len(tracker) == 0

    def test_payload_round_trip_is_bit_exact(self):
        import numpy as np

        tracker = DemandTracker(half_life_rounds=6)
        tracker.record(2, units=3)
        tracker.advance_to(4)
        tracker.record_batch(np.array([2, 5, 5], dtype=np.int64))
        payload = tracker.to_payload()
        clone = DemandTracker.from_payload(payload)
        assert clone.to_payload() == payload
        assert clone.demand(2) == tracker.demand(2)
        assert clone.total_units == tracker.total_units


class TestReplicationPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicationPolicy(0)
        with pytest.raises(ValueError):
            ReplicationPolicy(4, floor=0)
        with pytest.raises(ValueError):
            ReplicationPolicy(4, floor=2, ceiling=1)
        with pytest.raises(ValueError):
            ReplicationPolicy(4, hysteresis_rounds=0)
        with pytest.raises(ValueError):
            ReplicationPolicy(4, max_copy_ops_per_round=0)
        with pytest.raises(ValueError):
            ReplicationPolicy(4, demand_half_life_rounds=0)

    def test_desired_respects_budget_floor_and_cap(self):
        policy = ReplicationPolicy(10)
        demands = {0: 100.0, 1: 10.0, 2: 1.0, 3: 0.0}
        targets = policy.desired(demands, max_copies=3)
        assert sum(targets.values()) <= 10
        assert all(1 <= t <= 3 for t in targets.values())
        assert targets[0] == 3  # the hot object is capped, not starved

    def test_extras_follow_demand(self):
        policy = ReplicationPolicy(6)
        targets = policy.desired({0: 9.0, 1: 1.0, 2: 0.0, 3: 0.0}, 4)
        # 4 floors + 2 extras: highest averages gives both to gid 0
        # (9/1 then 9/2 beat 1/1).
        assert targets == {0: 3, 1: 1, 2: 1, 3: 1}

    def test_surplus_spreads_to_cold_objects(self):
        policy = ReplicationPolicy(7)
        targets = policy.desired({0: 0.0, 1: 0.0, 2: 0.0}, 4)
        # No demand anywhere: extras spread by ascending gid instead of
        # sitting idle.
        assert sum(targets.values()) == 7
        assert targets[0] >= targets[1] >= targets[2]

    def test_ceiling_caps_targets(self):
        policy = ReplicationPolicy(12, ceiling=2)
        targets = policy.desired({0: 50.0, 1: 0.0, 2: 0.0}, 5)
        assert max(targets.values()) <= 2

    def test_hysteresis_delays_commit(self):
        policy = ReplicationPolicy(5, hysteresis_rounds=3)
        demands = {0: 8.0, 1: 0.0, 2: 0.0}
        assert policy.update(demands, 3, base_factor=1) == []
        assert policy.update(demands, 3, base_factor=1) == []
        assert policy.update(demands, 3, base_factor=1) == [0]
        assert policy.target_of(0, 1) == 3

    def test_flapping_demand_never_commits(self):
        policy = ReplicationPolicy(5, hysteresis_rounds=2)
        hot_a = {0: 9.0, 1: 0.0}
        hot_b = {0: 0.0, 1: 9.0}
        for _ in range(4):
            assert policy.update(hot_a, 3, base_factor=1) == []
            assert policy.update(hot_b, 3, base_factor=1) == []
        assert policy.targets == {}

    def test_update_drops_departed_objects(self):
        policy = ReplicationPolicy(6, hysteresis_rounds=1)
        policy.update({0: 5.0, 1: 0.0}, 3, base_factor=1)
        assert 0 in policy.targets
        policy.update({1: 0.0, 2: 0.0}, 3, base_factor=1)
        assert 0 not in policy.targets

    def test_payload_round_trip_is_bit_exact(self):
        policy = ReplicationPolicy(
            9, ceiling=3, hysteresis_rounds=2, max_copy_ops_per_round=2,
            demand_half_life_rounds=16,
        )
        policy.update({0: 7.0, 1: 1.0, 2: 0.0}, 3, base_factor=1)
        payload = policy.to_payload()
        clone = ReplicationPolicy.from_payload(payload)
        assert clone.to_payload() == payload
        assert clone.targets == policy.targets
        assert clone._streaks == policy._streaks


class TestClusterAdaptation:
    def test_no_policy_cluster_is_untouched(self):
        coordinator = ClusterCoordinator.create(
            2, 2, SPEC, bits=32, master_seed=0xBEEF,
            router_backend="consistent_hash",
        )
        coordinator.add_object("clip", 10)
        assert coordinator.replication.tracker is None
        coordinator.replication.record_demand(0, 100)  # no-op
        assert coordinator.replication.adapt() == {
            "created": 0, "dropped": 0, "retargeted": 0,
        }

    def test_adapt_rate_bound_per_round(self):
        coordinator = build_policy_cluster(
            num_shards=6, num_domains=3, copy_budget=24,
            hysteresis_rounds=1, max_copy_ops_per_round=2,
        )
        for gid in coordinator.object_ids:
            coordinator.replication.record_demand(gid, 50)
        for _ in range(12):
            before = (
                coordinator.replication.copies_created
                + coordinator.replication.copies_dropped
                + coordinator.replication.copies_lost
            )
            coordinator.run_round()
            after = (
                coordinator.replication.copies_created
                + coordinator.replication.copies_dropped
                + coordinator.replication.copies_lost
            )
            assert after - before <= 2

    def test_hot_object_converges_within_budget(self):
        coordinator = build_policy_cluster(
            num_shards=6, num_domains=3, num_objects=6, copy_budget=8,
            hysteresis_rounds=1,
        )
        hot = 0
        coordinator.replication.record_demand(hot, 500)
        for _ in range(10):
            coordinator.run_round()
        manager = coordinator.replication
        assert manager.target_of(hot) == 3  # live-domain ceiling
        assert len(manager.copies_of(hot)) == 3
        total = len(coordinator._home) + sum(
            len(sids) for sids in coordinator._replica_home.values()
        )
        assert total <= 8
        assert check_cluster(coordinator).clean

    def test_demand_shift_moves_copies(self):
        coordinator = build_policy_cluster(
            num_shards=6, num_domains=3, num_objects=6, copy_budget=8,
            hysteresis_rounds=1, demand_half_life_rounds=2,
        )
        manager = coordinator.replication
        manager.record_demand(0, 200)
        for _ in range(8):
            coordinator.run_round()
        assert manager.target_of(0) > 1
        # The crowd moves on: object 5 heats up while 0 goes cold.
        for _ in range(16):
            manager.record_demand(5, 200)
            coordinator.run_round()
        assert manager.target_of(5) > 1
        assert manager.target_of(0) == 1
        assert len(manager.copies_of(0)) == 1
        assert check_cluster(coordinator).clean

    def test_fsck_flags_unexplained_shortfall(self):
        coordinator = build_policy_cluster(
            num_shards=6, num_domains=3, num_objects=4, copy_budget=6,
            hysteresis_rounds=1,
        )
        manager = coordinator.replication
        manager.record_demand(0, 300)
        for _ in range(8):
            coordinator.run_round()
        assert manager.target_of(0) > 1
        victim = manager.replicas_of(0)[0]
        manager.drop_replica(0, victim)
        # The gap is not in the dirty queue and no shard died: breach.
        report = check_cluster(coordinator)
        assert not report.clean
        assert any(
            v.kind == "under-replicated" for v in report.replica_violations
        )
        # Queued for reconciliation, the same shortfall is only
        # degraded — adapt() will close it within the rate bound.
        manager._dirty.add(0)
        assert check_cluster(coordinator).clean

    def test_route_reads_feed_matches_route_read(self):
        batched = build_policy_cluster()
        scalar = build_policy_cluster()
        gids = list(batched.object_ids)
        batched.route_reads(gids)
        for gid in gids:
            scalar.route_read(gid)
        b, s = batched.replication.tracker, scalar.replication.tracker
        assert b.total_units == s.total_units
        assert all(b.demand(g) == s.demand(g) for g in gids)


class TestManifestV3:
    def test_policy_state_round_trips(self):
        coordinator = build_policy_cluster(hysteresis_rounds=1)
        coordinator.replication.record_demand(0, 120)
        coordinator.replication.record_demand(3, 40)
        for _ in range(6):
            coordinator.run_round()
        manifest = snapshot_cluster(coordinator)
        assert manifest["version"] == 3
        restored = restore_cluster(manifest)
        assert restored.round_index == coordinator.round_index
        assert (
            restored.replication.policy_payload()
            == coordinator.replication.policy_payload()
        )
        assert restored._replica_home == coordinator._replica_home
        # The restored tracker keeps decaying from the same clock.
        restored.run_round()
        coordinator.run_round()
        assert (
            restored.replication.policy_payload()
            == coordinator.replication.policy_payload()
        )

    def test_policy_free_manifest_restores_policy_free(self):
        coordinator = ClusterCoordinator.create(
            2, 2, SPEC, bits=32, master_seed=0xBEEF,
            router_backend="consistent_hash",
        )
        coordinator.add_object("clip", 10)
        manifest = snapshot_cluster(coordinator)
        assert manifest["popularity"] is None
        restored = restore_cluster(manifest)
        assert restored.replication.policy is None
        assert restored.replication.tracker is None


class TestRepairProperties:
    """Repair is idempotent and placement invariants hold under churn."""

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_repair_idempotent_under_death_and_readmit(self, data):
        coordinator = ClusterCoordinator.create(
            4, 2, SPEC, bits=32, master_seed=0xBEEF,
            router_backend="consistent_hash",
            replication_factor=2,
            num_domains=2,
            replication_policy=ReplicationPolicy(
                14, hysteresis_rounds=1, max_copy_ops_per_round=8,
            ),
        )
        for i in range(6):
            coordinator.add_object(f"title-{i}", 10)
        gids = sorted(coordinator.object_ids)
        manager = coordinator.replication

        for _ in range(data.draw(st.integers(2, 7), label="steps")):
            live = [
                sid for sid in coordinator.shard_ids
                if coordinator.health.is_live(sid)
            ]
            choices = ["demand", "round"]
            if len(live) > 3:
                choices.append("kill")
            if len(live) < 6:
                choices.append("readmit")
            action = data.draw(st.sampled_from(choices), label="action")
            if action == "demand":
                gid = data.draw(st.sampled_from(gids), label="gid")
                manager.record_demand(
                    gid, data.draw(st.integers(1, 60), label="units")
                )
            elif action == "round":
                coordinator.run_round()
            elif action == "kill":
                victim = data.draw(st.sampled_from(live), label="victim")
                coordinator.kill_shard(victim)
                for gid in gids:
                    manager.repair(gid)
            else:
                coordinator.readmit_shard()

        for gid in gids:
            manager.repair(gid)
            copies_after_first = manager.copies_of(gid)
            assert manager.repair(gid) == 0  # idempotent
            assert manager.copies_of(gid) == copies_after_first
            live_copies = manager.live_copies_of(gid)
            assert len(set(live_copies)) == len(live_copies)
            domains = [coordinator.shard(s).domain for s in live_copies]
            assert len(set(domains)) == len(domains)
            assert len(live_copies) <= max(
                1, min(manager.target_of(gid), manager.live_domain_count())
            )
        assert check_cluster(coordinator).clean
