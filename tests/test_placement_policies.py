"""Unit tests for the placement policies and their shared interface."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import UnsupportedOperationError
from repro.core.operations import ScalingOp
from repro.placement import (
    ALL_POLICIES,
    CompleteRedistribution,
    ConsistentHashPolicy,
    DirectoryPolicy,
    ExtendibleHashingPolicy,
    JumpHashPolicy,
    NaivePolicy,
    RoundRobinPolicy,
    ScaddarPolicy,
    jump_hash,
)
from repro.storage.block import Block
from repro.workloads.generator import random_x0s


def make_blocks(count=2_000, seed=0xB10C):
    return [
        Block(object_id=i % 7, index=i // 7, x0=x0)
        for i, x0 in enumerate(random_x0s(count, bits=32, seed=seed))
    ]


def make_policy(name, n0=4):
    cls = ALL_POLICIES[name]
    return cls(n0, bits=32) if name == "scaddar" else cls(n0)


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(ALL_POLICIES) == {
            "scaddar",
            "naive",
            "complete",
            "directory",
            "round_robin",
            "extendible",
            "consistent_hash",
            "jump_hash",
            "straw",
        }

    def test_names_match_keys(self):
        for name, cls in ALL_POLICIES.items():
            assert cls.name == name


class TestInterfaceConformance:
    @pytest.mark.parametrize("name", sorted(ALL_POLICIES))
    def test_disks_in_range_after_additions(self, name):
        policy = make_policy(name)
        blocks = make_blocks(300)
        policy.register(blocks)
        policy.apply(ScalingOp.add(4))  # doubling: every policy supports it
        for block in blocks:
            assert 0 <= policy.disk_of(block) < policy.current_disks

    @pytest.mark.parametrize("name", sorted(ALL_POLICIES))
    def test_disk_of_is_deterministic(self, name):
        policy = make_policy(name)
        blocks = make_blocks(100)
        policy.register(blocks)
        first = [policy.disk_of(b) for b in blocks]
        second = [policy.disk_of(b) for b in blocks]
        assert first == second

    @pytest.mark.parametrize("name", sorted(ALL_POLICIES))
    def test_apply_updates_log(self, name):
        policy = make_policy(name)
        assert policy.apply(ScalingOp.add(4)) == 8
        assert policy.num_operations == 1
        assert policy.current_disks == 8

    @pytest.mark.parametrize("name", sorted(ALL_POLICIES))
    def test_placement_snapshot(self, name):
        policy = make_policy(name)
        blocks = make_blocks(50)
        policy.register(blocks)
        snapshot = policy.placement_snapshot(blocks)
        assert len(snapshot) == 50
        assert all(0 <= d < 4 for d in snapshot.values())

    @pytest.mark.parametrize("name", sorted(ALL_POLICIES))
    def test_state_entries_nonnegative(self, name):
        policy = make_policy(name)
        policy.register(make_blocks(100))
        assert policy.state_entries() >= 0

    @pytest.mark.parametrize("name", sorted(ALL_POLICIES))
    def test_repr(self, name):
        assert "disks=4" in repr(make_policy(name))


class TestScaddarPolicy:
    def test_matches_raw_mapper(self):
        policy = ScaddarPolicy(4, bits=32)
        policy.apply(ScalingOp.add(2))
        policy.apply(ScalingOp.remove([1]))
        for block in make_blocks(200):
            assert policy.disk_of(block) == policy.mapper.disk_of(block.x0)

    def test_state_is_operation_log(self):
        policy = ScaddarPolicy(4, bits=32)
        for __ in range(5):
            policy.apply(ScalingOp.add(1))
        assert policy.state_entries() == 5


class TestNaivePolicy:
    def test_rejects_removal_without_recording(self):
        policy = NaivePolicy(4)
        with pytest.raises(UnsupportedOperationError):
            policy.apply(ScalingOp.remove([0]))
        assert policy.num_operations == 0
        assert policy.current_disks == 4


class TestCompleteRedistribution:
    def test_is_mod_n(self):
        policy = CompleteRedistribution(4)
        policy.apply(ScalingOp.add(3))
        for block in make_blocks(100):
            assert policy.disk_of(block) == block.x0 % 7

    def test_zero_state(self):
        assert CompleteRedistribution(4).state_entries() == 0


class TestDirectoryPolicy:
    def test_requires_registration(self):
        policy = DirectoryPolicy(4)
        with pytest.raises(KeyError):
            policy.disk_of(Block(0, 0, 5))

    def test_registration_is_idempotent(self):
        policy = DirectoryPolicy(4)
        blocks = make_blocks(100)
        policy.register(blocks)
        placed = [policy.disk_of(b) for b in blocks]
        policy.register(blocks)
        assert [policy.disk_of(b) for b in blocks] == placed

    def test_reproducible_with_seed(self):
        blocks = make_blocks(200)
        a, b = DirectoryPolicy(4, seed=1), DirectoryPolicy(4, seed=1)
        a.register(blocks)
        b.register(blocks)
        a.apply(ScalingOp.add(2))
        b.apply(ScalingOp.add(2))
        assert [a.disk_of(x) for x in blocks] == [b.disk_of(x) for x in blocks]

    def test_addition_moves_only_to_new_disks(self):
        policy = DirectoryPolicy(4)
        blocks = make_blocks(3_000)
        policy.register(blocks)
        before = {b.block_id: policy.disk_of(b) for b in blocks}
        policy.apply(ScalingOp.add(2))
        for block in blocks:
            disk = policy.disk_of(block)
            if disk != before[block.block_id]:
                assert disk in (4, 5)

    def test_removal_relocates_evicted_only(self):
        policy = DirectoryPolicy(4)
        blocks = make_blocks(3_000)
        policy.register(blocks)
        before = {b.block_id: policy.disk_of(b) for b in blocks}
        policy.apply(ScalingOp.remove([2]))
        ranks = [0, 1, -1, 2]
        for block in blocks:
            disk = policy.disk_of(block)
            if before[block.block_id] == 2:
                assert 0 <= disk < 3
            else:
                assert disk == ranks[before[block.block_id]]

    def test_state_grows_with_blocks(self):
        policy = DirectoryPolicy(4)
        policy.register(make_blocks(500))
        assert policy.state_entries() == 500


class TestRoundRobin:
    def test_consecutive_blocks_consecutive_disks(self):
        policy = RoundRobinPolicy(5)
        blocks = [Block(object_id=3, index=i, x0=0) for i in range(10)]
        disks = [policy.disk_of(b) for b in blocks]
        for a, b_ in zip(disks, disks[1:]):
            assert b_ == (a + 1) % 5

    def test_restripes_on_scaling(self):
        policy = RoundRobinPolicy(4)
        blocks = [Block(object_id=0, index=i, x0=0) for i in range(1_000)]
        before = [policy.disk_of(b) for b in blocks]
        policy.apply(ScalingOp.add(1))
        after = [policy.disk_of(b) for b in blocks]
        changed = sum(1 for x, y in zip(before, after) if x != y)
        assert changed / len(blocks) > 0.7  # nearly everything moves


class TestExtendible:
    def test_requires_power_of_two(self):
        with pytest.raises(UnsupportedOperationError):
            ExtendibleHashingPolicy(3)

    def test_doubling_allowed(self):
        policy = ExtendibleHashingPolicy(4)
        assert policy.apply(ScalingOp.add(4)) == 8

    def test_non_doubling_rejected(self):
        policy = ExtendibleHashingPolicy(4)
        with pytest.raises(UnsupportedOperationError):
            policy.apply(ScalingOp.add(1))
        assert policy.num_operations == 0

    def test_halving_allowed(self):
        policy = ExtendibleHashingPolicy(8)
        assert policy.apply(ScalingOp.remove([4, 5, 6, 7])) == 4

    def test_wrong_half_rejected(self):
        policy = ExtendibleHashingPolicy(8)
        with pytest.raises(UnsupportedOperationError):
            policy.apply(ScalingOp.remove([0, 1, 2, 3]))

    def test_doubling_moves_half(self):
        policy = ExtendibleHashingPolicy(4)
        blocks = make_blocks(10_000)
        before = [policy.disk_of(b) for b in blocks]
        policy.apply(ScalingOp.add(4))
        moved = sum(
            1 for b, d in zip(blocks, before) if policy.disk_of(b) != d
        )
        assert abs(moved / len(blocks) - 0.5) < 0.03

    def test_state_is_directory_size(self):
        policy = ExtendibleHashingPolicy(8)
        assert policy.state_entries() == 8


class TestConsistentHash:
    def test_vnodes_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashPolicy(4, vnodes=0)

    def test_addition_moves_are_bounded(self):
        policy = ConsistentHashPolicy(4, vnodes=64)
        blocks = make_blocks(5_000)
        before = [policy.disk_of(b) for b in blocks]
        policy.apply(ScalingOp.add(1))
        moved = sum(1 for b, d in zip(blocks, before) if policy.disk_of(b) != d)
        # Expected 1/5; allow generous ring-imbalance slack.
        assert moved / len(blocks) < 0.35

    def test_removal_only_moves_evicted(self):
        policy = ConsistentHashPolicy(4, vnodes=32)
        blocks = make_blocks(5_000)
        before = {b.block_id: policy.disk_of(b) for b in blocks}
        survivors = {0: 0, 1: 1, 3: 2}  # old logical -> new logical
        policy.apply(ScalingOp.remove([2]))
        for block in blocks:
            disk = policy.disk_of(block)
            old = before[block.block_id]
            if old != 2:
                assert disk == survivors[old]

    def test_state_is_ring_size(self):
        policy = ConsistentHashPolicy(3, vnodes=10)
        assert policy.state_entries() == 30
        policy.apply(ScalingOp.add(2))
        assert policy.state_entries() == 50
        policy.apply(ScalingOp.remove([0]))
        assert policy.state_entries() == 40


class TestJumpHash:
    def test_reference_values_stable(self):
        # Jump hash is deterministic; pin a few values as regression.
        assert jump_hash(0, 1) == 0
        assert jump_hash(123456789, 1) == 0
        for key in (1, 42, 2**40):
            assert 0 <= jump_hash(key, 10) < 10

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            jump_hash(1, 0)

    def test_monotone_consistency(self):
        """Growing N only ever moves keys to the NEW buckets."""
        for key in random_x0s(2_000, bits=64, seed=9):
            small = jump_hash(key, 8)
            large = jump_hash(key, 10)
            assert large == small or large >= 8

    def test_tail_removal_allowed(self):
        policy = JumpHashPolicy(6)
        assert policy.apply(ScalingOp.remove([4, 5])) == 4

    def test_interior_removal_rejected(self):
        policy = JumpHashPolicy(6)
        with pytest.raises(UnsupportedOperationError):
            policy.apply(ScalingOp.remove([2]))
        assert policy.num_operations == 0

    @given(key=st.integers(0, 2**64 - 1), n=st.integers(1, 100))
    @settings(max_examples=100, deadline=None)
    def test_range_property(self, key, n):
        assert 0 <= jump_hash(key, n) < n

    def test_distribution_roughly_uniform(self):
        counts = [0] * 10
        for key in random_x0s(20_000, bits=64, seed=10):
            counts[jump_hash(key, 10)] += 1
        mean = sum(counts) / 10
        assert all(abs(c - mean) / mean < 0.1 for c in counts)


class TestStraw:
    def test_straw_length_weight_validation(self):
        from repro.placement import straw_length

        with pytest.raises(ValueError):
            straw_length(1, 0, weight=0)

    def test_weighted_straws_bias_selection(self):
        from repro.placement import straw_length

        wins = [0, 0]
        for x0 in random_x0s(20_000, bits=64, seed=20):
            straws = [straw_length(x0, 0, 1.0), straw_length(x0, 1, 3.0)]
            wins[straws.index(max(straws))] += 1
        # Node 1 has 3x the weight -> ~75% of the wins.
        assert 0.72 < wins[1] / sum(wins) < 0.78

    def test_distribution_roughly_uniform(self):
        from repro.placement import StrawPolicy

        policy = StrawPolicy(8)
        counts = [0] * 8
        for block in make_blocks(16_000, seed=21):
            counts[policy.disk_of(block)] += 1
        mean = sum(counts) / 8
        assert all(abs(c - mean) / mean < 0.08 for c in counts)

    def test_addition_moves_only_to_new_disk(self):
        from repro.placement import StrawPolicy

        policy = StrawPolicy(4)
        blocks = make_blocks(4_000, seed=22)
        before = [policy.disk_of(b) for b in blocks]
        policy.apply(ScalingOp.add(1))
        for block, old in zip(blocks, before):
            new = policy.disk_of(block)
            if new != old:
                assert new == 4  # straw2: winner changes only to the newcomer

    def test_addition_movement_near_optimal(self):
        from repro.placement import StrawPolicy

        policy = StrawPolicy(4)
        blocks = make_blocks(10_000, seed=23)
        before = [policy.disk_of(b) for b in blocks]
        policy.apply(ScalingOp.add(1))
        moved = sum(
            1 for b, old in zip(blocks, before) if policy.disk_of(b) != old
        )
        assert abs(moved / len(blocks) - 0.2) < 0.02

    def test_interior_removal_moves_only_evicted(self):
        from repro.placement import StrawPolicy

        policy = StrawPolicy(5)
        blocks = make_blocks(4_000, seed=24)
        before = {b.block_id: policy.disk_of(b) for b in blocks}
        policy.apply(ScalingOp.remove([2]))
        survivors = {0: 0, 1: 1, 3: 2, 4: 3}
        for block in blocks:
            old = before[block.block_id]
            if old != 2:
                assert policy.disk_of(block) == survivors[old]

    def test_state_is_node_table(self):
        from repro.placement import StrawPolicy

        policy = StrawPolicy(6)
        assert policy.state_entries() == 6
        policy.apply(ScalingOp.remove([0, 5]))
        assert policy.state_entries() == 4


class TestJumpHashBatchKernel:
    """The vectorized jump-hash kernel is bit-identical to the scalar."""

    @given(
        buckets=st.integers(1, 64),
        keys=st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=80),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar(self, buckets, keys):
        import numpy as np

        from repro.placement.jump_hash import jump_hash_batch

        batch = jump_hash_batch(np.array(keys, dtype=np.uint64), buckets)
        assert batch.tolist() == [jump_hash(k, buckets) for k in keys]

    def test_bucket_validation(self):
        import numpy as np

        from repro.placement.jump_hash import jump_hash_batch

        with pytest.raises(ValueError):
            jump_hash_batch(np.array([1], dtype=np.uint64), 0)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_policy_locate_batch_matches_locate_one(self, data):
        import numpy as np

        policy = JumpHashPolicy(data.draw(st.integers(2, 10)))
        for _ in range(data.draw(st.integers(0, 3))):
            policy.apply(ScalingOp.add(data.draw(st.integers(1, 3))))
        keys = data.draw(
            st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=50)
        )
        xs = np.array(keys, dtype=np.uint64)
        assert policy.locate_batch(None, xs).tolist() == [
            policy.locate_one(None, k) for k in keys
        ]


class TestConsistentHashBatchKernel:
    """The vectorized ring walk is bit-identical to the bisect walk."""

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_locate_batch_matches_locate_one(self, data):
        import numpy as np

        n0 = data.draw(st.integers(2, 8))
        policy = ConsistentHashPolicy(n0, vnodes=data.draw(st.integers(1, 32)))
        n = n0
        for _ in range(data.draw(st.integers(0, 4))):
            if n > 2 and data.draw(st.booleans()):
                victim = data.draw(st.integers(0, n - 1))
                policy.apply(ScalingOp.remove([victim]))
                n -= 1
            else:
                count = data.draw(st.integers(1, 3))
                policy.apply(ScalingOp.add(count))
                n += count
            keys = data.draw(
                st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=40)
            )
            xs = np.array(keys, dtype=np.uint64)
            assert policy.locate_batch(None, xs).tolist() == [
                policy.locate_one(None, k) for k in keys
            ]

    def test_mix64_batch_matches_scalar(self):
        import numpy as np

        from repro.placement.consistent_hash import _mix64_batch
        from repro.prng.generators import _mix64

        keys = [0, 1, 2**63, 2**64 - 1, 0xDEADBEEF]
        batch = _mix64_batch(np.array(keys, dtype=np.uint64))
        assert batch.tolist() == [_mix64(k) for k in keys]
