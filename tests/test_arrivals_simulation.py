"""Tests for the arrival process and the long-horizon simulation."""

from __future__ import annotations

import pytest

from repro.server.cmserver import CMServer
from repro.server.simulation import ServerSimulation
from repro.storage.disk import DiskSpec
from repro.workloads.arrivals import Arrival, ArrivalProcess
from repro.workloads.generator import uniform_catalog


def make_catalog(objects=6, blocks=80):
    return uniform_catalog(objects, blocks, master_seed=0xA1, bits=32)


def make_server(catalog, disks=3, bandwidth=5):
    spec = DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=bandwidth)
    return CMServer(catalog, [spec] * disks, bits=32, default_spec=spec)


class TestArrivalProcess:
    def test_validation(self):
        catalog = make_catalog()
        with pytest.raises(ValueError):
            ArrivalProcess(catalog, rate=-1)
        with pytest.raises(ValueError):
            ArrivalProcess(catalog, rate=1, resume_probability=2)
        from repro.server.objects import ObjectCatalog

        with pytest.raises(ValueError):
            ArrivalProcess(ObjectCatalog(), rate=1)

    def test_reproducible(self):
        catalog = make_catalog()
        a = ArrivalProcess(catalog, rate=0.8, seed=5)
        b = ArrivalProcess(catalog, rate=0.8, seed=5)
        rounds_a = [a.next_round() for __ in range(50)]
        rounds_b = [b.next_round() for __ in range(50)]
        assert rounds_a == rounds_b

    def test_rate_zero_generates_nothing(self):
        process = ArrivalProcess(make_catalog(), rate=0.0)
        assert all(process.next_round() == [] for __ in range(20))

    def test_mean_rate_approximates_poisson(self):
        process = ArrivalProcess(make_catalog(), rate=2.0, seed=9)
        total = sum(len(process.next_round()) for __ in range(2_000))
        assert 2.0 * 2_000 * 0.9 < total < 2.0 * 2_000 * 1.1

    def test_arrivals_are_valid(self):
        catalog = make_catalog()
        process = ArrivalProcess(catalog, rate=3.0, resume_probability=0.5, seed=3)
        seen_resume = False
        for __ in range(200):
            for arrival in process.next_round():
                assert isinstance(arrival, Arrival)
                media = catalog.get(arrival.object_id)
                assert 0 <= arrival.start_block < media.num_blocks
                seen_resume = seen_resume or arrival.start_block > 0
        assert seen_resume

    def test_zipf_skews_popularity(self):
        catalog = make_catalog(objects=10)
        process = ArrivalProcess(catalog, rate=3.0, zipf_exponent=1.2, seed=4)
        counts = {oid: 0 for oid in range(10)}
        for __ in range(2_000):
            for arrival in process.next_round():
                counts[arrival.object_id] += 1
        assert counts[0] > 2 * counts[9]


class TestServerSimulation:
    def test_zero_rounds(self):
        catalog = make_catalog()
        sim = ServerSimulation(make_server(catalog), ArrivalProcess(catalog, 1.0))
        summary = sim.run(0)
        assert summary.rounds == 0
        assert summary.arrivals == 0

    def test_negative_rounds_rejected(self):
        catalog = make_catalog()
        sim = ServerSimulation(make_server(catalog), ArrivalProcess(catalog, 1.0))
        with pytest.raises(ValueError):
            sim.run(-1)

    def test_accounting_is_consistent(self):
        catalog = make_catalog()
        sim = ServerSimulation(
            make_server(catalog), ArrivalProcess(catalog, 0.3, seed=11)
        )
        summary = sim.run(400)
        assert summary.arrivals == summary.admitted + summary.rejected
        assert summary.completed <= summary.admitted
        assert summary.peak_active_streams <= summary.admitted
        assert len(summary.active_per_round) == 400

    def test_viewers_complete_movies(self):
        catalog = make_catalog(blocks=40)
        sim = ServerSimulation(
            make_server(catalog, bandwidth=8),
            ArrivalProcess(catalog, 0.2, seed=12),
        )
        summary = sim.run(500)
        assert summary.completed > 0

    def test_autoscale_triggers_and_grows(self):
        catalog = make_catalog(blocks=200)
        server = make_server(catalog, disks=2, bandwidth=4)
        sim = ServerSimulation(
            server,
            ArrivalProcess(catalog, 0.5, seed=13),
            autoscale_rejections=3,
        )
        summary = sim.run(600)
        assert summary.scale_events > 0
        assert server.num_disks > 2
        assert summary.scale_events == server.mapper.num_operations

    def test_no_autoscale_keeps_size(self):
        catalog = make_catalog()
        server = make_server(catalog, disks=2, bandwidth=4)
        sim = ServerSimulation(server, ArrivalProcess(catalog, 0.5, seed=14))
        sim.run(300)
        assert server.num_disks == 2

    def test_rejection_rate_property(self):
        from repro.server.simulation import DaySummary

        empty = DaySummary()
        assert empty.rejection_rate == 0.0
        some = DaySummary(arrivals=10, rejected=2)
        assert some.rejection_rate == pytest.approx(0.2)
