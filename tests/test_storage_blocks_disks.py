"""Unit tests for Block/BlockId and the disk model."""

from __future__ import annotations

import pytest

from repro.storage.block import Block, BlockId
from repro.storage.disk import Disk, DiskSpec


class TestBlockId:
    def test_equality_and_hash(self):
        assert BlockId(1, 2) == BlockId(1, 2)
        assert hash(BlockId(1, 2)) == hash(BlockId(1, 2))
        assert BlockId(1, 2) != BlockId(1, 3)

    def test_ordering(self):
        assert BlockId(1, 2) < BlockId(1, 3) < BlockId(2, 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            BlockId(0, -1)


class TestBlock:
    def test_block_id_property(self):
        block = Block(object_id=3, index=7, x0=123)
        assert block.block_id == BlockId(3, 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            Block(object_id=0, index=-1, x0=0)
        with pytest.raises(ValueError):
            Block(object_id=0, index=0, x0=-1)

    def test_frozen(self):
        block = Block(object_id=0, index=0, x0=1)
        with pytest.raises(AttributeError):
            block.x0 = 2

    def test_usable_in_sets(self):
        blocks = {Block(0, 0, 5), Block(0, 0, 5), Block(0, 1, 5)}
        assert len(blocks) == 2


class TestDiskSpec:
    def test_defaults(self):
        spec = DiskSpec()
        assert spec.capacity_blocks > 0
        assert spec.bandwidth_blocks_per_round > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskSpec(capacity_blocks=0)
        with pytest.raises(ValueError):
            DiskSpec(bandwidth_blocks_per_round=0)

    def test_frozen_and_reusable(self):
        spec = DiskSpec(capacity_blocks=10, bandwidth_blocks_per_round=2)
        a, b = Disk(spec=spec), Disk(spec=spec)
        assert a.capacity_blocks == b.capacity_blocks == 10


class TestDisk:
    def test_physical_ids_are_unique(self):
        ids = {Disk().physical_id for __ in range(100)}
        assert len(ids) == 100

    def test_spec_delegation(self):
        disk = Disk(spec=DiskSpec(capacity_blocks=5, bandwidth_blocks_per_round=3, model="gen2"))
        assert disk.capacity_blocks == 5
        assert disk.bandwidth_blocks_per_round == 3
        assert disk.model == "gen2"

    def test_repr_mentions_id(self):
        disk = Disk()
        assert str(disk.physical_id) in repr(disk)
