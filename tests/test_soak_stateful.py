"""Long-horizon lifecycle state machine (Hypothesis stateful testing).

The scripted tests each exercise one seam; this machine lets Hypothesis
*search* for a lethal interleaving: starting from a live server (any
registered backend) it applies random sequences of serve rounds, scale
operations, disk kills and revivals, ingests, object removals, explicit
reshuffles, and crash/resume cycles — checking after every step that

* no block is ever lost (``total_blocks`` matches the ledger),
* every served round conserves reads
  (``requested == served + hiccups + queued``),
* the layout always audits clean at quiescent points.

SCADDAR runs with the exhaustion watchdog in ``auto_reset`` mode over a
16-bit budget, so deep sequences force genuine automatic reshuffles —
the budget lifecycle is part of the searched state space, not mocked.

Run under the ``state_machine`` Hypothesis profile
(``HYPOTHESIS_PROFILE=state_machine``) for long rule sequences; the
default dev/ci profiles keep it short and fast.
"""

from __future__ import annotations

import os

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.operations import ScalingOp
from repro.placement.backends import BACKENDS
from repro.server.cmserver import CMServer, PendingReshuffle
from repro.server.faults import FaultInjector, derive_seed
from repro.server.fsck import check_layout
from repro.server.ingest import IngestSession
from repro.server.journal import ScalingJournal
from repro.server.online import OnlineScaler
from repro.server.persistence import resume_server, snapshot_server
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream
from repro.server.watchdog import ExhaustionWatchdog, WatchdogConfig
from repro.storage.disk import DiskSpec
from repro.storage.migration import MigrationSession
from repro.workloads.generator import uniform_catalog

BITS = 16
N0 = 4
MAX_DISKS = 10


class LifecycleMachine(RuleBasedStateMachine):
    """One server's lifetime under adversarial action sequences."""

    @initialize(
        backend=st.sampled_from(sorted(BACKENDS)),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def boot(self, backend: str, seed: int) -> None:
        self.backend_name = backend
        self.seed = seed
        catalog = uniform_catalog(2, 40, master_seed=seed, bits=BITS)
        spec = DiskSpec(capacity_blocks=50_000, bandwidth_blocks_per_round=16)
        self.spec = spec
        self.journal = ScalingJournal()
        self.server = CMServer(
            catalog, [spec] * N0, bits=BITS, default_spec=spec,
            journal=self.journal, backend=backend,
        )
        self.config = WatchdogConfig(eps=0.05, auto_reset=True)
        self.server.attach_watchdog(
            ExhaustionWatchdog(self.server, self.config)
        )
        self.expected_blocks = self.server.total_blocks
        self.ingested = 0
        self.steps = 0
        self._rebuild_scheduler()

    def _rebuild_scheduler(self) -> None:
        self.scheduler = RoundScheduler(self.server.array)
        for media in self.server.catalog:
            if media.num_blocks:
                self.scheduler.admit(
                    Stream(
                        media.object_id,
                        media,
                        start_block=(media.object_id * 7) % media.num_blocks,
                    )
                )

    def _next_seed(self) -> int:
        self.steps += 1
        return derive_seed(self.seed, self.steps)

    @property
    def can_remove(self) -> bool:
        return (
            self.backend_name != "sequential_checking"
            and self.server.num_disks > N0
        )

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule()
    def serve(self) -> None:
        report = self.scheduler.run_round()
        assert (
            report.requested
            == report.served + report.hiccups + report.queued
        )

    @rule(count=st.sampled_from([1, 1, 2]))
    def scale_up(self, count: int) -> None:
        if self.server.num_disks + count > MAX_DISKS:
            return
        injector = FaultInjector(
            seed=self._next_seed(), transient_rate=0.15, slow_rate=0.05
        )
        OnlineScaler(self.server, self.scheduler).scale_online(
            ScalingOp.add(count), injector=injector
        )

    @precondition(lambda self: self.can_remove)
    @rule(victim=st.integers(min_value=0, max_value=MAX_DISKS - 1))
    def kill_disk(self, victim: int) -> None:
        """Abrupt disk loss, handled as the paper's failure-as-removal."""
        if self.backend_name == "jump_hash":
            victim = self.server.num_disks - 1  # tail-only backend
        else:
            victim = victim % self.server.num_disks
        injector = FaultInjector(
            seed=self._next_seed(), transient_rate=0.15
        )
        OnlineScaler(self.server, self.scheduler).scale_online(
            ScalingOp.remove([victim]), injector=injector
        )

    @precondition(lambda self: self.server.num_disks < MAX_DISKS)
    @rule()
    def revive_disk(self) -> None:
        """Bring a replacement disk in (the revive side of churn)."""
        self.server.scale(ScalingOp.add(1))

    @rule(size=st.integers(min_value=5, max_value=25))
    def ingest(self, size: int) -> None:
        session = IngestSession(
            self.server, f"ingest-{self.ingested}", size
        )
        self.ingested += 1
        while not session.done:
            session.step(10_000)
        self.expected_blocks += size

    @precondition(lambda self: len(self.server.catalog) > 2)
    @rule()
    def remove_newest_object(self) -> None:
        media = max(self.server.catalog, key=lambda m: m.object_id)
        self.expected_blocks -= media.num_blocks
        self.server.remove_object(media.object_id)
        self._rebuild_scheduler()

    @precondition(lambda self: self.backend_name == "scaddar")
    @rule()
    def reshuffle(self) -> None:
        self.server.reshuffle()

    @rule(fraction=st.floats(min_value=0.0, max_value=1.0))
    def crash_and_resume(self, fraction: float) -> None:
        """Kill the process mid-operation; resume must lose nothing."""
        snapshot = snapshot_server(self.server)
        if self.backend_name == "scaddar" and fraction > 0.5:
            pending = self.server.begin_reshuffle()
        elif self.server.num_disks < MAX_DISKS:
            pending = self.server.begin_scale(ScalingOp.add(1))
        elif self.can_remove:
            pending = self.server.begin_scale(
                ScalingOp.remove([self.server.num_disks - 1])
            )
        else:
            return
        session = MigrationSession(
            self.server.array, pending.plan,
            journal=self.journal, op_seq=pending.op_seq,
        )
        if len(pending.plan):
            session.step(
                len(pending.plan),
                max_moves=max(1, int(len(pending.plan) * fraction)),
            )
        del self.server, pending, session  # the crash

        server, resumed, live = resume_server(snapshot, self.journal)
        self.server = server
        assert live is not None
        while not live.done:
            live.step(10_000)
        if isinstance(resumed, PendingReshuffle):
            self.server.finish_reshuffle(resumed)
        else:
            self.server.finish_scale(resumed)
        self.server.attach_watchdog(
            ExhaustionWatchdog(self.server, self.config)
        )
        self._rebuild_scheduler()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def no_block_lost(self) -> None:
        assert self.server.total_blocks == self.expected_blocks

    @invariant()
    def layout_clean(self) -> None:
        report = check_layout(self.server)
        assert report.clean, (
            f"{self.backend_name}: missing={len(report.missing)} "
            f"orphans={len(report.orphans)} "
            f"misplaced={len(report.misplaced)}"
        )


LifecycleTest = LifecycleMachine.TestCase
if os.environ.get("HYPOTHESIS_PROFILE") == "state_machine":
    LifecycleTest.settings = settings.get_profile("state_machine")
else:
    # Short sequences for dev/ci; the soak profile goes deep.
    LifecycleTest.settings = settings(
        max_examples=5, stateful_step_count=15, deadline=None
    )
