"""Unit tests for the heterogeneous logical-disk mapping (Section 6)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.disk import DiskSpec
from repro.storage.hetero import HeterogeneousPool, LogicalMapping, weight_for_spec
from repro.workloads.generator import random_x0s


class TestWeightForSpec:
    def test_proportional(self):
        unit = 4
        assert weight_for_spec(DiskSpec(bandwidth_blocks_per_round=4), unit) == 1
        assert weight_for_spec(DiskSpec(bandwidth_blocks_per_round=9), unit) == 2
        assert weight_for_spec(DiskSpec(bandwidth_blocks_per_round=16), unit) == 4

    def test_minimum_one(self):
        assert weight_for_spec(DiskSpec(bandwidth_blocks_per_round=1), 8) == 1

    def test_invalid_unit(self):
        with pytest.raises(ValueError):
            weight_for_spec(DiskSpec(), 0)


class TestLogicalMapping:
    def test_add_returns_new_indices(self):
        mapping = LogicalMapping()
        assert mapping.add_physical(10, 2) == [0, 1]
        assert mapping.add_physical(11, 3) == [2, 3, 4]
        assert mapping.num_logical == 5

    def test_duplicate_physical_rejected(self):
        mapping = LogicalMapping()
        mapping.add_physical(1, 1)
        with pytest.raises(ValueError):
            mapping.add_physical(1, 2)

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            LogicalMapping().add_physical(1, 0)

    def test_physical_of(self):
        mapping = LogicalMapping()
        mapping.add_physical(10, 2)
        mapping.add_physical(11, 1)
        assert [mapping.physical_of(i) for i in range(3)] == [10, 10, 11]
        with pytest.raises(IndexError):
            mapping.physical_of(3)
        with pytest.raises(IndexError):
            mapping.physical_of(-1)

    def test_logicals_of(self):
        mapping = LogicalMapping()
        mapping.add_physical(10, 2)
        mapping.add_physical(11, 3)
        assert mapping.logicals_of(11) == [2, 3, 4]
        with pytest.raises(KeyError):
            mapping.logicals_of(99)

    def test_remove_compacts(self):
        mapping = LogicalMapping()
        mapping.add_physical(10, 2)
        mapping.add_physical(11, 1)
        mapping.add_physical(12, 2)
        removed = mapping.remove_physical(11)
        assert removed == [2]
        assert mapping.num_logical == 4
        assert mapping.logicals_of(12) == [2, 3]

    def test_remove_unknown(self):
        with pytest.raises(KeyError):
            LogicalMapping().remove_physical(1)

    def test_weight_of(self):
        mapping = LogicalMapping()
        mapping.add_physical(5, 3)
        assert mapping.weight_of(5) == 3
        with pytest.raises(KeyError):
            mapping.weight_of(6)

    @given(weights=st.lists(st.integers(1, 5), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, weights):
        mapping = LogicalMapping()
        for pid, weight in enumerate(weights):
            mapping.add_physical(pid, weight)
        assert mapping.num_logical == sum(weights)
        for pid in range(len(weights)):
            for logical in mapping.logicals_of(pid):
                assert mapping.physical_of(logical) == pid


class TestHeterogeneousPool:
    def test_requires_members(self):
        with pytest.raises(ValueError):
            HeterogeneousPool([])

    def test_logical_count(self):
        pool = HeterogeneousPool([(0, 1), (1, 2), (2, 4)], bits=32)
        assert pool.num_logical_disks == 7
        assert pool.physical_ids == (0, 1, 2)

    def test_block_routing_in_members(self):
        pool = HeterogeneousPool([(0, 2), (1, 3)], bits=32)
        for x0 in random_x0s(500, bits=32, seed=1):
            assert pool.physical_of_block(x0) in (0, 1)

    def test_load_proportional_to_weight(self):
        pool = HeterogeneousPool([(0, 1), (1, 3)], bits=32)
        loads = pool.load_by_physical(random_x0s(40_000, bits=32, seed=2))
        ratio = loads[1] / loads[0]
        assert 2.7 < ratio < 3.3

    def test_add_disk_shifts_proportion(self):
        pool = HeterogeneousPool([(0, 2), (1, 2)], bits=32)
        x0s = random_x0s(20_000, bits=32, seed=3)
        pool.add_disk(2, weight=4)
        loads = pool.load_by_physical(x0s)
        assert loads[2] / len(x0s) == pytest.approx(0.5, abs=0.03)
        assert pool.num_logical_disks == 8

    def test_remove_disk_preserves_routing(self):
        pool = HeterogeneousPool([(0, 2), (1, 2), (2, 1)], bits=32)
        x0s = random_x0s(10_000, bits=32, seed=4)
        pool.remove_disk(1)
        loads = pool.load_by_physical(x0s)
        assert set(loads) == {0, 2}
        assert sum(loads.values()) == len(x0s)
        assert pool.num_logical_disks == 3

    def test_removal_only_moves_evicted_share(self):
        pool = HeterogeneousPool([(0, 2), (1, 2)], bits=32)
        x0s = random_x0s(20_000, bits=32, seed=5)
        before = {x0: pool.physical_of_block(x0) for x0 in x0s}
        pool.remove_disk(1)
        moved = sum(1 for x0 in x0s if before[x0] != pool.physical_of_block(x0))
        evicted = sum(1 for pid in before.values() if pid == 1)
        assert moved == evicted
