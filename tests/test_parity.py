"""Unit tests for parity-group fault tolerance (Section 6 future work)."""

from __future__ import annotations

import pytest

from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.experiments import parity_vs_mirror
from repro.server.parity import (
    ParityPlacement,
    ParityPlacementError,
    recovery_reads,
    survives_single_failure,
)
from repro.workloads.generator import random_x0s


def make_placement(n0=8, k=4, ops=0):
    mapper = ScaddarMapper(n0=n0, bits=32)
    for __ in range(ops):
        mapper.apply(ScalingOp.add(1))
    return ParityPlacement(mapper, k=k)


class TestParityPlacement:
    def test_k_validation(self):
        mapper = ScaddarMapper(n0=8, bits=32)
        with pytest.raises(ValueError):
            ParityPlacement(mapper, k=1)

    def test_too_few_disks_rejected(self):
        placement = make_placement(n0=4, k=4)
        with pytest.raises(ParityPlacementError):
            placement.build_layout(random_x0s(100, bits=32, seed=1))

    def test_groups_have_k_members(self):
        placement = make_placement()
        layout = placement.build_layout(random_x0s(5_000, bits=32, seed=2))
        assert all(len(g.members) == 4 for g in layout.groups)

    def test_distinct_disk_rule(self):
        placement = make_placement()
        layout = placement.build_layout(random_x0s(5_000, bits=32, seed=3))
        assert survives_single_failure(layout)
        for group in layout.groups:
            disks = {*group.member_disks, group.parity_disk}
            assert len(disks) == 5  # k members + parity, all distinct

    def test_every_block_grouped_or_reported(self):
        placement = make_placement()
        population = random_x0s(5_003, bits=32, seed=4)
        layout = placement.build_layout(population)
        grouped = sum(len(g.members) for g in layout.groups)
        assert grouped + len(layout.ungrouped) == len(population)
        # The greedy tail is tiny relative to the population.
        assert len(layout.ungrouped) < 2 * layout.k

    def test_storage_overhead(self):
        placement = make_placement(k=4)
        layout = placement.build_layout(random_x0s(4_000, bits=32, seed=5))
        assert layout.storage_overhead == pytest.approx(0.25, abs=0.01)

    def test_parity_disk_is_deterministic(self):
        placement = make_placement()
        used = frozenset({0, 2, 4, 6})
        assert placement.parity_disk_of(7, used) == placement.parity_disk_of(7, used)
        assert placement.parity_disk_of(7, used) not in used

    def test_parity_disk_full_group_rejected(self):
        placement = make_placement(n0=4, k=2)
        with pytest.raises(ParityPlacementError):
            placement.parity_disk_of(0, frozenset({0, 1, 2, 3}))

    def test_survives_after_scaling(self):
        placement = make_placement(n0=6, k=4, ops=3)
        layout = placement.build_layout(random_x0s(5_000, bits=32, seed=6))
        assert survives_single_failure(layout)


class TestRecoveryReads:
    def test_spread_over_survivors(self):
        placement = make_placement()
        layout = placement.build_layout(random_x0s(8_000, bits=32, seed=7))
        reads = recovery_reads(layout, failed_disk=0)
        assert 0 not in reads
        assert len(reads) == 7
        mean = sum(reads.values()) / len(reads)
        assert max(reads.values()) / mean < 1.25  # nearly even

    def test_untouched_groups_cost_nothing(self):
        placement = make_placement(n0=8, k=2)
        layout = placement.build_layout(random_x0s(200, bits=32, seed=8))
        total_groups_touching_0 = sum(
            1
            for g in layout.groups
            if 0 in (*g.member_disks, g.parity_disk)
        )
        reads = recovery_reads(layout, failed_disk=0)
        # Each touched group contributes exactly k(=2) survivor reads.
        assert sum(reads.values()) == 2 * total_groups_touching_0


class TestExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return parity_vs_mirror.run_parity_vs_mirror(num_blocks=8_000)

    def test_both_schemes_safe(self, result):
        assert all(r.survives_single_failure for r in result.rows)

    def test_parity_cheaper_storage(self, result):
        mirror, parity = result.rows
        assert parity.storage_overhead < mirror.storage_overhead / 3

    def test_parity_spreads_recovery(self, result):
        mirror, parity = result.rows
        assert parity.recovery_skew < mirror.recovery_skew

    def test_mirror_cheaper_degraded_reads(self, result):
        mirror, parity = result.rows
        assert mirror.degraded_read_ios < parity.degraded_read_ios

    def test_report_renders(self, result):
        assert "parity" in parity_vs_mirror.report(result)
