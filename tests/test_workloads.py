"""Unit tests for workload and schedule generators."""

from __future__ import annotations

import pytest

from repro.core.operations import ScalingOp
from repro.workloads.generator import (
    apportion_streams,
    lognormal_catalog,
    make_blocks,
    random_x0s,
    uniform_catalog,
    zipf_popularity,
)
from repro.workloads.schedules import (
    additions,
    fig1_schedule,
    mixed_schedule,
    random_removals,
    section5_schedule,
)


class TestCatalogs:
    def test_uniform_catalog_shape(self):
        catalog = uniform_catalog(5, 100, bits=32)
        assert len(catalog) == 5
        assert catalog.total_blocks == 500
        assert all(o.num_blocks == 100 for o in catalog)

    def test_uniform_catalog_validation(self):
        with pytest.raises(ValueError):
            uniform_catalog(0, 100)

    def test_uniform_catalog_reproducible(self):
        a = uniform_catalog(3, 10, master_seed=1, bits=32)
        b = uniform_catalog(3, 10, master_seed=1, bits=32)
        assert [blk.x0 for blk in a.all_blocks()] == [
            blk.x0 for blk in b.all_blocks()
        ]

    def test_lognormal_catalog_sizes_vary(self):
        catalog = lognormal_catalog(50, median_blocks=100, master_seed=2)
        sizes = [o.num_blocks for o in catalog]
        assert min(sizes) >= 1
        assert len(set(sizes)) > 10

    def test_lognormal_validation(self):
        with pytest.raises(ValueError):
            lognormal_catalog(0)
        with pytest.raises(ValueError):
            lognormal_catalog(5, median_blocks=0)

    def test_make_blocks(self):
        catalog = uniform_catalog(2, 5, bits=32)
        assert len(make_blocks(catalog)) == 10


class TestRandomX0s:
    def test_in_range(self):
        values = random_x0s(1_000, bits=16)
        assert all(0 <= v < 2**16 for v in values)

    def test_reproducible(self):
        assert random_x0s(50, seed=7) == random_x0s(50, seed=7)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            random_x0s(-1)


class TestZipf:
    def test_sums_to_one(self):
        probs = zipf_popularity(100)
        assert sum(probs) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        probs = zipf_popularity(20)
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_exponent_zero_is_uniform(self):
        probs = zipf_popularity(4, exponent=0)
        assert probs == pytest.approx([0.25] * 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_popularity(0)
        with pytest.raises(ValueError):
            zipf_popularity(5, exponent=-1)


class TestApportionStreams:
    def test_sums_exactly_to_total(self):
        counts = apportion_streams(48, zipf_popularity(7))
        assert sum(counts) == 48

    def test_tracks_weights(self):
        counts = apportion_streams(100, [3.0, 1.0])
        assert counts == [75, 25]

    def test_largest_remainders_win_leftovers(self):
        # Exact shares 3.5 / 3.5 / 3.0: the one leftover stream goes to
        # the largest remainder, ties broken by lowest index.
        assert apportion_streams(10, [3.5, 3.5, 3.0]) == [4, 3, 3]

    def test_zero_total_and_zero_weights(self):
        assert apportion_streams(0, [1.0, 2.0]) == [0, 0]
        assert apportion_streams(5, [0.0, 1.0]) == [0, 5]

    def test_validation(self):
        with pytest.raises(ValueError):
            apportion_streams(-1, [1.0])
        with pytest.raises(ValueError):
            apportion_streams(3, [])
        with pytest.raises(ValueError):
            apportion_streams(3, [1.0, -0.5])
        with pytest.raises(ValueError):
            apportion_streams(3, [0.0, 0.0])


class TestSchedules:
    def test_additions(self):
        sched = additions(3, group_size=2)
        assert len(sched) == 3
        assert all(op == ScalingOp.add(2) for op in sched)

    def test_additions_validation(self):
        with pytest.raises(ValueError):
            additions(-1)

    def test_named_schedules(self):
        assert fig1_schedule() == [ScalingOp.add(1)] * 2
        assert section5_schedule() == [ScalingOp.add(1)] * 8

    def test_random_removals_valid_indices(self):
        n = 12
        for op in random_removals(6, n0=n, seed=3):
            assert all(0 <= d < n for d in op.removed)
            n -= len(op.removed)
        assert n == 6

    def test_random_removals_floor(self):
        with pytest.raises(ValueError):
            random_removals(5, n0=6, min_disks=2)

    def test_random_removals_reproducible(self):
        assert random_removals(4, 10, seed=5) == random_removals(4, 10, seed=5)

    def test_mixed_schedule_respects_floor(self):
        sched = mixed_schedule(30, n0=4, seed=1, add_probability=0.3, min_disks=3)
        n = 4
        for op in sched:
            if op.kind == "remove":
                assert all(0 <= d < n for d in op.removed)
            n = op.next_disk_count(n)
            assert n >= 3

    def test_mixed_schedule_validation(self):
        with pytest.raises(ValueError):
            mixed_schedule(5, n0=4, add_probability=1.5)
        with pytest.raises(ValueError):
            mixed_schedule(5, n0=1, min_disks=2)

    def test_mixed_all_adds_when_probability_one(self):
        sched = mixed_schedule(10, n0=4, add_probability=1.0)
        assert all(op.kind == "add" for op in sched)
