"""Tests for the weighted straw2 pool and the hetero-approach comparison."""

from __future__ import annotations

import pytest

from repro.experiments.heterogeneous import run_hetero_comparison
from repro.placement.weighted_straw import WeightedStrawPool
from repro.workloads.generator import random_x0s


class TestWeightedStrawPool:
    def test_requires_members(self):
        with pytest.raises(ValueError):
            WeightedStrawPool([])

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            WeightedStrawPool([(0, 0.0)])

    def test_rejects_duplicate(self):
        with pytest.raises(ValueError):
            WeightedStrawPool([(0, 1.0), (0, 2.0)])

    def test_weight_lookup(self):
        pool = WeightedStrawPool([(0, 1.0), (1, 2.5)])
        assert pool.weight_of(1) == 2.5
        with pytest.raises(KeyError):
            pool.weight_of(7)

    def test_load_proportional_to_weight(self):
        pool = WeightedStrawPool([(0, 1.0), (1, 3.0)])
        loads = pool.load_by_physical(random_x0s(40_000, bits=32, seed=1))
        assert 2.7 < loads[1] / loads[0] < 3.3

    def test_add_disk_moves_only_to_it(self):
        pool = WeightedStrawPool([(0, 1.0), (1, 1.0)])
        x0s = random_x0s(5_000, bits=32, seed=2)
        before = {x0: pool.physical_of_block(x0) for x0 in x0s}
        pool.add_disk(2, 2.0)
        for x0 in x0s:
            home = pool.physical_of_block(x0)
            if home != before[x0]:
                assert home == 2

    def test_remove_disk_moves_only_its_blocks(self):
        pool = WeightedStrawPool([(0, 1.0), (1, 1.0), (2, 2.0)])
        x0s = random_x0s(5_000, bits=32, seed=3)
        before = {x0: pool.physical_of_block(x0) for x0 in x0s}
        pool.remove_disk(1)
        moved = sum(1 for x0 in x0s if pool.physical_of_block(x0) != before[x0])
        evicted = sum(1 for home in before.values() if home == 1)
        assert moved == evicted

    def test_cannot_remove_last(self):
        pool = WeightedStrawPool([(0, 1.0)])
        with pytest.raises(ValueError):
            pool.remove_disk(0)

    def test_remove_unknown(self):
        pool = WeightedStrawPool([(0, 1.0), (1, 1.0)])
        with pytest.raises(KeyError):
            pool.remove_disk(9)

    def test_operations_counter(self):
        pool = WeightedStrawPool([(0, 1.0), (1, 1.0)])
        pool.add_disk(2, 1.0)
        pool.remove_disk(0)
        assert pool.operations == 2


class TestApproachComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_hetero_comparison(num_blocks=15_000)

    def test_both_approaches_present(self, rows):
        assert len(rows) == 2

    def test_both_proportional(self, rows):
        for row in rows:
            assert row.max_share_error_initial < 0.06
            assert row.max_share_error_final < 0.06

    def test_both_movement_optimal(self, rows):
        for row in rows:
            assert abs(row.add_moved_fraction - row.add_optimal) < 0.02
            assert abs(row.remove_moved_fraction - row.remove_optimal) < 0.02
