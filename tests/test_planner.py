"""Tests for the capacity planner — cross-validated against the mapper."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import RandomnessExhaustedError
from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.server.planner import (
    GrowthForecast,
    minimum_bits,
    plan_capacity,
)


class TestGrowthForecast:
    def test_validation(self):
        with pytest.raises(ValueError):
            GrowthForecast(n0=0, operations=1)
        with pytest.raises(ValueError):
            GrowthForecast(n0=4, operations=-1)
        with pytest.raises(ValueError):
            GrowthForecast(n0=4, operations=1, group_size=0)

    def test_trajectory(self):
        forecast = GrowthForecast(n0=4, operations=3, group_size=2)
        assert forecast.disk_counts() == [4, 6, 8, 10]


class TestPlanCapacity:
    def test_section5_configuration(self):
        """The paper's b=32 eps=5% case: 8 ops fit, the 9th reshuffles."""
        fits = plan_capacity(GrowthForecast(n0=4, operations=8), bits=32)
        assert fits.fits_without_reshuffle
        overflow = plan_capacity(GrowthForecast(n0=4, operations=9), bits=32)
        assert overflow.reshuffles_needed == 1
        assert overflow.cycle_lengths[0] == 8

    def test_matches_mapper_guard_exactly(self):
        """The plan's first cycle length equals the number of operations
        the live mapper accepts before raising."""
        for n0 in (3, 4, 8):
            plan = plan_capacity(
                GrowthForecast(n0=n0, operations=30), bits=32
            )
            mapper = ScaddarMapper(n0=n0, bits=32)
            accepted = 0
            try:
                for __ in range(30):
                    mapper.apply(ScalingOp.add(1), eps=0.05)
                    accepted += 1
            except RandomnessExhaustedError:
                pass
            assert plan.cycle_lengths[0] == accepted

    def test_traffic_accounts_reshuffles(self):
        small = plan_capacity(GrowthForecast(n0=4, operations=8), bits=32)
        large = plan_capacity(GrowthForecast(n0=4, operations=9), bits=32)
        # The 9th op costs its z_j plus a full reshuffle (~(N-1)/N).
        assert large.expected_traffic > small.expected_traffic + 0.9

    def test_wider_bits_fewer_reshuffles(self):
        forecast = GrowthForecast(n0=4, operations=30)
        narrow = plan_capacity(forecast, bits=32)
        wide = plan_capacity(forecast, bits=64)
        assert wide.reshuffles_needed < narrow.reshuffles_needed

    def test_cycles_sum_to_operations(self):
        plan = plan_capacity(GrowthForecast(n0=4, operations=25), bits=32)
        assert sum(plan.cycle_lengths) == 25

    def test_impossible_width_raises(self):
        with pytest.raises(ValueError):
            plan_capacity(GrowthForecast(n0=100, operations=1), bits=4)

    def test_parameter_validation(self):
        forecast = GrowthForecast(n0=4, operations=1)
        with pytest.raises(ValueError):
            plan_capacity(forecast, bits=0)
        with pytest.raises(ValueError):
            plan_capacity(forecast, bits=32, eps=0)

    @given(
        n0=st.integers(2, 10),
        operations=st.integers(0, 20),
        group=st.integers(1, 3),
        bits=st.integers(16, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_plan_well_formed_property(self, n0, operations, group, bits):
        forecast = GrowthForecast(n0=n0, operations=operations, group_size=group)
        try:
            plan = plan_capacity(forecast, bits=bits)
        except ValueError:
            return  # width too small for even one op — allowed
        assert sum(plan.cycle_lengths) == operations
        assert plan.reshuffles_needed == len(plan.cycle_lengths) - 1
        assert plan.expected_traffic >= 0.0


class TestMinimumBits:
    def test_paper_case(self):
        """8 ops from 4 disks need ~32 bits at eps=5%."""
        bits = minimum_bits(GrowthForecast(n0=4, operations=8))
        assert 30 <= bits <= 32
        plan = plan_capacity(GrowthForecast(n0=4, operations=8), bits=bits)
        assert plan.fits_without_reshuffle

    def test_minimality(self):
        forecast = GrowthForecast(n0=4, operations=8)
        bits = minimum_bits(forecast)
        smaller = plan_capacity(forecast, bits=bits - 1)
        assert not smaller.fits_without_reshuffle

    def test_huge_forecast_overflows_64(self):
        assert minimum_bits(GrowthForecast(n0=16, operations=60)) == 65
