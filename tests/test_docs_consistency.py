"""Docs-vs-code consistency: the documentation must track the registry.

These tests keep README / DESIGN / EXPERIMENTS honest as experiments and
modules are added: every CLI experiment must be documented, every bench
file must exist, and the quick-parameter table must stay in sync.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import QUICK_KWARGS
from repro.experiments import EXPERIMENTS

REPO = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text()


class TestRegistryIntegrity:
    def test_quick_kwargs_cover_every_experiment(self):
        assert set(QUICK_KWARGS) == set(EXPERIMENTS)

    def test_every_experiment_has_run_and_report(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.report)

    def test_experiment_modules_have_docstrings(self):
        for name, module in EXPERIMENTS.items():
            assert module.__doc__, f"{name} lacks a module docstring"
            assert len(module.__doc__) > 100, f"{name} docstring too thin"


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return read("README.md")

    def test_mentions_every_cli_experiment(self, readme):
        for name in EXPERIMENTS:
            assert f"scaddar {name}" in readme, f"README missing {name}"

    def test_links_companion_docs(self, readme):
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "docs/API.md",
                    "docs/PAPER_MAP.md", "docs/THEORY.md",
                    "docs/OPERATIONS.md"):
            assert doc in readme

    def test_companion_docs_exist(self, readme):
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "CONTRIBUTING.md",
                    "CHANGELOG.md", "docs/API.md", "docs/PAPER_MAP.md",
                    "docs/THEORY.md", "docs/OPERATIONS.md"):
            assert (REPO / doc).exists(), f"{doc} missing"

    def test_lists_every_example(self, readme):
        for example in sorted((REPO / "examples").glob("*.py")):
            assert example.name in readme, f"README missing {example.name}"


class TestDesign:
    @pytest.fixture(scope="class")
    def design(self):
        return read("DESIGN.md")

    def test_confirms_paper_identity(self, design):
        assert "SCADDAR" in design
        assert "ICDE 2002" in design

    def test_references_every_bench_file(self, design):
        for bench in sorted((REPO / "benchmarks").glob("bench_*.py")):
            # Scale/micro/tooling/quality benches are engineering
            # telemetry, not paper artifacts; DESIGN indexes artifacts.
            if bench.stem in (
                "bench_core_micro",
                "bench_engine",
                "bench_obs_overhead",
                "bench_scale",
                "bench_ops_tooling",
                "bench_prng_quality",
            ):
                continue
            assert bench.name in design, f"DESIGN.md missing {bench.name}"

    def test_bench_files_exist_for_design_references(self, design):
        for line in design.splitlines():
            if "benchmarks/bench_" in line:
                for token in line.split("`"):
                    if token.startswith("benchmarks/bench_"):
                        assert (REPO / token).exists(), f"{token} missing"


class TestExperimentsDoc:
    @pytest.fixture(scope="class")
    def doc(self):
        return read("EXPERIMENTS.md")

    def test_mentions_every_cli_command(self, doc):
        for name in EXPERIMENTS:
            # fig1/cov-curve etc. appear as `scaddar <name>` commands.
            assert f"scaddar {name}" in doc, f"EXPERIMENTS.md missing {name}"

    def test_paper_headline_numbers_present(self, doc):
        for fact in ("k = 13", "exactly 8", "{1, 3, 4}", "0.25"):
            assert fact in doc, f"EXPERIMENTS.md missing headline fact {fact!r}"


class TestBenchmarks:
    #: Pure microbenchmarks: pytest-benchmark's timing table IS the output.
    MICRO = {"bench_core_micro.py", "bench_ops_tooling.py"}

    def test_every_artifact_bench_prints_its_report(self):
        """Artifact benches must surface the regenerated table, not just
        assert; pure timing benches are exempt."""
        for bench in sorted((REPO / "benchmarks").glob("bench_*.py")):
            if bench.name in self.MICRO:
                continue
            text = bench.read_text()
            if "report(" in text or "print(" in text:
                continue
            pytest.fail(f"{bench.name} produces no visible output")
