"""End-to-end integration tests across the whole stack.

These exercise the paper's full story: load a server, stream from it,
scale repeatedly (both directions), exhaust the randomness budget,
reshuffle, and keep going — asserting the AF()/physical-inventory
agreement and the load-balance invariants at every step.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import coefficient_of_variation
from repro.core.operations import OperationLog, ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.server.cmserver import CMServer
from repro.server.online import OnlineScaler
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream
from repro.storage.block import BlockId
from repro.storage.disk import DiskSpec
from repro.workloads.generator import uniform_catalog
from repro.workloads.schedules import mixed_schedule


def full_af_check(server):
    for media in server.catalog:
        for index in range(media.num_blocks):
            assert server.block_location(media.object_id, index) == (
                server.array.home_of(BlockId(media.object_id, index))
            )


class TestServerLifecycle:
    def test_long_mixed_schedule(self):
        catalog = uniform_catalog(6, 300, master_seed=0x11, bits=32)
        spec = DiskSpec(capacity_blocks=100_000)
        server = CMServer(catalog, [spec] * 5, bits=32, default_spec=spec)
        for op in mixed_schedule(12, n0=5, seed=9, min_disks=3):
            server.scale(op)
        full_af_check(server)
        assert sum(server.load_vector()) == 1_800
        assert coefficient_of_variation(server.load_vector()) < 0.3

    def test_budget_exhaustion_then_reshuffle_cycle(self):
        catalog = uniform_catalog(4, 250, master_seed=0x22, bits=32)
        spec = DiskSpec(capacity_blocks=100_000)
        server = CMServer(catalog, [spec] * 4, bits=32, default_spec=spec)
        eps = 0.05
        operations_done = 0
        for __ in range(2):  # two full budget cycles
            while server.mapper.can_apply(ScalingOp.add(1), eps):
                server.scale(ScalingOp.add(1), eps=eps)
                operations_done += 1
            server.reshuffle()
            assert server.mapper.num_operations == 0
        assert operations_done >= 8
        full_af_check(server)

    def test_streaming_through_scaling(self):
        catalog = uniform_catalog(3, 200, master_seed=0x33, bits=32)
        spec = DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=8)
        server = CMServer(catalog, [spec] * 4, bits=32, default_spec=spec)
        scheduler = RoundScheduler(server.array)
        streams = [Stream(i, catalog.get(i % 3), start_block=i * 11) for i in range(6)]
        for stream in streams:
            scheduler.admit(stream)
        scaler = OnlineScaler(server, scheduler)
        report_add = scaler.scale_online(ScalingOp.add(2))
        report_remove = scaler.scale_online(ScalingOp.remove([0]))
        assert report_add.hiccups == 0
        assert report_remove.hiccups == 0
        assert server.num_disks == 5
        # Streams made progress during scaling.
        assert all(s.blocks_consumed > 0 for s in streams)
        full_af_check(server)

    def test_operation_log_survives_serialization(self):
        """A restarted server (same seeds + replayed log) locates every
        block exactly where the original placed it — the paper's claim
        that only the op log and seeds are needed."""
        catalog = uniform_catalog(3, 150, master_seed=0x44, bits=32)
        spec = DiskSpec(capacity_blocks=100_000)
        server = CMServer(catalog, [spec] * 4, bits=32, default_spec=spec)
        for op in (ScalingOp.add(2), ScalingOp.remove([1]), ScalingOp.add(1)):
            server.scale(op)

        payload = server.mapper.log.to_json()
        restored_log = OperationLog.from_json(payload)
        restored = ScaddarMapper(n0=restored_log.n0, bits=32)
        for op in restored_log:
            restored.apply(op)

        fresh_catalog = uniform_catalog(3, 150, master_seed=0x44, bits=32)
        for media in fresh_catalog:
            for block in media.blocks():
                assert restored.disk_of(block.x0) == server.mapper.disk_of(block.x0)

    def test_capacity_pressure_is_loud(self):
        catalog = uniform_catalog(1, 50, master_seed=0x55, bits=32)
        tiny = DiskSpec(capacity_blocks=10)
        from repro.storage.array import PlacementConflictError

        with pytest.raises(PlacementConflictError):
            CMServer(catalog, [tiny] * 2, bits=32)


class TestCrossPolicyAgreement:
    def test_scaddar_policy_and_server_agree(self):
        """The standalone policy and the full server compute identical
        logical placements for the same schedule."""
        from repro.placement import ScaddarPolicy

        catalog = uniform_catalog(2, 200, master_seed=0x66, bits=32)
        spec = DiskSpec(capacity_blocks=100_000)
        server = CMServer(catalog, [spec] * 4, bits=32, default_spec=spec)
        policy = ScaddarPolicy(4, bits=32)
        schedule = [ScalingOp.add(1), ScalingOp.remove([2]), ScalingOp.add(2)]
        for op in schedule:
            server.scale(op)
            policy.apply(op)
        for media in catalog:
            for block in media.blocks():
                logical = policy.disk_of(block)
                assert server.array.physical_at(logical) == server.block_location(
                    media.object_id, block.index
                )
