"""Unit tests for per-object sequences (``X0(i)``)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prng.sequence import GENERATOR_FAMILIES, ObjectSequence, make_generator


class TestMakeGenerator:
    @pytest.mark.parametrize("family", sorted(GENERATOR_FAMILIES))
    def test_known_families(self, family):
        bits = 32 if family in ("lcg48", "pcg32") else 64
        gen = make_generator(family, seed=3, bits=bits)
        assert gen.family == family

    def test_unknown_family_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="splitmix64"):
            make_generator("md5", seed=1)


class TestObjectSequence:
    def test_x0_reproducible(self):
        a = ObjectSequence(seed=42, bits=32)
        b = ObjectSequence(seed=42, bits=32)
        assert [a.x0(i) for i in range(20)] == [b.x0(i) for i in range(20)]

    def test_prefix_matches_indexed_access(self):
        seq = ObjectSequence(seed=11, bits=32)
        assert seq.prefix(25) == [seq.x0(i) for i in range(25)]

    def test_iteration_matches_prefix(self):
        seq = ObjectSequence(seed=5, bits=48)
        assert list(itertools.islice(iter(seq), 30)) == seq.prefix(30)

    def test_different_seeds_different_streams(self):
        assert ObjectSequence(seed=1).prefix(10) != ObjectSequence(seed=2).prefix(10)

    def test_values_in_range(self):
        seq = ObjectSequence(seed=9, bits=16)
        assert all(0 <= v <= seq.r_max for v in seq.prefix(500))
        assert seq.r_max == (1 << 16) - 1

    def test_prefix_negative_rejected(self):
        with pytest.raises(ValueError):
            ObjectSequence(seed=1).prefix(-1)

    def test_prefix_zero_is_empty(self):
        assert ObjectSequence(seed=1).prefix(0) == []

    def test_bad_family_fails_at_construction(self):
        with pytest.raises(KeyError):
            ObjectSequence(seed=1, family="nope")

    def test_lcg_family_supported(self):
        seq = ObjectSequence(seed=17, bits=32, family="lcg48")
        assert seq.prefix(5) == [seq.x0(i) for i in range(5)]

    def test_repr_mentions_seed_and_family(self):
        text = repr(ObjectSequence(seed=7, bits=32, family="splitmix64"))
        assert "seed=7" in text
        assert "splitmix64" in text

    @given(seed=st.integers(0, 2**32), n=st.integers(0, 64))
    @settings(max_examples=40, deadline=None)
    def test_prefix_length_property(self, seed, n):
        assert len(ObjectSequence(seed=seed, bits=32).prefix(n)) == n
