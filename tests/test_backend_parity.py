"""Backend-refactor parity: the SCADDAR backend is bit-identical to the
pre-refactor engine path.

The server stack used to call the mapper/engine directly; it now goes
through :class:`~repro.placement.backends.ScaddarBackend`.  These
property tests pin the refactor's contract over randomized add/remove
schedules: every block location and every migration plan produced by the
backend-driven :class:`CMServer` equals what an independently maintained
:class:`ScaddarMapper` + :class:`PlacementEngine` (the old code path)
computes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import PlacementEngine
from repro.core.scaddar import ScaddarMapper
from repro.server.cmserver import CMServer
from repro.storage.disk import DiskSpec
from repro.storage.migration import MigrationSession
from repro.workloads.generator import uniform_catalog

BITS = 32


@st.composite
def server_schedules(draw, n0_range=(3, 6), max_ops=4):
    """A valid schedule of adds and single removals keeping N >= 2."""
    n0 = draw(st.integers(*n0_range))
    ops = []
    n = n0
    for __ in range(draw(st.integers(1, max_ops))):
        if n > 2 and draw(st.booleans()):
            victims = sorted(
                draw(
                    st.sets(
                        st.integers(0, n - 1),
                        min_size=1,
                        max_size=min(2, n - 2),
                    )
                )
            )
            ops.append(("remove", victims))
            n -= len(victims)
        else:
            count = draw(st.integers(1, 3))
            ops.append(("add", count))
            n += count
    return n0, ops


def _to_op(entry):
    from repro.core.operations import ScalingOp

    kind, arg = entry
    return ScalingOp.add(arg) if kind == "add" else ScalingOp.remove(arg)


class TestScaddarBackendParity:
    @given(spec=server_schedules())
    @settings(max_examples=25, deadline=None)
    def test_locations_and_plans_match_engine_path(self, spec):
        n0, entries = spec
        catalog = uniform_catalog(2, 40, master_seed=n0, bits=BITS)
        server = CMServer(catalog, [DiskSpec()] * n0, bits=BITS)
        assert server.backend.name == "scaddar"

        # The reference: a mapper/engine pair maintained independently,
        # exactly as the pre-backend server did.
        mapper = ScaddarMapper(n0=n0, bits=BITS)

        for entry in entries:
            op = _to_op(entry)
            # Capture the population in the server's own iteration order
            # (what begin_scale batches) before mutating anything.
            ids = list(server._x0)
            x0s = np.fromiter(
                server._x0.values(), dtype=np.uint64, count=len(ids)
            )
            sources = {bid: server.array.home_of(bid) for bid in ids}

            pending = server.begin_scale(op)

            mapper.apply(op)
            engine = PlacementEngine(mapper.log)
            indices, __, targets = engine.redistribution_moves_batch(x0s)
            if op.kind == "add":
                table = list(server.array.physical_ids)
            else:
                table = server.array.survivors_after_removal(op.removed)
            expected = set()
            for i, t in zip(indices.tolist(), targets.tolist()):
                bid = ids[i]
                if sources[bid] != table[t]:
                    expected.add((bid, sources[bid], table[t]))
            actual = {
                (m.block_id, m.source_physical, m.target_physical)
                for m in pending.plan.moves
            }
            assert actual == expected

            session = MigrationSession(server.array, pending.plan)
            while not session.done:
                session.step(len(pending.plan) + 1)
            server.finish_scale(pending)

            # Location parity: backend vs scalar reference, block by block.
            for bid, x0 in server._x0.items():
                assert server.backend.locate_one(bid, x0) == mapper.disk_of(x0)

    @given(spec=server_schedules(max_ops=3))
    @settings(max_examples=15, deadline=None)
    def test_block_locations_match_scalar_reference(self, spec):
        n0, entries = spec
        catalog = uniform_catalog(2, 25, master_seed=n0 + 99, bits=BITS)
        server = CMServer(catalog, [DiskSpec()] * n0, bits=BITS)
        mapper = ScaddarMapper(n0=n0, bits=BITS)
        for entry in entries:
            op = _to_op(entry)
            server.scale(op)
            mapper.apply(op)
        table = server.array.physical_ids
        for media in server.catalog:
            locations = server.block_locations(media.object_id)
            reference = [
                table[mapper.disk_of(media.block(i).x0)]
                for i in range(media.num_blocks)
            ]
            assert locations == reference
