"""Tests for the metrics collector."""

from __future__ import annotations

import pytest

from repro.server.cmserver import CMServer
from repro.server.metrics import MetricsCollector
from repro.server.scheduler import RoundReport
from repro.server.simulation import ServerSimulation
from repro.storage.disk import DiskSpec
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.generator import uniform_catalog


def sample_report(index=0, requested=5, served=4):
    return RoundReport(
        round_index=index,
        requested=requested,
        served=served,
        hiccups=requested - served,
        load_by_physical={0: 3, 1: 2},
        spare_by_physical={0: 1, 1: 2},
    )


class TestCollector:
    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector().summary()

    def test_record_and_summarize(self):
        collector = MetricsCollector()
        collector.record(sample_report(0))
        collector.record(sample_report(1, requested=8, served=8))
        summary = collector.summary()
        assert summary.rounds == 2
        assert summary.total_requested == 13
        assert summary.total_served == 12
        assert summary.total_hiccups == 1
        assert summary.hiccup_rate == pytest.approx(1 / 13)
        assert summary.mean_peak_queue == 3.0
        assert summary.mean_spare_bandwidth == 3.0

    def test_load_cov_optional(self):
        collector = MetricsCollector()
        collector.record(sample_report(), load_vector=[10, 10, 10])
        collector.record(sample_report(1))
        assert collector.samples[0].load_cov == 0.0
        assert collector.samples[1].load_cov is None

    def test_csv_roundtrip(self, tmp_path):
        collector = MetricsCollector()
        collector.record(sample_report(), load_vector=[5, 7])
        path = tmp_path / "metrics.csv"
        text = collector.to_csv(path)
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert lines[0].startswith("round,")
        assert len(lines) == 2

    def test_len(self):
        collector = MetricsCollector()
        assert len(collector) == 0
        collector.record(sample_report())
        assert len(collector) == 1


class TestSimulationIntegration:
    def test_simulation_feeds_collector(self):
        catalog = uniform_catalog(3, 50, master_seed=0x3E7, bits=32)
        spec = DiskSpec(capacity_blocks=50_000, bandwidth_blocks_per_round=4)
        server = CMServer(catalog, [spec] * 3, bits=32, default_spec=spec)
        collector = MetricsCollector()
        sim = ServerSimulation(
            server, ArrivalProcess(catalog, 0.3, seed=2), metrics=collector
        )
        summary = sim.run(100)
        assert len(collector) == 100
        assert collector.summary().total_hiccups == summary.hiccups
        # Every sample has a load CoV since the simulation passes vectors.
        assert all(s.load_cov is not None for s in collector.samples)
