"""Integration smoke tests: every example runs, doctests pass, the
markdown report generator covers every experiment."""

from __future__ import annotations

import doctest
import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Every example script and roughly how long it may take (sanity only).
EXAMPLE_SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_examples_exist(self):
        assert len(EXAMPLE_SCRIPTS) >= 9
        assert "quickstart.py" in EXAMPLE_SCRIPTS

    @pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
    def test_example_runs_clean(self, script, capsys):
        """Each example executes end-to-end without raising."""
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
        out = capsys.readouterr().out
        assert out.strip()  # every example narrates its result


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.core.scaddar",
            "repro.prng.sequence",
            "repro.storage.array",
            "repro.storage.hetero",
            "repro.server.cmserver",
        ],
    )
    def test_module_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0


class TestMarkdownReport:
    def test_report_covers_every_experiment(self):
        from repro.cli import render_markdown_report
        from repro.experiments import EXPERIMENTS

        document = render_markdown_report(quick=True)
        for name in EXPERIMENTS:
            assert f"## {name}" in document
        assert document.startswith("# SCADDAR reproduction")
        # Spot-check a few headline numbers survived into the document.
        assert "paper: 8" in document  # cov-curve budget
        assert "disks 0, 2 ignored" in document  # fig1
