"""Vectorized-scheduler parity: batched round planning is bit-identical
to the scalar reference loop.

The scalar paths in :mod:`repro.server.scheduler` are the semantic
oracle; these property tests pin the vectorized planner against them
over randomized stream sets, backends, fault schedules, disk health
states, and protection schemes — comparing :class:`RoundReport`
sequences, the per-stream hiccup ledger, the planner's cumulative
:class:`ReadStats`, final stream states, and the seeded obs event
sequence (``deterministic_view``).

Physical disk ids come from a process-global counter, so two identical
stacks built in one process label the same logical disk differently;
comparisons normalize dict keys to logical indices first.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Obs
from repro.server.cmserver import CMServer
from repro.server.faults import FaultInjector
from repro.server.reads import build_degraded_stack
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream
from repro.storage.disk import DiskSpec
from repro.workloads.generator import uniform_catalog

BITS = 32
BACKENDS = ("scaddar", "jump_hash", "consistent_hash", "directory")


def normalized_report(report, array):
    """Report fields with physical-id dict keys mapped to logical order."""
    logical = {pid: i for i, pid in enumerate(array.physical_ids)}
    fields = dict(report.__dict__)
    for key in ("load_by_physical", "spare_by_physical", "health_by_physical"):
        fields[key] = {
            logical.get(pid, -1): value for pid, value in fields[key].items()
        }
    return fields


def normalized_stats(stats, array):
    """ReadStats fields with per-primary counters keyed logically."""
    logical = {pid: i for i, pid in enumerate(array.physical_ids)}
    fields = dict(stats.__dict__)
    for key in ("hiccups_by_primary", "failovers_by_primary"):
        fields[key] = {
            logical.get(pid, -1): value
            for pid, value in dict(fields[key]).items()
        }
    return fields


def stream_snapshot(scheduler):
    return [
        (s.stream_id, s.position, s.state, s.blocks_consumed, s.stall_rounds)
        for s in scheduler.streams
    ]


@st.composite
def serving_scenarios(draw):
    """A randomized serving workload shared by both scheduler variants."""
    seed = draw(st.integers(0, 2**20))
    n_disks = draw(st.integers(3, 8))
    bandwidth = draw(st.integers(1, 4))
    n_objects = draw(st.integers(2, 4))
    blocks_per_object = draw(st.integers(30, 60))
    streams = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_objects - 1),  # object
                st.integers(0, 20),  # start block
                st.integers(1, 3),  # blocks per round
            ),
            min_size=1,
            max_size=12,
        )
    )
    rounds = draw(st.integers(1, 10))
    return {
        "seed": seed,
        "n_disks": n_disks,
        "bandwidth": bandwidth,
        "n_objects": n_objects,
        "blocks_per_object": blocks_per_object,
        "streams": streams,
        "rounds": rounds,
    }


def make_server(scenario, backend):
    catalog = uniform_catalog(
        scenario["n_objects"],
        scenario["blocks_per_object"],
        master_seed=scenario["seed"],
        bits=BITS,
    )
    specs = [
        DiskSpec(
            capacity_blocks=5000,
            bandwidth_blocks_per_round=scenario["bandwidth"],
        )
    ] * scenario["n_disks"]
    return CMServer(catalog, specs, bits=BITS, backend=backend)


def admit_streams(scheduler, catalog, scenario):
    from dataclasses import replace

    for sid, (obj, start, rate) in enumerate(scenario["streams"]):
        media = catalog.get(obj)
        stream = Stream(
            sid,
            replace(media, blocks_per_round=rate),
            start_block=min(start, media.num_blocks - 1),
        )
        try:
            scheduler.admit(stream)
        except ValueError:
            pass  # admission denied: same decision both variants


class TestSimplePathParity:
    @given(scenario=serving_scenarios(), backend=st.sampled_from(BACKENDS))
    @settings(max_examples=40, deadline=None)
    def test_reports_and_streams_match(self, scenario, backend):
        results = []
        for vectorized in (False, True):
            server = make_server(scenario, backend)
            locator = (
                server.computed_batch_locator() if vectorized else None
            )
            scheduler = RoundScheduler(
                server.array,
                locator=server.computed_locator(),
                vectorized=vectorized,
                batch_locator=locator,
            )
            admit_streams(scheduler, server.catalog, scenario)
            reports = scheduler.run_rounds(scenario["rounds"])
            results.append(
                (
                    [normalized_report(r, server.array) for r in reports],
                    dict(scheduler.hiccups_by_stream),
                    scheduler.total_hiccups,
                    stream_snapshot(scheduler),
                )
            )
        assert results[0] == results[1]

    @given(scenario=serving_scenarios())
    @settings(max_examples=20, deadline=None)
    def test_inventory_locator_matches(self, scenario):
        """Default (inventory home_of) locator: sequential batch wrapper."""
        results = []
        for vectorized in (False, True):
            server = make_server(scenario, "scaddar")
            scheduler = RoundScheduler(server.array, vectorized=vectorized)
            admit_streams(scheduler, server.catalog, scenario)
            reports = scheduler.run_rounds(scenario["rounds"])
            results.append(
                (
                    [normalized_report(r, server.array) for r in reports],
                    dict(scheduler.hiccups_by_stream),
                    stream_snapshot(scheduler),
                )
            )
        assert results[0] == results[1]


@st.composite
def degraded_scenarios(draw):
    scenario = draw(serving_scenarios())
    scenario["protection"] = draw(
        st.sampled_from(("mirror", "parity", None))
    )
    scenario["dead_disks"] = draw(
        st.sets(st.integers(0, scenario["n_disks"] - 1), max_size=2)
    )
    scenario["tripped_disks"] = draw(
        st.sets(st.integers(0, scenario["n_disks"] - 1), max_size=2)
    )
    scenario["fault_rates"] = draw(
        st.sampled_from(
            (
                None,  # healthy hybrid path (the vectorized fast lane)
                (0.0, 0.0, 0.0),  # injector attached but silent
                (0.3, 0.0, 0.0),  # transient read errors
                (0.15, 0.1, 0.02),  # errors + slow reads + divergence
            )
        )
    )
    return scenario


class TestDegradedPathParity:
    @given(scenario=degraded_scenarios(), backend=st.sampled_from(BACKENDS))
    @settings(max_examples=40, deadline=None)
    def test_full_stack_matches(self, scenario, backend):
        # Mirror/parity protection needs the SCADDAR mapper arithmetic,
        # and parity groups (k = 4) need at least k + 1 disks.
        protection = scenario["protection"] if backend == "scaddar" else None
        if protection == "parity" and scenario["n_disks"] < 5:
            protection = "mirror"
        results = []
        for vectorized in (False, True):
            server = make_server(scenario, backend)
            obs = Obs()
            rates = scenario["fault_rates"]
            injector = (
                None
                if rates is None
                else FaultInjector(
                    seed=scenario["seed"],
                    read_error_rate=rates[0],
                    read_slow_rate=rates[1],
                    scrub_divergence_rate=rates[2],
                )
            )
            stack = build_degraded_stack(
                server,
                injector=injector,
                protection=protection,
                obs=obs,
                vectorized=vectorized,
            )
            table = server.array.physical_ids
            for logical in sorted(scenario["dead_disks"]):
                stack.monitor.mark_dead(table[logical])
            for logical in sorted(scenario["tripped_disks"]):
                for _ in range(3):
                    stack.monitor.observe_failure(table[logical], 0)
            admit_streams(stack.scheduler, server.catalog, scenario)
            reports = stack.scheduler.run_rounds(scenario["rounds"])
            results.append(
                (
                    [normalized_report(r, server.array) for r in reports],
                    dict(stack.scheduler.hiccups_by_stream),
                    stack.scheduler.total_hiccups,
                    normalized_stats(stack.planner.stats, server.array),
                    stream_snapshot(stack.scheduler),
                    obs.log.deterministic_view(),
                )
            )
        assert results[0] == results[1]

    @given(scenario=degraded_scenarios())
    @settings(max_examples=20, deadline=None)
    def test_backend_locator_matches(self, scenario):
        """The computed (backend-kernel) locator path, SCADDAR only."""
        protection = scenario["protection"]
        if protection == "parity" and scenario["n_disks"] < 5:
            protection = "mirror"
        results = []
        for vectorized in (False, True):
            server = make_server(scenario, "scaddar")
            obs = Obs()
            stack = build_degraded_stack(
                server,
                protection=protection,
                obs=obs,
                vectorized=vectorized,
                locator="backend",
            )
            table = server.array.physical_ids
            for logical in sorted(scenario["dead_disks"]):
                stack.monitor.mark_dead(table[logical])
            admit_streams(stack.scheduler, server.catalog, scenario)
            reports = stack.scheduler.run_rounds(scenario["rounds"])
            results.append(
                (
                    [normalized_report(r, server.array) for r in reports],
                    normalized_stats(stack.planner.stats, server.array),
                    obs.log.deterministic_view(),
                )
            )
        assert results[0] == results[1]
