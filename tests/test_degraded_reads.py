"""Degraded-mode reads: failover planning, conservation, availability."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.scaddar import ScaddarMapper
from repro.experiments.availability import run_availability
from repro.placement.backends import BACKENDS
from repro.server.cmserver import CMServer
from repro.server.faults import (
    DataLossError,
    FaultInjector,
    MirrorDegenerateError,
    MirroredPlacement,
)
from repro.server.health import DiskHealth
from repro.server.reads import (
    PATH_MIRROR,
    PATH_PARITY,
    PATH_PRIMARY,
    READ_HICCUP,
    READ_QUEUED,
    MirrorProtection,
    build_degraded_stack,
)
from repro.server.streams import Stream
from repro.storage.disk import DiskSpec
from repro.workloads.generator import uniform_catalog

SPEC = DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=10)


def make_stack(n0=6, num_objects=3, blocks_per_object=90, **kwargs):
    catalog = uniform_catalog(
        num_objects, blocks_per_object, master_seed=0xD15C, bits=32
    )
    server = CMServer(catalog, [SPEC] * n0, bits=32, default_spec=SPEC)
    stack = build_degraded_stack(server, **kwargs)
    return server, stack


def admit_all(server, stack):
    for sid in range(len(list(server.catalog))):
        stack.scheduler.admit(Stream(sid, server.catalog.get(sid)))


class TestDegenerateMirror:
    """Satellite regression: Nj == 1 means no redundancy, said loudly."""

    def test_mirror_disk_raises_on_single_disk_array(self):
        mirrored = MirroredPlacement(ScaddarMapper(n0=1, bits=32))
        with pytest.raises(MirrorDegenerateError):
            mirrored.mirror_disk(0x1234)

    def test_read_disk_refuses_silent_same_disk_fallback(self):
        mirrored = MirroredPlacement(ScaddarMapper(n0=1, bits=32))
        with pytest.raises(MirrorDegenerateError) as err:
            mirrored.read_disk(0x1234, failed={0})
        # Still a DataLossError, so existing catch-all handling works.
        assert isinstance(err.value, DataLossError)

    def test_mirror_protection_reports_no_path_not_a_bogus_one(self):
        catalog = uniform_catalog(1, 20, master_seed=1, bits=32)
        server = CMServer(catalog, [SPEC], bits=32, default_spec=SPEC)
        protection = MirrorProtection(server)
        block = next(iter(server.catalog)).blocks()[0]
        assert protection.recovery_paths(block.block_id) == []

    def test_healthy_multi_disk_pairs_are_distinct(self):
        mirrored = MirroredPlacement(ScaddarMapper(n0=4, bits=32))
        for x0 in range(50):
            pair = mirrored.replica_pair(x0)
            assert mirrored.mirror_disk(x0) == pair.mirror
            assert pair.mirror != pair.primary


class TestFailoverReadPlanner:
    def bandwidth(self, server):
        return {
            pid: server.array.disk(pid).bandwidth_blocks_per_round
            for pid in server.array.physical_ids
        }

    def first_block(self, server):
        return next(iter(server.catalog)).blocks()[0].block_id

    def test_healthy_primary_serves_and_consumes_bandwidth(self):
        server, stack = make_stack()
        block = self.first_block(server)
        bandwidth = self.bandwidth(server)
        primary = server.array.home_of(block)
        assert stack.planner.serve(block, 0, bandwidth) == PATH_PRIMARY
        assert bandwidth[primary] == SPEC.bandwidth_blocks_per_round - 1
        assert stack.planner.stats.served_primary == 1

    def test_dead_primary_fails_over_to_mirror(self):
        injector = FaultInjector(seed=1)
        server, stack = make_stack(injector=injector)
        block = self.first_block(server)
        primary = server.array.home_of(block)
        injector.kill(primary)
        stack.monitor.mark_dead(primary)
        outcome = stack.planner.serve(block, 0, self.bandwidth(server))
        assert outcome == PATH_MIRROR
        assert stack.planner.stats.failovers_by_primary == {primary: 1}
        assert stack.planner.stats.hiccups == 0

    def test_dead_primary_reconstructs_from_parity_group(self):
        injector = FaultInjector(seed=1)
        server, stack = make_stack(injector=injector, protection="parity")
        block = self.first_block(server)
        primary = server.array.home_of(block)
        injector.kill(primary)
        stack.monitor.mark_dead(primary)
        outcome = stack.planner.serve(block, 0, self.bandwidth(server))
        assert outcome in (PATH_PARITY, PATH_MIRROR)  # tail blocks mirror
        assert stack.planner.stats.served == 1

    def test_unprotected_dead_primary_is_a_hiccup(self):
        injector = FaultInjector(seed=1)
        server, stack = make_stack(injector=injector, protection=None)
        block = self.first_block(server)
        primary = server.array.home_of(block)
        injector.kill(primary)
        stack.monitor.mark_dead(primary)
        outcome = stack.planner.serve(block, 0, self.bandwidth(server))
        assert outcome == READ_HICCUP
        assert stack.planner.stats.hiccups_by_primary == {primary: 1}

    def test_slow_read_is_queued_not_hiccuped(self):
        injector = FaultInjector(seed=5, read_slow_rate=0.999999)
        server, stack = make_stack(injector=injector)
        block = self.first_block(server)
        outcome = stack.planner.serve(block, 0, self.bandwidth(server))
        assert outcome == READ_QUEUED
        assert stack.planner.stats.queued == 1
        assert stack.planner.stats.hiccups == 0

    def test_transient_storm_trips_breaker_to_suspect(self):
        injector = FaultInjector(seed=5, read_error_rate=0.999999)
        server, stack = make_stack(injector=injector, trip_after=3)
        block = self.first_block(server)
        primary = server.array.home_of(block)
        stack.planner.serve(block, 0, self.bandwidth(server))
        assert stack.monitor.state(primary) is DiskHealth.SUSPECT
        assert stack.planner.stats.retries >= 3

    def test_exhausted_bandwidth_with_no_fallback_is_a_hiccup(self):
        server, stack = make_stack(protection=None)
        block = self.first_block(server)
        bandwidth = {pid: 0 for pid in server.array.physical_ids}
        assert stack.planner.serve(block, 0, bandwidth) == READ_HICCUP


class TestDegradedRoundScheduling:
    def test_disk_death_mid_playback_costs_zero_hiccups(self):
        injector = FaultInjector(seed=0xFEE1)
        server, stack = make_stack(injector=injector, scrub_rate=16)
        admit_all(server, stack)
        victim = server.array.physical_at(1)
        for r in range(80):
            if r == 20:
                injector.kill(victim)
                stack.monitor.mark_dead(victim)
            if r == 45:
                injector.revive(victim)
                stack.monitor.begin_rebuild(victim)
            report = stack.scheduler.run_round()
            assert report.requested == (
                report.served + report.hiccups + report.queued
            )
        assert stack.planner.stats.hiccups_by_primary.get(victim, 0) == 0
        assert stack.scheduler.total_hiccups == 0
        assert stack.monitor.state(victim) is DiskHealth.HEALTHY
        assert stack.planner.stats.failover_reads > 0

    def test_round_report_carries_health_and_scrub_activity(self):
        injector = FaultInjector(seed=2, scrub_divergence_rate=0.999999)
        server, stack = make_stack(injector=injector, scrub_rate=4)
        admit_all(server, stack)
        victim = server.array.physical_at(0)
        injector.kill(victim)
        stack.monitor.mark_dead(victim)
        report = stack.scheduler.run_round()
        assert report.health_by_physical[victim] == "dead"
        assert report.scrub_checked + report.scrub_rebuilt <= 4
        assert report.scrub_repaired <= report.scrub_checked
        assert report.availability <= 1.0


class TestConservationProperty:
    """Satellite: requested == served + hiccups + queued, every backend."""

    @given(
        backend=st.sampled_from(sorted(BACKENDS)),
        error_rate=st.floats(min_value=0.0, max_value=0.4),
        slow_rate=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_every_round_conserves_requests(
        self, backend, error_rate, slow_rate, seed
    ):
        catalog = uniform_catalog(2, 48, master_seed=seed, bits=32)
        server = CMServer(
            catalog, [SPEC] * 4, bits=32, default_spec=SPEC, backend=backend
        )
        injector = FaultInjector(
            seed=seed, read_error_rate=error_rate, read_slow_rate=slow_rate
        )
        # Mirror/parity arithmetic lives on the SCADDAR mapper; other
        # backends run the same planner with retries only.
        protection = "mirror" if backend == "scaddar" else None
        stack = build_degraded_stack(
            server, injector=injector, protection=protection
        )
        for sid in range(2):
            stack.scheduler.admit(Stream(sid, server.catalog.get(sid)))
        total_requested = total_settled = 0
        for report in stack.scheduler.run_rounds(12):
            assert report.requested == (
                report.served + report.hiccups + report.queued
            )
            total_requested += report.requested
            total_settled += report.served + report.hiccups + report.queued
        assert total_requested == total_settled


class TestLoadAccountingRegression:
    """Bugfix: degraded rounds charge the disks that actually served.

    The old accounting charged the *primary* before the serve attempt,
    so a dead disk accrued load it never carried and the failover target
    accrued none — skewing ``load_by_physical`` (and every balance
    metric on top of it) exactly when the array was degraded.
    """

    def bandwidth(self, server):
        return {
            pid: server.array.disk(pid).bandwidth_blocks_per_round
            for pid in server.array.physical_ids
        }

    def first_block(self, server):
        return next(iter(server.catalog)).blocks()[0].block_id

    def test_healthy_primary_is_charged_once(self):
        server, stack = make_stack()
        block = self.first_block(server)
        primary = server.array.home_of(block)
        loads: dict[int, int] = {}
        outcome = stack.planner.serve(
            block, 0, self.bandwidth(server), loads=loads
        )
        assert outcome == PATH_PRIMARY
        assert loads == {primary: 1}

    def test_dead_primary_is_never_charged_its_mirror_is(self):
        injector = FaultInjector(seed=1)
        server, stack = make_stack(injector=injector)
        block = self.first_block(server)
        primary = server.array.home_of(block)
        injector.kill(primary)
        stack.monitor.mark_dead(primary)
        loads: dict[int, int] = {}
        bandwidth = self.bandwidth(server)
        outcome = stack.planner.serve(block, 0, bandwidth, loads=loads)
        assert outcome == PATH_MIRROR
        assert primary not in loads
        ((mirror, charged),) = loads.items()
        assert charged == 1
        assert bandwidth[mirror] == SPEC.bandwidth_blocks_per_round - 1

    def test_parity_reconstruction_charges_the_surviving_members(self):
        injector = FaultInjector(seed=1)
        server, stack = make_stack(injector=injector, protection="parity")
        block = self.first_block(server)
        primary = server.array.home_of(block)
        injector.kill(primary)
        stack.monitor.mark_dead(primary)
        loads: dict[int, int] = {}
        outcome = stack.planner.serve(
            block, 0, self.bandwidth(server), loads=loads
        )
        assert primary not in loads
        if outcome == PATH_PARITY:
            # One read per surviving group member, none on the dead disk.
            assert sum(loads.values()) >= 2
        else:  # a tail block falls back to mirroring
            assert outcome == PATH_MIRROR
            assert sum(loads.values()) == 1

    def test_dead_disk_shows_zero_load_and_spare_in_round_reports(self):
        injector = FaultInjector(seed=0xFEE1)
        server, stack = make_stack(injector=injector)
        admit_all(server, stack)
        victim = server.array.physical_at(1)
        injector.kill(victim)
        stack.monitor.mark_dead(victim)
        for report in stack.scheduler.run_rounds(6):
            assert report.load_by_physical[victim] == 0
            assert report.spare_by_physical[victim] == 0
            # The survivors picked up the dead disk's reads.
            assert sum(report.load_by_physical.values()) == report.served


class TestRetriedAccountingRegression:
    """Bugfix: a queued read's re-request is demand already counted.

    ``requested`` counts the re-request again, so an SLO computed as
    served/requested double-counted every queued read's demand while
    crediting its serve once — understating availability exactly when
    the system was degraded.  ``retried`` tracks the re-requests so the
    denominator can be de-duplicated.
    """

    def test_retried_matches_the_previous_rounds_queue(self):
        injector = FaultInjector(seed=5, read_slow_rate=0.999999)
        server, stack = make_stack(injector=injector)
        admit_all(server, stack)
        reports = stack.scheduler.run_rounds(4)
        assert reports[0].retried == 0
        assert reports[0].queued > 0
        for prev, this in zip(reports, reports[1:]):
            # Every queued read is re-requested (and re-queued) next
            # round: the retry count equals the previous round's queue.
            assert this.retried == prev.queued
            assert this.retried <= this.requested

    def test_hiccups_are_not_counted_as_retries(self):
        injector = FaultInjector(seed=3)
        server, stack = make_stack(injector=injector, protection=None)
        admit_all(server, stack)
        victim = server.array.physical_at(0)
        injector.kill(victim)
        stack.monitor.mark_dead(victim)
        reports = stack.scheduler.run_rounds(4)
        # Unprotected dead-disk reads hiccup; hiccuped reads are missed
        # demand, not deferred demand, so they never mark a retry.
        assert sum(r.hiccups for r in reports) > 0
        assert all(r.retried == 0 for r in reports)

    def test_summary_availability_uses_unique_demand(self):
        from repro.server.metrics import MetricsCollector

        injector = FaultInjector(seed=5, read_slow_rate=0.5)
        server, stack = make_stack(injector=injector)
        admit_all(server, stack)
        collector = MetricsCollector()
        for report in stack.scheduler.run_rounds(10):
            collector.record(report)
        summary = collector.summary()
        assert summary.total_retried > 0
        assert summary.unique_requested == (
            summary.total_requested - summary.total_retried
        )
        assert summary.availability == pytest.approx(
            summary.total_served / summary.unique_requested
        )
        # With the double-count removed the SLO can reach 1.0; the old
        # formula capped it strictly below whenever anything queued.
        assert summary.availability <= 1.0


class TestAvailabilityExperiment:
    QUICK = dict(
        num_objects=3,
        blocks_per_object=120,
        rounds=90,
        kill_round=20,
        replace_round=45,
        read_fault_rates=(0.0, 0.05),
        scrub_rate=16,
    )

    @pytest.fixture(scope="class")
    def results(self):
        return run_availability(**self.QUICK)

    def test_disk_death_is_absorbed_in_every_cell(self, results):
        assert len(results) == 4  # 2 schemes x 2 fault rates
        for r in results:
            assert r.dead_disk_hiccups == 0, (r.scheme, r.read_fault_rate)
            assert r.victim_final_state == "healthy"
            assert r.survived

    def test_failover_paths_match_the_scheme(self, results):
        by_scheme = {}
        for r in results:
            by_scheme.setdefault(r.scheme, []).append(r)
        assert sum(r.failover_reads for r in by_scheme["mirror"]) > 0
        assert sum(r.reconstructed_reads for r in by_scheme["parity"]) > 0
        assert all(r.reconstructed_reads == 0 for r in by_scheme["mirror"])

    def test_requests_conserved_over_the_horizon(self, results):
        for r in results:
            assert r.requested == r.served + r.hiccups + r.queued

    def test_bit_reproducible_from_seed(self, results):
        assert run_availability(**self.QUICK) == results

    def test_different_seed_different_fault_schedule(self, results):
        other = run_availability(**self.QUICK, seed=0xD1FF)
        assert other != results

    def test_rejects_inconsistent_schedule(self):
        with pytest.raises(ValueError):
            run_availability(kill_round=50, replace_round=40)
