"""Unit tests for scaling operations and the operation log."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operations import OperationLog, ScalingOp


class TestScalingOp:
    def test_add_constructor(self):
        op = ScalingOp.add(3)
        assert op.kind == "add"
        assert op.count == 3
        assert op.removed == ()

    def test_remove_constructor_sorts(self):
        op = ScalingOp.remove([5, 1, 3])
        assert op.removed == (1, 3, 5)

    @pytest.mark.parametrize("count", [0, -1])
    def test_add_needs_positive_count(self, count):
        with pytest.raises(ValueError):
            ScalingOp.add(count)

    def test_remove_needs_indices(self):
        with pytest.raises(ValueError):
            ScalingOp.remove([])

    def test_remove_rejects_duplicates(self):
        with pytest.raises(ValueError):
            ScalingOp(kind="remove", removed=(1, 1))

    def test_remove_rejects_negative(self):
        with pytest.raises(ValueError):
            ScalingOp.remove([-1])

    def test_remove_rejects_unsorted_direct_construction(self):
        with pytest.raises(ValueError):
            ScalingOp(kind="remove", removed=(3, 1))

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            ScalingOp(kind="grow", count=1)

    def test_add_with_removed_rejected(self):
        with pytest.raises(ValueError):
            ScalingOp(kind="add", count=1, removed=(0,))

    def test_remove_with_count_rejected(self):
        with pytest.raises(ValueError):
            ScalingOp(kind="remove", count=1, removed=(0,))

    def test_next_disk_count_add(self):
        assert ScalingOp.add(3).next_disk_count(4) == 7

    def test_next_disk_count_remove(self):
        assert ScalingOp.remove([0, 2]).next_disk_count(5) == 3

    def test_next_disk_count_remove_out_of_range(self):
        with pytest.raises(ValueError):
            ScalingOp.remove([5]).next_disk_count(5)

    def test_next_disk_count_cannot_empty_array(self):
        with pytest.raises(ValueError):
            ScalingOp.remove([0, 1]).next_disk_count(2)

    def test_roundtrip_add(self):
        op = ScalingOp.add(4)
        assert ScalingOp.from_dict(op.to_dict()) == op

    def test_roundtrip_remove(self):
        op = ScalingOp.remove([2, 7])
        assert ScalingOp.from_dict(op.to_dict()) == op

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError):
            ScalingOp.from_dict({"kind": "shrink"})


class TestOperationLog:
    def test_initial_state(self):
        log = OperationLog(n0=4)
        assert log.current_disks == 4
        assert log.num_operations == 0
        assert log.disk_counts() == [4]
        assert len(log) == 0

    def test_invalid_n0(self):
        with pytest.raises(ValueError):
            OperationLog(n0=0)

    def test_append_tracks_counts(self):
        log = OperationLog(n0=4)
        assert log.append(ScalingOp.add(1)) == 5
        assert log.append(ScalingOp.remove([2])) == 4
        assert log.append(ScalingOp.add(3)) == 7
        assert log.disk_counts() == [4, 5, 4, 7]
        assert log.current_disks == 7
        assert log.num_operations == 3

    def test_disks_after(self):
        log = OperationLog(n0=4)
        log.append(ScalingOp.add(2))
        log.append(ScalingOp.add(1))
        assert log.disks_after(0) == 4
        assert log.disks_after(1) == 6
        assert log.disks_after(2) == 7
        with pytest.raises(IndexError):
            log.disks_after(3)

    def test_append_validates_against_current_count(self):
        log = OperationLog(n0=3)
        with pytest.raises(ValueError):
            log.append(ScalingOp.remove([3]))

    def test_product_n_matches_definition(self):
        log = OperationLog(n0=4)
        log.append(ScalingOp.add(1))  # 5
        log.append(ScalingOp.add(1))  # 6
        assert log.product_n() == 4 * 5 * 6

    def test_product_n_no_ops(self):
        assert OperationLog(n0=7).product_n() == 7

    def test_iteration_order(self):
        ops = [ScalingOp.add(1), ScalingOp.remove([0]), ScalingOp.add(2)]
        log = OperationLog(n0=4)
        for op in ops:
            log.append(op)
        assert list(log) == ops
        assert log.operations == tuple(ops)

    def test_json_roundtrip(self):
        log = OperationLog(n0=6)
        log.append(ScalingOp.add(2))
        log.append(ScalingOp.remove([1, 3]))
        restored = OperationLog.from_json(log.to_json())
        assert restored.n0 == 6
        assert restored.operations == log.operations
        assert restored.disk_counts() == log.disk_counts()

    def test_from_operations_validates(self):
        with pytest.raises(ValueError):
            OperationLog.from_operations(2, [ScalingOp.remove([0, 1])])

    def test_from_operations_builds_counts(self):
        log = OperationLog.from_operations(4, [ScalingOp.add(1), ScalingOp.add(1)])
        assert log.disk_counts() == [4, 5, 6]

    @given(
        n0=st.integers(1, 20),
        adds=st.lists(st.integers(1, 5), max_size=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_addition_trajectory_property(self, n0, adds):
        log = OperationLog(n0=n0)
        for count in adds:
            log.append(ScalingOp.add(count))
        assert log.current_disks == n0 + sum(adds)
        expected_product = n0
        running = n0
        for count in adds:
            running += count
            expected_product *= running
        assert log.product_n() == expected_product
