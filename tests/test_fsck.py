"""Tests for the layout checker/repairer."""

from __future__ import annotations

from repro.core.operations import ScalingOp
from repro.server.cmserver import CMServer
from repro.server.fsck import check_layout, repair_layout
from repro.storage.block import Block, BlockId
from repro.storage.disk import DiskSpec
from repro.workloads.generator import uniform_catalog


def make_server():
    catalog = uniform_catalog(3, 80, master_seed=0xF5C, bits=32)
    spec = DiskSpec(capacity_blocks=100_000)
    return CMServer(catalog, [spec] * 4, bits=32, default_spec=spec)


class TestCheckLayout:
    def test_fresh_server_is_clean(self):
        report = check_layout(make_server())
        assert report.clean
        assert report.blocks_checked == 240

    def test_clean_after_scaling(self):
        server = make_server()
        server.scale(ScalingOp.add(2))
        server.scale(ScalingOp.remove([1]))
        assert check_layout(server).clean

    def test_detects_misplaced_block(self):
        server = make_server()
        block_id = BlockId(0, 0)
        home = server.array.home_of(block_id)
        other = next(p for p in server.array.physical_ids if p != home)
        server.array.move(block_id, other)
        report = check_layout(server)
        assert not report.clean
        assert len(report.misplaced) == 1
        violation = report.misplaced[0]
        assert violation.block_id == block_id
        assert violation.actual_physical == other
        assert violation.expected_physical == home

    def test_detects_missing_block(self):
        server = make_server()
        server.array.drop(BlockId(1, 5))
        report = check_layout(server)
        assert report.missing == [BlockId(1, 5)]
        assert not report.clean

    def test_detects_orphan_block(self):
        server = make_server()
        stray = Block(object_id=99, index=0, x0=123)
        server.array.place(stray, 0)
        report = check_layout(server)
        assert report.orphans == [BlockId(99, 0)]


class TestRepairLayout:
    def test_repairs_misplaced(self):
        server = make_server()
        for index in (0, 1, 2):
            block_id = BlockId(0, index)
            home = server.array.home_of(block_id)
            other = next(p for p in server.array.physical_ids if p != home)
            server.array.move(block_id, other)
        assert repair_layout(server) == 3
        assert check_layout(server).clean

    def test_repair_is_idempotent(self):
        server = make_server()
        assert repair_layout(server) == 0
        assert repair_layout(server) == 0

    def test_repair_leaves_missing_and_orphans(self):
        server = make_server()
        server.array.drop(BlockId(0, 0))
        server.array.place(Block(object_id=50, index=0, x0=9), 1)
        repair_layout(server)
        report = check_layout(server)
        assert report.missing == [BlockId(0, 0)]
        assert report.orphans == [BlockId(50, 0)]

    def test_repair_after_interrupted_migration(self):
        """Simulate a crash mid-scale: mapper updated, moves half-done."""
        server = make_server()
        pending = server.begin_scale(ScalingOp.add(1))
        from repro.storage.migration import MigrationSession

        session = MigrationSession(server.array, pending.plan)
        session.step(budget=1)  # partial progress, then "crash"
        server.finish_scale(pending)
        report = check_layout(server)
        assert report.misplaced  # the unexecuted moves
        repair_layout(server, report)
        assert check_layout(server).clean
