"""Cluster fault tolerance: health, replication, failover, rebuild.

The pledges under test:

* per-shard health walks the disk state machine one level up — breaker
  trips demote to suspect, probes recover, death is terminal until a
  rebuild detaches the shard;
* replication keeps R copies of every object on pairwise-distinct
  shards AND pairwise-distinct failure domains, placed by rendezvous
  ranking (stable under topology change by construction);
* routed reads retry with capped exponential backoff under a per-shard
  timeout budget, then fail over through the replica chain; the
  all-healthy batch path matches the scalar path bit-for-bit;
* a shard death fails its streams over at their exact playback
  positions, strands the unservable ones, and the conservation
  invariant (requested == served + hiccups + queued) holds throughout;
* a dead shard's rebuild is a journaled, rate-bounded, abortable
  rebalance that restores full replication and detaches the tombstone;
* cluster rebalances and per-shard scaling ops stay mutually exclusive
  (strict journal layering), in both directions;
* same-seed runs reproduce the whole story bit-identically.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterFaultInjector,
    ClusterJournal,
    FailoverConfig,
    ObjectUnavailableError,
    ReplicationError,
    ShardHealth,
    check_cluster,
    merged_deterministic_view,
)
from repro.cluster.health import ClusterHealthMonitor
from repro.core.operations import ScalingOp
from repro.server.cmserver import OperationInFlightError
from repro.server.health import HealthTransitionError
from repro.server.streams import StreamState
from repro.storage.disk import DiskSpec

SPEC = DiskSpec(capacity_blocks=50_000, bandwidth_blocks_per_round=8)


def build_ha_cluster(
    num_shards: int = 4,
    num_objects: int = 12,
    blocks_per_object: int = 40,
    replication_factor: int = 2,
    num_domains: int = 2,
    router_backend: str = "consistent_hash",
    **kwargs,
) -> ClusterCoordinator:
    coordinator = ClusterCoordinator.create(
        num_shards, 3, SPEC, bits=32, master_seed=0xBEEF,
        router_backend=router_backend,
        replication_factor=replication_factor,
        num_domains=num_domains,
        **kwargs,
    )
    for i in range(num_objects):
        coordinator.add_object(f"title-{i}", blocks_per_object)
    return coordinator


def stream_on(shard, stream_id):
    """The scheduler's live Stream with this id (or None)."""
    return next(
        (s for s in shard.scheduler.streams if s.stream_id == stream_id),
        None,
    )


class TestHealthMachine:
    def test_fresh_shards_are_healthy(self):
        monitor = ClusterHealthMonitor()
        assert monitor.state(0) is ShardHealth.HEALTHY
        assert monitor.is_live(0) and monitor.serves_unimpeded(0)

    def test_failures_trip_breaker_to_suspect(self):
        monitor = ClusterHealthMonitor(trip_after=3)
        for _ in range(3):
            monitor.observe_failure(0, round_index=0)
        assert monitor.state(0) is ShardHealth.SUSPECT
        assert monitor.is_live(0)  # data still there
        assert not monitor.serves_unimpeded(0)
        assert not monitor.is_readable(0, 1)  # cooling down

    def test_probe_success_recovers(self):
        monitor = ClusterHealthMonitor(trip_after=2, cooldown_rounds=1)
        monitor.observe_failure(0, 0)
        monitor.observe_failure(0, 0)
        assert monitor.state(0) is ShardHealth.SUSPECT
        probed = False
        for round_index in range(1, 10):
            monitor.new_round()
            if monitor.is_readable(0, round_index):
                monitor.observe_success(0)
                probed = True
                break
        assert probed
        assert monitor.state(0) is ShardHealth.HEALTHY
        assert monitor.serves_unimpeded(0)

    def test_death_and_rebuild_transitions(self):
        monitor = ClusterHealthMonitor()
        monitor.mark_dead(1)
        assert monitor.state(1) is ShardHealth.DEAD
        assert not monitor.is_live(1)
        assert not monitor.is_readable(1, 0)
        with pytest.raises(HealthTransitionError):
            monitor.mark_healthy(1)
        monitor.begin_rebuild(1)
        assert monitor.state(1) is ShardHealth.REBUILDING
        assert not monitor.is_live(1)
        monitor.forget(1)
        assert monitor.state(1) is ShardHealth.HEALTHY

    def test_rebuild_requires_dead(self):
        monitor = ClusterHealthMonitor()
        with pytest.raises(HealthTransitionError):
            monitor.begin_rebuild(0)

    def test_transitions_logged(self):
        monitor = ClusterHealthMonitor()
        monitor.mark_dead(2)
        monitor.begin_rebuild(2)
        assert monitor.transitions == [
            (2, ShardHealth.HEALTHY, ShardHealth.DEAD),
            (2, ShardHealth.DEAD, ShardHealth.REBUILDING),
        ]


class TestFailoverConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailoverConfig(max_attempts=0)
        with pytest.raises(ValueError):
            FailoverConfig(base_backoff_rounds=0)
        with pytest.raises(ValueError):
            FailoverConfig(base_backoff_rounds=4, max_backoff_rounds=2)
        with pytest.raises(ValueError):
            FailoverConfig(timeout_budget_rounds=-1)


class TestFaultInjector:
    def test_per_shard_streams_deterministic(self):
        a = ClusterFaultInjector(master_seed=7, read_error_rate=0.5)
        b = ClusterFaultInjector(master_seed=7, read_error_rate=0.5)
        assert [a.read_error(0) for _ in range(64)] == [
            b.read_error(0) for _ in range(64)
        ]

    def test_shards_decorrelated(self):
        injector = ClusterFaultInjector(master_seed=7, read_error_rate=0.5)
        s0 = [injector.read_error(0) for _ in range(64)]
        s1 = [injector.read_error(1) for _ in range(64)]
        assert s0 != s1

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ClusterFaultInjector(read_error_rate=1.5)


class TestReplicaPlacement:
    def test_every_object_has_r_copies_distinct_domains(self):
        coordinator = build_ha_cluster()
        for gid in coordinator.object_ids:
            copies = coordinator.replication.copies_of(gid)
            assert len(copies) == 2
            assert len(set(copies)) == 2
            domains = {coordinator.shard(s).domain for s in copies}
            assert len(domains) == 2

    def test_factor_one_keeps_no_replicas(self):
        coordinator = build_ha_cluster(replication_factor=1)
        assert coordinator._replica_home == {}
        assert coordinator._replica_local == {}

    def test_small_cluster_degrades_not_fails(self):
        # One shard: no legal replica target; objects load degraded
        # (a sizing fact, not an fsck breach).
        coordinator = build_ha_cluster(
            num_shards=1, num_objects=4, num_domains=1
        )
        assert coordinator.replication.replicas_of(0) == ()
        assert check_cluster(coordinator).clean

    def test_rendezvous_rank_stable_under_removal(self):
        coordinator = build_ha_cluster()
        ranked = coordinator.router.replica_rank(5, [0, 1, 2, 3])
        survivors = [sid for sid in ranked if sid != 2]
        assert coordinator.router.replica_rank(5, [0, 1, 3]) == survivors

    def test_repair_closes_gap_after_drop(self):
        coordinator = build_ha_cluster()
        gid = 0
        victim = coordinator.replication.replicas_of(gid)[0]
        coordinator.replication.drop_replica(gid, victim)
        assert len(coordinator.replication.copies_of(gid)) == 1
        coordinator.replication.repair(gid)
        copies = coordinator.replication.copies_of(gid)
        assert len(copies) == 2
        domains = {coordinator.shard(s).domain for s in copies}
        assert len(domains) == 2

    def test_repair_counts_dead_copies_lost_not_dropped(self):
        # Regression: repair() used to book a dead shard's replica as
        # an eviction (copies_dropped), hiding data loss behind the
        # routine-trim counter.
        coordinator = build_ha_cluster()
        gid = 0
        manager = coordinator.replication
        victim = manager.replicas_of(gid)[0]
        coordinator.kill_shard(victim)
        dropped_before = manager.copies_dropped
        lost_before = manager.copies_lost
        manager.repair(gid)
        assert manager.copies_lost == lost_before + 1
        assert manager.copies_dropped == dropped_before
        copies = manager.copies_of(gid)
        assert len(copies) == 2
        assert all(coordinator.health.is_live(s) for s in copies)

    def test_voluntary_drop_counts_dropped_not_lost(self):
        coordinator = build_ha_cluster()
        gid = 0
        manager = coordinator.replication
        victim = manager.replicas_of(gid)[0]
        dropped_before = manager.copies_dropped
        lost_before = manager.copies_lost
        manager.drop_replica(gid, victim)
        assert manager.copies_dropped == dropped_before + 1
        assert manager.copies_lost == lost_before

    def test_double_drop_raises_typed_error(self):
        # Regression: a double drop used to escape as a bare KeyError
        # on the internal (gid, shard) bookkeeping tuple.
        coordinator = build_ha_cluster()
        gid = 0
        victim = coordinator.replication.replicas_of(gid)[0]
        coordinator.replication.drop_replica(gid, victim)
        with pytest.raises(
            ReplicationError,
            match=f"object {gid} has no replica recorded on shard {victim}",
        ):
            coordinator.replication.drop_replica(gid, victim)

    def test_fsck_flags_domain_collision(self):
        coordinator = build_ha_cluster()
        gid = 0
        home = coordinator.shard_of(gid)
        same_dom = next(
            s.shard_id
            for s in coordinator.shards
            if s.shard_id != home
            and s.domain == coordinator.shard(home).domain
        )
        victim = coordinator.replication.replicas_of(gid)[0]
        coordinator.replication.drop_replica(gid, victim)
        coordinator.replication._copy_to(gid, same_dom)
        report = check_cluster(coordinator)
        assert any(
            v.kind == "domain-collision" for v in report.replica_violations
        )
        assert not report.clean

    def test_replication_survives_reshard(self):
        coordinator = build_ha_cluster()
        coordinator.reshard(ScalingOp.add(1))
        report = check_cluster(coordinator)
        assert report.clean and report.fully_replicated
        coordinator.reshard(ScalingOp.remove([0]))
        report = check_cluster(coordinator)
        assert report.clean and report.fully_replicated
        for gid in coordinator.object_ids:
            assert len(coordinator.replication.copies_of(gid)) == 2


class TestFailoverRouting:
    def test_healthy_cluster_routes_home(self):
        coordinator = build_ha_cluster()
        for gid in coordinator.object_ids:
            route = coordinator.route_read(gid)
            assert route.shard_id == coordinator.shard_of(gid)
            assert not route.failed_over
            assert route.attempts == 1 and route.backoff_rounds == 0

    def test_batch_matches_scalar_on_healthy_cluster(self):
        coordinator = build_ha_cluster()
        gids = list(coordinator.object_ids)
        batch = coordinator.route_reads(gids)
        scalar = [coordinator.route_read(g).shard_id for g in gids]
        assert batch.tolist() == scalar

    def test_dead_home_fails_over_to_replica(self):
        coordinator = build_ha_cluster()
        gid = 0
        home = coordinator.shard_of(gid)
        replica = coordinator.replication.replicas_of(gid)[0]
        coordinator.kill_shard(home)
        route = coordinator.route_read(gid)
        assert route.failed_over and route.shard_id == replica
        assert route.path[0] == home  # home considered (and skipped) first
        assert coordinator.failover_reads >= 1

    def test_batch_falls_back_when_degraded(self):
        coordinator = build_ha_cluster()
        coordinator.kill_shard(coordinator.shard_of(0))
        gids = list(coordinator.object_ids)
        batch = coordinator.route_reads(gids)
        scalar = [coordinator.route_read(g).shard_id for g in gids]
        assert batch.tolist() == scalar

    def test_injected_errors_retry_with_backoff(self):
        injector = ClusterFaultInjector(master_seed=3, read_error_rate=0.45)
        coordinator = build_ha_cluster(fault_injector=injector)
        routes = []
        for gid in coordinator.object_ids:
            for _ in range(8):
                try:
                    routes.append(coordinator.route_read(gid))
                except ObjectUnavailableError:
                    pass
        assert any(r.attempts > 1 for r in routes)
        assert any(r.backoff_rounds > 0 for r in routes)
        assert coordinator.failover_retries > 0
        # Every injected failure fed the retry accounting one-for-one.
        assert injector.read_errors == coordinator.failover_retries

    def test_timeout_budget_caps_retries(self):
        # Budget 0: the first retry's backoff already exceeds it, so
        # each copy gets exactly one attempt before falling over.
        injector = ClusterFaultInjector(master_seed=3, read_error_rate=1.0)
        coordinator = build_ha_cluster(
            fault_injector=injector,
            failover=FailoverConfig(max_attempts=5, timeout_budget_rounds=0),
        )
        with pytest.raises(ObjectUnavailableError):
            coordinator.route_read(0)
        assert injector.read_errors == 2  # home + one replica, once each

    def test_timeout_budget_is_route_wide(self):
        # Regression: the budget used to reset per shard, so a long
        # replica chain could wait copies x budget rounds.  One
        # allowance now covers the whole failover path; once spent,
        # each remaining copy gets exactly one backoff-free probe.
        injector = ClusterFaultInjector(master_seed=3, read_error_rate=1.0)
        coordinator = build_ha_cluster(
            fault_injector=injector,
            failover=FailoverConfig(
                max_attempts=10,
                base_backoff_rounds=1,
                max_backoff_rounds=4,
                timeout_budget_rounds=3,
            ),
        )
        with pytest.raises(ObjectUnavailableError):
            coordinator.route_read(0)
        # Home: three attempts (backoffs 1 + 2 spend the budget, the
        # third retry's charge of 4 overflows).  Replica: one probe,
        # not a fresh budget's worth of ten attempts.
        assert injector.read_errors == 4

    def test_unavailable_when_every_copy_dead(self):
        coordinator = build_ha_cluster(num_domains=4)
        gid = 0
        for sid in coordinator.replication.copies_of(gid):
            coordinator.kill_shard(sid)
        with pytest.raises(ObjectUnavailableError):
            coordinator.route_read(gid)

    def test_repeated_failures_trip_breaker(self):
        injector = ClusterFaultInjector(master_seed=5, read_error_rate=1.0)
        coordinator = build_ha_cluster(fault_injector=injector)
        gid = 0
        home = coordinator.shard_of(gid)
        for _ in range(4):
            with pytest.raises(ObjectUnavailableError):
                coordinator.route_read(gid)
        assert coordinator.health.state(home) is ShardHealth.SUSPECT
        assert not coordinator.health.all_unimpeded(coordinator.shard_ids)


class TestShardDeath:
    def test_streams_fail_over_at_position(self):
        coordinator = build_ha_cluster()
        gid = 0
        coordinator.admit_stream(7, gid)
        coordinator.run_rounds(3)
        home = coordinator.shard_of(gid)
        position = stream_on(coordinator.shard(home), 7).position
        assert position > 0
        report = coordinator.kill_shard(home)
        assert report.streams_failed_over == 1
        assert report.streams_stranded == 0
        replica = coordinator.replication.replicas_of(gid)[0]
        moved = stream_on(coordinator.shard(replica), 7)
        assert moved is not None and moved.position == position

    def test_conservation_through_death(self):
        coordinator = build_ha_cluster(num_objects=8)
        for i, gid in enumerate(coordinator.object_ids):
            coordinator.admit_stream(100 + i, gid)
        victim = coordinator.shard_of(0)
        coordinator.run_rounds(2)
        coordinator.kill_shard(victim)
        for _ in range(4):
            report = coordinator.run_round()
            assert report.requested == (
                report.served + report.hiccups + report.queued
            )
            assert report.availability == 1.0  # R=2 covered every stream

    def test_r1_death_strands_and_charges_hiccups(self):
        coordinator = build_ha_cluster(replication_factor=1, num_objects=8)
        for i, gid in enumerate(coordinator.object_ids):
            coordinator.admit_stream(100 + i, gid)
        victim = coordinator.shard_of(0)
        doomed = [
            g for g in coordinator.object_ids
            if coordinator.shard_of(g) == victim
        ]
        report = coordinator.kill_shard(victim)
        assert report.streams_stranded == len(doomed)
        round_report = coordinator.run_round()
        assert round_report.stranded > 0
        assert round_report.availability < 1.0
        assert round_report.requested == (
            round_report.served
            + round_report.hiccups
            + round_report.queued
        )

    def test_kill_rejects_already_dead(self):
        coordinator = build_ha_cluster()
        coordinator.kill_shard(0)
        with pytest.raises(HealthTransitionError):
            coordinator.kill_shard(0)

    def test_dead_shard_refuses_scale_and_reshuffle(self):
        coordinator = build_ha_cluster()
        coordinator.kill_shard(0)
        with pytest.raises(HealthTransitionError):
            coordinator.scale_shard(0, ScalingOp.add(1))
        with pytest.raises(HealthTransitionError):
            coordinator.reshuffle_shard(0)

    def test_depart_stranded_stream(self):
        coordinator = build_ha_cluster(replication_factor=1)
        gid = 0
        coordinator.admit_stream(9, gid)
        coordinator.kill_shard(coordinator.shard_of(gid))
        stream = coordinator.depart_stream(9)
        assert stream.stream_id == 9
        assert coordinator.run_round().stranded == 0


class TestShardRebuild:
    def test_rebuild_restores_full_replication(self):
        coordinator = build_ha_cluster()
        victim = coordinator.shard_of(0)
        coordinator.kill_shard(victim)
        rebuilder = coordinator.begin_shard_rebuild(victim)
        assert coordinator.health.state(victim) is ShardHealth.REBUILDING
        rebuilder.run()
        rebuilder.finish()
        assert victim not in coordinator._shard_by_id
        report = check_cluster(coordinator)
        assert report.clean and report.fully_replicated
        for gid in coordinator.object_ids:
            copies = coordinator.replication.copies_of(gid)
            assert victim not in copies
            assert len(copies) == 2
            domains = {coordinator.shard(s).domain for s in copies}
            assert len(domains) == 2

    def test_rebuild_rate_bounded(self):
        coordinator = build_ha_cluster(num_objects=16)
        victim = coordinator.shard_of(0)
        coordinator.kill_shard(victim)
        rebuilder = coordinator.begin_shard_rebuild(victim, rate_per_round=2)
        total = len(rebuilder.pending.moves)
        assert total > 0
        steps = 0
        while not rebuilder.done:
            assert rebuilder.step() <= 2
            coordinator.run_round()  # rebuild never blocks serving
            steps += 1
        assert steps >= (total + 1) // 2
        assert rebuilder.progress == 1.0
        rebuilder.finish()

    def test_promotion_avoids_copying(self):
        # When the router sends an object to a shard already holding
        # its replica, the rebuild promotes the copy instead of moving
        # blocks — rendezvous overlap makes this the typical case.
        coordinator = build_ha_cluster(num_objects=24)
        victim = coordinator.shard_of(0)
        coordinator.kill_shard(victim)
        rebuilder = coordinator.begin_shard_rebuild(victim)
        promoted = sum(
            1
            for move in rebuilder.pending.moves
            if move.target_shard
            in coordinator.replication.replicas_of(move.object_id)
        )
        assert promoted > 0
        rebuilder.run()
        rebuilder.finish()
        assert check_cluster(coordinator).fully_replicated

    def test_rebuild_requires_dead_shard(self):
        coordinator = build_ha_cluster()
        with pytest.raises(HealthTransitionError):
            coordinator.begin_shard_rebuild(0)

    def test_rebuild_requires_removal_capable_router(self):
        # jump_hash removes tail slots only; a mid-table dead shard
        # cannot be rebuilt and the error leaves the cluster untouched.
        coordinator = build_ha_cluster(
            router_backend="jump_hash", num_domains=4
        )
        coordinator.kill_shard(0)
        with pytest.raises(Exception):
            coordinator.begin_shard_rebuild(0)
        assert coordinator._in_flight is None
        assert coordinator.health.state(0) is ShardHealth.DEAD

    def test_abort_restores_tombstone_homes(self):
        coordinator = build_ha_cluster()
        victim = coordinator.shard_of(0)
        homes_before = dict(coordinator._home)
        coordinator.kill_shard(victim)
        rebuilder = coordinator.begin_shard_rebuild(victim, rate_per_round=1)
        rebuilder.step()
        assert rebuilder.pending.applied
        coordinator.abort_reshard(rebuilder.pending)
        assert coordinator._home == homes_before
        assert coordinator.health.state(victim) is ShardHealth.DEAD
        # A retried rebuild completes cleanly.
        retry = coordinator.begin_shard_rebuild(victim)
        retry.run()
        retry.finish()
        report = check_cluster(coordinator)
        assert report.clean and report.fully_replicated

    def test_kill_mid_rebalance_then_rebuild(self):
        coordinator = build_ha_cluster(num_objects=16)
        pending = coordinator.begin_reshard(ScalingOp.add(1))
        coordinator.migrate_next(pending)
        victim = next(
            sid
            for sid in coordinator.shard_ids
            if sid not in pending.new_shard_ids
        )
        coordinator.kill_shard(victim)
        # The open rebalance completes (dead sources fall back to
        # replicas or promotion), then the dead shard rebuilds.
        coordinator.execute_reshard(pending)
        coordinator.finish_reshard(pending)
        rebuilder = coordinator.begin_shard_rebuild(victim)
        rebuilder.run()
        rebuilder.finish()
        report = check_cluster(coordinator)
        assert report.clean and report.fully_replicated
        assert coordinator.lost_objects == 0

    def test_readmit_restores_capacity(self):
        coordinator = build_ha_cluster()
        victim = coordinator.shard_of(0)
        coordinator.kill_shard(victim)
        coordinator.rebuild_shard(victim)
        assert coordinator.num_shards == 3
        coordinator.readmit_shard()
        assert coordinator.num_shards == 4
        report = check_cluster(coordinator)
        assert report.clean and report.fully_replicated

    def test_r1_rebuild_declares_loss(self):
        coordinator = build_ha_cluster(replication_factor=1)
        victim = coordinator.shard_of(0)
        doomed = [
            g for g in coordinator.object_ids
            if coordinator.shard_of(g) == victim
        ]
        coordinator.kill_shard(victim)
        coordinator.rebuild_shard(victim)
        assert coordinator.lost_objects == len(doomed)
        assert coordinator.lost_blocks == 40 * len(doomed)
        assert all(g not in coordinator.object_ids for g in doomed)
        assert check_cluster(coordinator).clean


class TestJournalLayering:
    def test_reshard_refused_while_shard_scale_open(self, tmp_path):
        coordinator = build_ha_cluster(
            journal=ClusterJournal(str(tmp_path / "cluster.journal"))
        )
        shard = coordinator.shard(1)
        shard_pending = shard.server.begin_scale(ScalingOp.add(1))
        with pytest.raises(OperationInFlightError):
            coordinator.begin_reshard(ScalingOp.add(1))
        # The refusal journaled nothing at the cluster level.
        assert coordinator.journal.replay() == []
        shard.server.abort_scale(shard_pending)
        pending = coordinator.begin_reshard(ScalingOp.add(1))
        coordinator.execute_reshard(pending)
        coordinator.finish_reshard(pending)
        assert coordinator.journal.replay()[-1].committed

    def test_shard_scale_refused_while_reshard_open(self, tmp_path):
        coordinator = build_ha_cluster(
            journal=ClusterJournal(str(tmp_path / "cluster.journal"))
        )
        pending = coordinator.begin_reshard(ScalingOp.add(1))
        with pytest.raises(OperationInFlightError):
            coordinator.scale_shard(1, ScalingOp.add(1))
        with pytest.raises(OperationInFlightError):
            coordinator.reshuffle_shard(1)
        coordinator.execute_reshard(pending)
        coordinator.finish_reshard(pending)
        # Both journals are quiescent afterwards: the cluster record is
        # committed and the per-shard op runs clean.
        assert coordinator.journal.replay()[-1].committed
        coordinator.scale_shard(1, ScalingOp.add(1))

    def test_rebuild_guard_exempts_the_dead_shard(self, tmp_path):
        coordinator = build_ha_cluster(
            journal=ClusterJournal(str(tmp_path / "cluster.journal"))
        )
        coordinator.kill_shard(0)
        # A live shard's open op still blocks the rebuild...
        shard = coordinator.shard(1)
        shard_pending = shard.server.begin_scale(ScalingOp.add(1))
        with pytest.raises(OperationInFlightError):
            coordinator.begin_shard_rebuild(0)
        shard.server.abort_scale(shard_pending)
        # ...but the dead shard itself is exempt from the guard (its
        # frozen server state is never consulted).
        rebuilder = coordinator.begin_shard_rebuild(0)
        rebuilder.run()
        rebuilder.finish()
        assert check_cluster(coordinator).fully_replicated


class TestDeterminism:
    def run_story(self):
        from repro.obs import Obs

        coordinator = build_ha_cluster(obs=Obs())
        for i, gid in enumerate(coordinator.object_ids[:6]):
            coordinator.admit_stream(100 + i, gid)
        coordinator.run_rounds(2)
        victim = coordinator.shard_of(0)
        coordinator.kill_shard(victim)
        rebuilder = coordinator.begin_shard_rebuild(victim)
        while not rebuilder.done:
            rebuilder.step()
            coordinator.run_round()
        rebuilder.finish()
        coordinator.readmit_shard()
        coordinator.run_rounds(2)
        return coordinator

    def test_same_seed_runs_identical(self):
        a = self.run_story()
        b = self.run_story()
        assert a._home == b._home
        assert a._replica_home == b._replica_home
        assert a._replica_local == b._replica_local
        assert merged_deterministic_view(a) == merged_deterministic_view(b)

    def test_streams_keep_playing_through_lifecycle(self):
        coordinator = self.run_story()
        for stream_id in range(100, 106):
            stream = coordinator.depart_stream(stream_id)
            assert stream.state in (StreamState.PLAYING, StreamState.DONE)
