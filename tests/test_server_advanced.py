"""Advanced server scenarios: subsystems interacting under churn."""

from __future__ import annotations

import pytest

from repro.core.operations import ScalingOp
from repro.server.cmserver import CMServer
from repro.server.fsck import check_layout
from repro.server.ingest import IngestSession
from repro.server.online import OnlineScaler
from repro.server.persistence import restore_server, snapshot_server
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream
from repro.storage.block import BlockId
from repro.storage.disk import DiskSpec
from repro.workloads.generator import lognormal_catalog, uniform_catalog


def make_server(num_objects=4, blocks=200, n0=4, bandwidth=8):
    catalog = uniform_catalog(num_objects, blocks, master_seed=0xADA, bits=32)
    spec = DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=bandwidth)
    return CMServer(catalog, [spec] * n0, bits=32, default_spec=spec)


class TestScalingDuringIngest:
    def test_online_scale_while_ingesting(self):
        """Ingest and online scaling interleave without corrupting layout."""
        server = make_server()
        scheduler = RoundScheduler(server.array)
        scheduler.admit(Stream(0, server.catalog.get(0)))
        session = IngestSession(server, "live-load", 120)
        session.step(budget=3)

        scaler = OnlineScaler(server, scheduler)
        report = scaler.scale_online(ScalingOp.add(1))
        assert report.hiccups == 0

        # Finish the ingest after the scale; new blocks land per new AF.
        while not session.done:
            round_report = scheduler.run_round()
            session.step(round_report.spare_by_physical)
        assert check_layout(server).clean

    def test_two_concurrent_ingests(self):
        server = make_server()
        a = IngestSession(server, "title-a", 60)
        b = IngestSession(server, "title-b", 60)
        while not (a.done and b.done):
            a.step(budget=2)
            b.step(budget=2)
        assert server.catalog.get(a.object_id).name == "title-a"
        assert check_layout(server).clean


class TestReshuffleUnderStreams:
    def test_streams_survive_reshuffle(self):
        """A (stop-the-world) reshuffle relocates blocks but streams keep
        their positions and resume cleanly."""
        server = make_server()
        scheduler = RoundScheduler(server.array)
        stream = Stream(0, server.catalog.get(1), start_block=10)
        scheduler.admit(stream)
        scheduler.run_rounds(5)
        consumed_before = stream.blocks_consumed

        server.reshuffle()
        reports = scheduler.run_rounds(5)
        assert stream.blocks_consumed > consumed_before
        assert sum(r.hiccups for r in reports) == 0
        assert check_layout(server).clean


class TestSnapshotChurn:
    def test_snapshot_between_begin_and_finish_is_consistent_after(self):
        """Snapshots taken mid-scale reflect the mapper's committed epoch;
        restoring one yields the post-operation layout (the op log is the
        source of truth, not the in-flight physical state)."""
        server = make_server(blocks=100)
        pending = server.begin_scale(ScalingOp.add(1))
        snap = snapshot_server(server)
        from repro.storage.migration import MigrationSession

        MigrationSession(server.array, pending.plan).run(budget=10_000)
        server.finish_scale(pending)

        restored = restore_server(snap)
        assert restored.num_disks == server.num_disks
        for media in server.catalog:
            for index in (0, 50, 99):
                a = server.array.logical_of(
                    server.block_location(media.object_id, index)
                )
                b = restored.array.logical_of(
                    restored.block_location(media.object_id, index)
                )
                assert a == b

    def test_snapshot_after_object_churn(self):
        server = make_server(num_objects=3, blocks=50)
        server.remove_object(1)
        server.add_object("replacement", 80)
        restored = restore_server(snapshot_server(server))
        assert len(restored.catalog) == 3
        assert restored.total_blocks == server.total_blocks
        assert 1 not in restored.catalog
        assert check_layout(restored).clean


class TestObjectChurnUnderStreams:
    def test_remove_other_object_does_not_disturb_stream(self):
        server = make_server(num_objects=3, blocks=60)
        scheduler = RoundScheduler(server.array)
        stream = Stream(0, server.catalog.get(0))
        scheduler.admit(stream)
        scheduler.run_rounds(3)
        server.remove_object(2)
        reports = scheduler.run_rounds(3)
        assert sum(r.hiccups for r in reports) == 0
        assert stream.blocks_consumed == 6

    def test_lognormal_catalog_server(self):
        catalog = lognormal_catalog(
            8, median_blocks=60, master_seed=0x106, bits=32
        )
        spec = DiskSpec(capacity_blocks=100_000)
        server = CMServer(catalog, [spec] * 4, bits=32, default_spec=spec)
        server.scale(ScalingOp.add(2))
        server.scale(ScalingOp.remove([0]))
        assert check_layout(server).clean
        assert server.total_blocks == catalog.total_blocks


class TestRepeatedBeginFinish:
    def test_sequential_pending_scales(self):
        server = make_server(blocks=100)
        from repro.storage.migration import MigrationSession

        for op in (ScalingOp.add(1), ScalingOp.remove([2]), ScalingOp.add(2)):
            pending = server.begin_scale(op)
            MigrationSession(server.array, pending.plan).run(budget=10_000)
            server.finish_scale(pending)
        assert server.num_disks == 6
        assert check_layout(server).clean

    def test_double_finish_rejected(self):
        server = make_server(blocks=50)
        pending = server.begin_scale(ScalingOp.add(1))
        from repro.storage.migration import MigrationSession

        MigrationSession(server.array, pending.plan).run(budget=10_000)
        server.finish_scale(pending)
        with pytest.raises(ValueError):
            server.finish_scale(pending)


class TestFailoverLocator:
    def test_scheduler_with_mirror_failover_locator(self):
        """A locator can route reads around a failed disk via mirrors
        without touching the scheduler."""
        from repro.server.faults import MirroredPlacement

        server = make_server(num_objects=1, blocks=120, n0=6)
        mirrored = MirroredPlacement(server.mapper)
        failed_logical = 2
        failed_physical = server.array.physical_at(failed_logical)

        def locator(block_id: BlockId) -> int:
            x0 = server._x0[block_id]
            logical = mirrored.read_disk(x0, failed={failed_logical})
            return server.array.physical_at(logical)

        scheduler = RoundScheduler(server.array, locator=locator)
        scheduler.admit(Stream(0, server.catalog.get(0)))
        reports = scheduler.run_rounds(30)
        assert all(
            r.load_by_physical.get(failed_physical, 0) == 0 for r in reports
        )
        assert sum(r.served for r in reports) == 30
