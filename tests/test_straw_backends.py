"""Straw backends as first-class registry citizens.

``straw`` and ``weighted_straw`` are registered placement backends (and
therefore second-level shard routers).  Beyond the generic registry
round-trips in ``test_backends.py``, this file pins down the pieces
specific to them: scalar/batch kernel parity, weight survival through a
payload round-trip, re-weighting semantics, and their use as shard
routers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.router import ShardRouter, routing_keys
from repro.core.operations import ScalingOp
from repro.placement.backends import (
    BACKENDS,
    backend_from_payload,
    make_backend,
)
from repro.placement.straw import StrawPolicy, straw_length, straw_winners
from repro.placement.weighted_straw import WeightedStrawPolicy
from repro.storage.block import BlockId

KEYS = routing_keys(range(4096), salt=0x57AB)


class TestRegistry:
    def test_both_backends_registered(self):
        assert "straw" in BACKENDS
        assert "weighted_straw" in BACKENDS
        assert isinstance(make_backend("straw", n0=5), StrawPolicy)
        assert isinstance(
            make_backend("weighted_straw", n0=5), WeightedStrawPolicy
        )

    def test_names_match_registry_keys(self):
        assert StrawPolicy(3).name == "straw"
        assert WeightedStrawPolicy(3).name == "weighted_straw"


class TestKernelParity:
    @pytest.mark.parametrize("backend", ["straw", "weighted_straw"])
    def test_scalar_matches_batch(self, backend):
        policy = make_backend(backend, n0=7)
        batch = policy.locate_batch(None, KEYS)
        scalar = [
            policy.locate_one(BlockId(i, 0), int(x0))
            for i, x0 in enumerate(KEYS[:256])
        ]
        assert scalar == list(batch[:256])

    def test_winners_match_scalar_straw_lengths(self):
        nodes = [0, 3, 7, 9]
        weights = [1.0, 2.0, 0.5, 1.5]
        winners = straw_winners(KEYS[:128], nodes, weights)
        for x0, winner in zip(KEYS[:128], winners):
            straws = [
                straw_length(int(x0), node, weight)
                for node, weight in zip(nodes, weights)
            ]
            assert int(winner) == straws.index(max(straws))

    def test_unit_weights_match_unweighted(self):
        nodes = list(range(6))
        assert np.array_equal(
            straw_winners(KEYS, nodes),
            straw_winners(KEYS, nodes, [1.0] * 6),
        )

    def test_straw_length_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            straw_length(123, 0, 0.0)
        with pytest.raises(ValueError):
            straw_length(123, 0, -1.0)


class TestWeightedPayload:
    def test_weights_survive_round_trip(self):
        policy = WeightedStrawPolicy(4, weights=[1.0, 2.0, 0.5, 4.0])
        policy.apply(ScalingOp.add(2))
        policy.set_weight(4, 3.0)
        restored = backend_from_payload(
            "weighted_straw", policy.state_payload()
        )
        assert restored.current_disks == policy.current_disks
        assert [
            restored.weight_of(i) for i in range(restored.current_disks)
        ] == [policy.weight_of(i) for i in range(policy.current_disks)]
        assert np.array_equal(
            restored.locate_batch(None, KEYS),
            policy.locate_batch(None, KEYS),
        )

    def test_round_trip_after_removal(self):
        policy = WeightedStrawPolicy(5, weights=[1, 2, 3, 4, 5])
        policy.apply(ScalingOp.remove([1, 3]))
        restored = backend_from_payload(
            "weighted_straw", policy.state_payload()
        )
        assert [restored.weight_of(i) for i in range(3)] == [1.0, 3.0, 5.0]
        assert np.array_equal(
            restored.locate_batch(None, KEYS),
            policy.locate_batch(None, KEYS),
        )

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            WeightedStrawPolicy(3, weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            WeightedStrawPolicy(2, weights=[1.0, 0.0])


class TestReweighting:
    def test_heavier_member_attracts_load(self):
        policy = WeightedStrawPolicy(4)
        before = np.bincount(policy.locate_batch(None, KEYS), minlength=4)
        policy.set_weight(2, 8.0)
        after = np.bincount(policy.locate_batch(None, KEYS), minlength=4)
        assert after[2] > before[2] * 2
        # Blocks never move between the *other* members when one is
        # re-weighted upward: straws elsewhere are unchanged.
        moved_elsewhere = np.logical_and(
            policy.locate_batch(None, KEYS)
            != straw_winners(KEYS, [0, 1, 2, 3]),
            policy.locate_batch(None, KEYS) != 2,
        )
        assert not moved_elsewhere.any()

    def test_set_weight_rejects_nonpositive(self):
        policy = WeightedStrawPolicy(3)
        with pytest.raises(ValueError):
            policy.set_weight(0, 0.0)


class TestMinimalMovement:
    @pytest.mark.parametrize("backend", ["straw", "weighted_straw"])
    def test_add_only_pulls_to_new_disk(self, backend):
        policy = make_backend(backend, n0=6)
        before = policy.locate_batch(None, KEYS)
        policy.apply(ScalingOp.add(1))
        after = policy.locate_batch(None, KEYS)
        changed = before != after
        assert (after[changed] == 6).all()
        # Near the fair share 1/7 of blocks.
        assert 0.5 / 7 < changed.mean() < 2.0 / 7

    @pytest.mark.parametrize("backend", ["straw", "weighted_straw"])
    def test_arbitrary_removal_only_moves_orphans(self, backend):
        policy = make_backend(backend, n0=6)
        before = policy.locate_batch(None, KEYS)
        policy.apply(ScalingOp.remove([2]))
        after = policy.locate_batch(None, KEYS)
        # Survivors re-compact: logical index shifts down above slot 2.
        expected = np.where(before > 2, before - 1, before)
        stayed = before != 2
        assert np.array_equal(after[stayed], expected[stayed])


class TestAsShardRouter:
    @pytest.mark.parametrize("backend", ["straw", "weighted_straw"])
    def test_router_round_trip(self, backend):
        router = ShardRouter.create(backend, 5)
        gids = list(range(512))
        router.register(gids)
        router.plan_moves(ScalingOp.add(1), gids)
        restored = ShardRouter.from_payload(router.state_payload())
        assert restored.policy.name == backend
        assert np.array_equal(restored.slots_of(gids), router.slots_of(gids))

    def test_weighted_router_skews_shard_load(self):
        router = ShardRouter.create("weighted_straw", 4)
        gids = list(range(8192))
        router.register(gids)
        router.policy.set_weight(0, 4.0)
        loads = np.bincount(router.slots_of(gids), minlength=4)
        assert loads[0] > 2 * loads[1:].mean()
