"""Unit + invariant tests for the CMServer facade."""

from __future__ import annotations

import pytest

from repro.core.errors import RandomnessExhaustedError
from repro.core.operations import ScalingOp
from repro.server.cmserver import CMServer
from repro.server.objects import ObjectCatalog
from repro.storage.block import BlockId
from repro.storage.disk import DiskSpec
from repro.workloads.generator import uniform_catalog


def make_server(num_objects=4, blocks=200, n0=4, bits=32):
    catalog = uniform_catalog(num_objects, blocks, master_seed=0xFACE, bits=bits)
    spec = DiskSpec(capacity_blocks=100_000)
    return CMServer(catalog, [spec] * n0, bits=bits, default_spec=spec)


def assert_af_matches_inventory(server):
    """The core invariant: AF() computes where the bytes actually are."""
    for media in server.catalog:
        for index in range(0, media.num_blocks, 17):
            block_id = BlockId(media.object_id, index)
            assert server.block_location(media.object_id, index) == (
                server.array.home_of(block_id)
            )


class TestConstruction:
    def test_loads_all_blocks(self):
        server = make_server()
        assert server.total_blocks == 4 * 200
        assert server.num_disks == 4
        assert_af_matches_inventory(server)

    def test_bits_mismatch_rejected(self):
        catalog = ObjectCatalog(bits=64)
        with pytest.raises(ValueError):
            CMServer(catalog, [DiskSpec()] * 2, bits=32)

    def test_initial_placement_is_mod_n(self):
        server = make_server()
        media = server.catalog.get(0)
        block = media.block(0)
        expected_logical = block.x0 % 4
        assert server.block_location(0, 0) == server.array.physical_at(
            expected_logical
        )


class TestObjectLifecycle:
    def test_add_object_places_blocks(self):
        server = make_server(num_objects=1, blocks=10)
        server.add_object("late", 25)
        assert server.total_blocks == 35
        assert_af_matches_inventory(server)

    def test_remove_object_frees_blocks(self):
        server = make_server(num_objects=2, blocks=10)
        server.remove_object(0)
        assert server.total_blocks == 10
        with pytest.raises(KeyError):
            server.array.home_of(BlockId(0, 0))

    def test_block_location_uncached_falls_back_to_seed(self):
        server = make_server(num_objects=1, blocks=10)
        server._x0.clear()  # simulate cold cache
        assert server.block_location(0, 3) == server.array.home_of(BlockId(0, 3))


class TestScaling:
    def test_addition_moves_optimal_fraction(self):
        server = make_server(blocks=2_000)
        report = server.scale(ScalingOp.add(1))
        assert report.n_before == 4
        assert report.n_after == 5
        assert abs(report.moved_fraction - 0.2) < 0.03
        assert float(report.optimal_fraction) == pytest.approx(0.2)
        assert_af_matches_inventory(server)

    def test_addition_attaches_given_specs(self):
        server = make_server()
        fancy = DiskSpec(capacity_blocks=50_000, bandwidth_blocks_per_round=16)
        server.scale(ScalingOp.add(2), specs=[fancy, fancy])
        assert server.num_disks == 6
        new_pid = server.array.physical_at(5)
        assert server.array.disk(new_pid).bandwidth_blocks_per_round == 16

    def test_spec_count_mismatch(self):
        server = make_server()
        with pytest.raises(ValueError):
            server.scale(ScalingOp.add(2), specs=[DiskSpec()])

    def test_removal_detaches_and_moves(self):
        server = make_server(blocks=2_000)
        victim_pid = server.array.physical_at(1)
        report = server.scale(ScalingOp.remove([1]))
        assert server.num_disks == 3
        assert victim_pid not in server.array.physical_ids
        assert abs(report.moved_fraction - 0.25) < 0.03
        assert_af_matches_inventory(server)

    def test_removal_specs_rejected(self):
        server = make_server()
        with pytest.raises(ValueError):
            server.scale(ScalingOp.remove([0]), specs=[DiskSpec()])

    def test_scale_with_eps_guard(self):
        server = make_server(bits=32)
        for __ in range(8):
            server.scale(ScalingOp.add(1), eps=0.05)
        with pytest.raises(RandomnessExhaustedError):
            server.scale(ScalingOp.add(1), eps=0.05)
        assert server.num_disks == 12

    def test_mixed_schedule_preserves_invariant(self):
        server = make_server(blocks=500)
        for op in (
            ScalingOp.add(2),
            ScalingOp.remove([0, 3]),
            ScalingOp.add(1),
            ScalingOp.remove([2]),
        ):
            server.scale(op)
            assert_af_matches_inventory(server)
        assert server.num_disks == 4

    def test_begin_finish_split(self):
        server = make_server(blocks=500)
        pending = server.begin_scale(ScalingOp.remove([1]))
        # Disks stay attached until finish.
        assert server.num_disks == 4
        from repro.storage.migration import MigrationSession

        MigrationSession(server.array, pending.plan).run(budget=10_000)
        server.finish_scale(pending)
        assert server.num_disks == 3
        with pytest.raises(ValueError):
            server.finish_scale(pending)

    def test_load_vector_sums_to_total(self):
        server = make_server()
        server.scale(ScalingOp.add(3))
        assert sum(server.load_vector()) == server.total_blocks


class TestBlockLocations:
    """Whole-object AF() must agree with the per-block scalar path."""

    def assert_matches_per_block(self, server):
        for media in server.catalog:
            homes = server.block_locations(media.object_id)
            assert len(homes) == media.num_blocks
            assert homes == [
                server.block_location(media.object_id, index)
                for index in range(media.num_blocks)
            ]

    def test_matches_block_location_initially(self):
        server = make_server(num_objects=3, blocks=50)
        self.assert_matches_per_block(server)

    def test_matches_after_mixed_scaling(self):
        server = make_server(num_objects=2, blocks=120)
        for op in (ScalingOp.add(2), ScalingOp.remove([1]), ScalingOp.add(1)):
            server.scale(op)
            self.assert_matches_per_block(server)

    def test_matches_after_reshuffle(self):
        server = make_server(num_objects=2, blocks=60)
        server.scale(ScalingOp.add(1))
        server.reshuffle()
        self.assert_matches_per_block(server)

    def test_cold_cache_falls_back_to_seeds(self):
        server = make_server(num_objects=1, blocks=30)
        server._x0.clear()
        self.assert_matches_per_block(server)

    def test_unknown_object_raises(self):
        server = make_server(num_objects=1, blocks=10)
        with pytest.raises(KeyError):
            server.block_locations(99)


class TestReshuffle:
    def test_reshuffle_resets_budget_and_moves_blocks(self):
        server = make_server(blocks=500)
        for __ in range(8):
            server.scale(ScalingOp.add(1), eps=0.05)
        assert server.mapper.remaining_operations(0.05) == 0
        moved = server.reshuffle()
        assert moved > 0
        assert server.reshuffles == 1
        assert server.mapper.num_operations == 0
        assert server.mapper.remaining_operations(0.05) > 0
        assert_af_matches_inventory(server)

    def test_needs_reshuffle_reporting(self):
        server = make_server(bits=16)
        assert not server.needs_reshuffle(0.05)
        for __ in range(6):
            server.scale(ScalingOp.add(1))
        assert server.needs_reshuffle(0.05)

    def test_reshuffle_preserves_block_population(self):
        server = make_server(num_objects=2, blocks=100)
        before_total = server.total_blocks
        server.reshuffle()
        assert server.total_blocks == before_total
        assert sum(server.load_vector()) == before_total
