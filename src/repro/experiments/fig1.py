"""Experiment Fig-1: the naive scheme's RO2 violation (Section 4.1).

Reproduces Figure 1 exactly: 44 blocks with ``X0 = 0..43`` on ``N0 = 4``
disks, then two single-disk additions.  After the first addition the
blocks moving to disk 4 come from every old disk; after the second,
blocks arrive on disk 5 *only* from disks 1, 3 and 4 — disks 0 and 2 are
ignored, the paper's demonstration that reusing the same random bits
breaks RO2.  (Structurally: the op-2 movers satisfy ``X0 = 6t + 5``,
which is odd, so ``X0 mod 4`` can only be 1 or 3.)

The experiment also sweeps a large random population through the same
schedule to show the violation is population-independent for the naive
scheme, while SCADDAR's op-2 movers come from *all* old disks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.naive import naive_remap_chain
from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.experiments.tables import format_table
from repro.workloads.generator import random_x0s

#: The Figure 1 population: random numbers 0..43 (the figure lists the
#: X0 values themselves under each disk).
FIG1_BLOCKS = tuple(range(44))
FIG1_N0 = 4


@dataclass(frozen=True)
class Fig1Result:
    """Layouts after each stage plus the op-2 contribution analysis."""

    #: stage -> disk -> sorted X0 values (stages: initial, +1 disk, +1 disk)
    naive_layouts: tuple[dict[int, list[int]], ...]
    #: disks contributing blocks to disk 5 at op 2 (naive, Figure 1 blocks)
    naive_contributors: tuple[int, ...]
    #: disks contributing at op 2 (naive, large random population)
    naive_contributors_random: tuple[int, ...]
    #: disks contributing at op 2 (SCADDAR, large random population)
    scaddar_contributors_random: tuple[int, ...]
    #: per-paper expectation: only disks 1, 3 and 4 contribute
    paper_contributors: tuple[int, ...] = (1, 3, 4)


def _layout(disks: int, placement: dict[int, int]) -> dict[int, list[int]]:
    layout: dict[int, list[int]] = {d: [] for d in range(disks)}
    for x0, disk in placement.items():
        layout[disk].append(x0)
    return {d: sorted(xs) for d, xs in layout.items()}


def _op2_contributors_naive(x0s) -> tuple[int, ...]:
    counts = [FIG1_N0, FIG1_N0 + 1, FIG1_N0 + 2]
    sources = set()
    for x0 in x0s:
        chain = naive_remap_chain(x0, counts)
        if chain[2] == counts[2] - 1 and chain[1] != chain[2]:
            sources.add(chain[1])
    return tuple(sorted(sources))


def _op2_contributors_scaddar(x0s, bits: int = 32) -> tuple[int, ...]:
    mapper = ScaddarMapper(n0=FIG1_N0, bits=bits)
    mapper.apply(ScalingOp.add(1))
    after_one = {x0: mapper.disk_of(x0) for x0 in x0s}
    mapper.apply(ScalingOp.add(1))
    sources = set()
    for x0 in x0s:
        new_disk = mapper.disk_of(x0)
        if new_disk == FIG1_N0 + 1 and after_one[x0] != new_disk:
            sources.add(after_one[x0])
    return tuple(sorted(sources))


def run_fig1(random_population: int = 20_000, seed: int = 0xF161) -> Fig1Result:
    """Run the Figure 1 scenario for both schemes."""
    counts = [FIG1_N0, FIG1_N0 + 1, FIG1_N0 + 2]
    chains = {x0: naive_remap_chain(x0, counts) for x0 in FIG1_BLOCKS}
    layouts = tuple(
        _layout(counts[stage], {x0: chain[stage] for x0, chain in chains.items()})
        for stage in range(3)
    )
    population = random_x0s(random_population, bits=32, seed=seed)
    return Fig1Result(
        naive_layouts=layouts,
        naive_contributors=_op2_contributors_naive(FIG1_BLOCKS),
        naive_contributors_random=_op2_contributors_naive(population),
        scaddar_contributors_random=_op2_contributors_scaddar(population),
    )


def report(result: Fig1Result | None = None) -> str:
    """Human-readable reproduction of Figure 1."""
    result = result or run_fig1()
    sections = []
    stage_names = (
        "a) initial state (4 disks)",
        "b) after 1st 1-disk addition",
        "c) after 2nd 1-disk addition",
    )
    for name, layout in zip(stage_names, result.naive_layouts):
        rows = [
            (f"disk {disk}", " ".join(str(x) for x in xs))
            for disk, xs in sorted(layout.items())
        ]
        sections.append(name + "\n" + format_table(("disk", "X0 values"), rows))
    sections.append(
        "op-2 source disks, naive, Figure 1 blocks: "
        + str(list(result.naive_contributors))
        + f"  <- paper: {list(result.paper_contributors)} (disks 0, 2 ignored)"
    )
    sections.append(
        "op-2 source disks, naive, random blocks:   "
        + str(list(result.naive_contributors_random))
        + "  (violation is structural, not sampling)"
    )
    sections.append(
        "op-2 source disks, SCADDAR, random blocks: "
        + str(list(result.scaddar_contributors_random))
        + "  (all old disks contribute)"
    )
    return "\n\n".join(sections)


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_fig1
