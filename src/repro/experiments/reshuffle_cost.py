"""Experiment AMO: total movement cost, reshuffles included.

SCADDAR's budget is finite — after ~k operations a *full* redistribution
is required (Section 4.3), and that reshuffle moves nearly every block.
Skeptical question: over a long horizon, does SCADDAR still beat
complete redistribution once its own reshuffles are billed?

The harness drives a long single-disk-addition schedule under three
strategies and sums every physical block-move:

* **scaddar+reshuffle** — incremental REMAPs; when Lemma 4.3 says stop,
  reshuffle (fresh seeds, ~everything moves) and continue;
* **complete** — ``X0 mod Nj``: a near-total reshuffle at *every* op;
* **optimal** — the information-theoretic floor ``sum z_j`` (what the
  directory baseline achieves with O(blocks) state).

Expected shape: SCADDAR's amortized cost sits near the optimal floor
plus one reshuffle per ~k operations — far below complete redistribution
— and the gap widens with ``b`` (more budget between reshuffles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.operations import OperationLog, ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.core.vectorized import disks_array
from repro.experiments.tables import format_table
from repro.workloads.generator import random_x0s


@dataclass(frozen=True)
class StrategyCost:
    """Total movement bill of one strategy over the horizon."""

    strategy: str
    operations: int
    reshuffles: int
    #: total block-moves over the horizon, divided by the population
    total_moved_fraction: float
    #: the optimal floor sum(z_j) for the same schedule
    optimal_fraction: float

    @property
    def overhead(self) -> float:
        """Total cost over the optimal floor."""
        return (
            self.total_moved_fraction / self.optimal_fraction
            if self.optimal_fraction
            else 0.0
        )


@dataclass(frozen=True)
class ReshuffleCostResult:
    """All strategies' bills for one configuration."""

    bits: int
    eps: float
    n0: int
    operations: int
    strategies: tuple[StrategyCost, ...]


def _scaddar_with_reshuffles(
    n0: int, operations: int, bits: int, eps: float, num_blocks: int, seed: int
) -> tuple[int, float]:
    """Returns (reshuffles, total moved fraction)."""
    x0s = np.asarray(random_x0s(num_blocks, bits=bits, seed=seed), dtype=np.uint64)
    mapper = ScaddarMapper(n0=n0, bits=bits)
    log = OperationLog(n0=n0)
    current = disks_array(x0s, log)
    moves = 0
    reshuffles = 0
    seed_epoch = seed
    for __ in range(operations):
        op = ScalingOp.add(1)
        if not mapper.can_apply(op, eps):
            # Full redistribution: fresh sequences, budget reset.
            reshuffles += 1
            seed_epoch += 1
            x0s = np.asarray(
                random_x0s(num_blocks, bits=bits, seed=seed_epoch),
                dtype=np.uint64,
            )
            mapper = ScaddarMapper(n0=mapper.current_disks, bits=bits)
            log = OperationLog(n0=mapper.current_disks)
            fresh = disks_array(x0s, log)
            moves += int(np.count_nonzero(fresh != current))
            current = fresh
        mapper.apply(op)
        log.append(op)
        after = disks_array(x0s, log)
        moves += int(np.count_nonzero(after != current))
        current = after
    return reshuffles, moves / num_blocks


def _complete_every_op(
    n0: int, operations: int, bits: int, num_blocks: int, seed: int
) -> float:
    x0s = np.asarray(random_x0s(num_blocks, bits=bits, seed=seed), dtype=np.uint64)
    moves = 0
    n = n0
    current = (x0s % np.uint64(n)).astype(np.int64)
    for __ in range(operations):
        n += 1
        after = (x0s % np.uint64(n)).astype(np.int64)
        moves += int(np.count_nonzero(after != current))
        current = after
    return moves / num_blocks


def run_reshuffle_cost(
    n0: int = 4,
    operations: int = 30,
    bits_options: tuple[int, ...] = (32, 64),
    eps: float = 0.05,
    num_blocks: int = 30_000,
    seed: int = 0x4E5,
) -> list[ReshuffleCostResult]:
    """Bill the three strategies over the horizon, per bit width."""
    results = []
    optimal = sum(1 / (n0 + j) for j in range(1, operations + 1))
    complete = _complete_every_op(n0, operations, 32, num_blocks, seed)
    for bits in bits_options:
        reshuffles, scaddar_cost = _scaddar_with_reshuffles(
            n0, operations, bits, eps, num_blocks, seed
        )
        strategies = (
            StrategyCost(
                strategy=f"scaddar+reshuffle (b={bits})",
                operations=operations,
                reshuffles=reshuffles,
                total_moved_fraction=scaddar_cost,
                optimal_fraction=optimal,
            ),
            StrategyCost(
                strategy="complete redistribution",
                operations=operations,
                reshuffles=operations,
                total_moved_fraction=complete,
                optimal_fraction=optimal,
            ),
            StrategyCost(
                strategy="optimal floor (directory)",
                operations=operations,
                reshuffles=0,
                total_moved_fraction=optimal,
                optimal_fraction=optimal,
            ),
        )
        results.append(
            ReshuffleCostResult(
                bits=bits,
                eps=eps,
                n0=n0,
                operations=operations,
                strategies=strategies,
            )
        )
    return results


def report(results: list[ReshuffleCostResult] | None = None) -> str:
    """Render the amortized-cost comparison."""
    results = results if results is not None else run_reshuffle_cost()
    sections = []
    for result in results:
        rows = [
            (
                s.strategy,
                s.operations,
                s.reshuffles,
                s.total_moved_fraction,
                s.overhead,
            )
            for s in result.strategies
        ]
        table = format_table(
            (
                "strategy",
                "ops",
                "reshuffles",
                "total moved (x population)",
                "overhead vs floor",
            ),
            rows,
        )
        sections.append(
            f"{result.n0} -> {result.n0 + result.operations} disks, "
            f"b={result.bits}, eps={result.eps}\n{table}"
        )
    return (
        "\n\n".join(sections)
        + "\neven billing its periodic reshuffles, SCADDAR moves a fraction"
        " of complete redistribution's traffic, and wider sequences"
        " stretch the interval between reshuffles"
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_reshuffle_cost
