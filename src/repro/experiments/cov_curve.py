"""Experiment 5.1: coefficient of variation vs scaling operations.

Section 5's simulation: 20 objects, ``b = 32``, tolerance ``eps = 5%``,
successive scaling operations averaging ``nbar ~ 8`` disks.  The paper
reports that under SCADDAR the disks stay "fairly equivalent" in load,
with a slight CoV increase per operation (the shrinking random range)
that grows faster than the complete-redistribution curve, and that after
eight operations the threshold is reached and a full redistribution is
recommended.

The harness walks ``N0 = 4`` through eight single-disk additions (average
disk count 8), recording for each prefix:

* the empirical CoV of blocks/disk under SCADDAR,
* the empirical CoV under complete redistribution (``X0 mod Nj``),
* the analytic unfairness bound (Lemma 4.2),
* whether Lemma 4.3 still holds at ``eps``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import coefficient_of_variation
from repro.core.bounds import lemma_43_allows
from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.core.vectorized import load_vector_array
from repro.experiments.tables import format_table
from repro.workloads.generator import uniform_catalog


@dataclass(frozen=True)
class CovPoint:
    """One schedule prefix of the CoV curve."""

    operations: int
    disks: int
    cov_scaddar: float
    cov_complete: float
    unfairness_bound: float
    within_tolerance: bool


@dataclass(frozen=True)
class CovCurveResult:
    """The full curve plus the derived operation budget."""

    points: tuple[CovPoint, ...]
    eps: float
    bits: int
    #: Largest operation count with Lemma 4.3 satisfied (paper: 8).
    budget: int


def run_cov_curve(
    num_objects: int = 20,
    blocks_per_object: int = 2_500,
    n0: int = 4,
    operations: int = 10,
    bits: int = 32,
    eps: float = 0.05,
    master_seed: int = 0xCADDA,
) -> CovCurveResult:
    """Walk the Section 5 schedule and record the CoV curve.

    The default runs two operations *past* the paper's budget of eight so
    the table shows the tolerance being crossed.
    """
    catalog = uniform_catalog(
        num_objects, blocks_per_object, master_seed=master_seed, bits=bits
    )
    x0s = np.asarray(
        [block.x0 for block in catalog.all_blocks()], dtype=np.uint64
    )
    mapper = ScaddarMapper(n0=n0, bits=bits)

    points = []
    budget = 0
    for j in range(operations + 1):
        if j > 0:
            mapper.apply(ScalingOp.add(1))
        n = mapper.current_disks
        loads_scaddar = load_vector_array(x0s, mapper.log).tolist()
        loads_complete = np.bincount(
            (x0s % np.uint64(n)).astype(np.int64), minlength=n
        ).tolist()
        within = lemma_43_allows(mapper.range_size, mapper.product_n(), eps)
        if within:
            budget = j
        points.append(
            CovPoint(
                operations=j,
                disks=n,
                cov_scaddar=coefficient_of_variation(loads_scaddar),
                cov_complete=coefficient_of_variation(loads_complete),
                unfairness_bound=mapper.unfairness_bound(),
                within_tolerance=within,
            )
        )
    return CovCurveResult(points=tuple(points), eps=eps, bits=bits, budget=budget)


def report(result: CovCurveResult | None = None) -> str:
    """Render the CoV curve as a table."""
    result = result or run_cov_curve()
    rows = [
        (
            p.operations,
            p.disks,
            p.cov_scaddar,
            p.cov_complete,
            p.unfairness_bound,
            p.within_tolerance,
        )
        for p in result.points
    ]
    table = format_table(
        (
            "ops j",
            "disks Nj",
            "CoV scaddar",
            "CoV complete",
            "unfairness bound",
            f"within eps={result.eps}",
        ),
        rows,
    )
    paper_note = (
        " (paper: 8)" if result.bits == 32 and result.eps == 0.05 else ""
    )
    summary = (
        f"\noperation budget at eps={result.eps}, b={result.bits}: "
        f"{result.budget} operations{paper_note}"
    )
    return table + summary


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_cov_curve
