"""Experiment S6c (future work): parity groups vs offset mirroring.

Section 6 closes with: "We also plan to investigate using data parity
bits to handle faults with less required storage space."  This ablation
implements that comparison:

* **storage overhead** — mirroring duplicates everything (100 %); parity
  adds one block per ``k`` (25 % at k=4);
* **degraded reads** — a read of a lost block costs 1 I/O from the
  mirror but ``k`` I/Os to XOR the survivors;
* **recovery spread** — mirroring dumps the failed disk's whole load on
  one partner; parity spreads reconstruction over all survivors (the
  distinct-disk rule).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.experiments.tables import format_table
from repro.server.faults import MirroredPlacement
from repro.server.parity import ParityPlacement, recovery_reads, survives_single_failure
from repro.workloads.generator import random_x0s


@dataclass(frozen=True)
class SchemeRow:
    """Fault-tolerance score card for one scheme."""

    scheme: str
    storage_overhead: float
    degraded_read_ios: int
    survives_single_failure: bool
    #: max over surviving disks of recovery reads / mean recovery reads
    recovery_skew: float
    unprotected_blocks: int


@dataclass(frozen=True)
class ParityVsMirrorResult:
    """The comparison table plus workload facts."""

    blocks: int
    disks: int
    k: int
    rows: tuple[SchemeRow, ...]


def _mirror_row(mapper: ScaddarMapper, x0s: list[int]) -> SchemeRow:
    mirrored = MirroredPlacement(mapper)
    failed = 0
    loads = mirrored.failover_load(x0s, failed)
    # Recovery = re-copying the lost replicas from their partners; the
    # interesting skew is already visible in failover reads.
    survivors = {d: v for d, v in loads.items() if d != failed}
    mean = sum(survivors.values()) / len(survivors)
    return SchemeRow(
        scheme="mirror (offset Nj/2)",
        storage_overhead=1.0,
        degraded_read_ios=1,
        survives_single_failure=all(
            mirrored.tolerates_failure(x0, d)
            for x0 in x0s[:500]
            for d in range(mirrored.num_disks)
        ),
        recovery_skew=max(survivors.values()) / mean if mean else 0.0,
        unprotected_blocks=0,
    )


def _parity_row(mapper: ScaddarMapper, x0s: list[int], k: int) -> SchemeRow:
    placement = ParityPlacement(mapper, k=k)
    layout = placement.build_layout(x0s)
    reads = recovery_reads(layout, failed_disk=0)
    mean = sum(reads.values()) / len(reads) if reads else 0.0
    return SchemeRow(
        scheme=f"parity (k={k})",
        storage_overhead=layout.storage_overhead,
        degraded_read_ios=k,
        survives_single_failure=survives_single_failure(layout),
        recovery_skew=max(reads.values()) / mean if mean else 0.0,
        unprotected_blocks=len(layout.ungrouped),
    )


def run_parity_vs_mirror(
    num_blocks: int = 20_000,
    n0: int = 4,
    operations: int = 4,
    k: int = 4,
    bits: int = 32,
    seed: int = 0x9A417,
) -> ParityVsMirrorResult:
    """Build both schemes over one scaled placement and score them."""
    mapper = ScaddarMapper(n0=n0, bits=bits)
    for __ in range(operations):
        mapper.apply(ScalingOp.add(1))
    x0s = random_x0s(num_blocks, bits=bits, seed=seed)
    return ParityVsMirrorResult(
        blocks=num_blocks,
        disks=mapper.current_disks,
        k=k,
        rows=(
            _mirror_row(mapper, x0s),
            _parity_row(mapper, x0s, k),
        ),
    )


def report(result: ParityVsMirrorResult | None = None) -> str:
    """Render the comparison."""
    result = result or run_parity_vs_mirror()
    table = format_table(
        (
            "scheme",
            "storage overhead",
            "degraded-read I/Os",
            "single failure safe",
            "recovery skew (max/mean)",
            "unprotected blocks",
        ),
        [
            (
                r.scheme,
                r.storage_overhead,
                r.degraded_read_ios,
                r.survives_single_failure,
                r.recovery_skew,
                r.unprotected_blocks,
            )
            for r in result.rows
        ],
    )
    return (
        f"{result.blocks} blocks on {result.disks} disks\n"
        + table
        + "\nparity buys 4x less storage overhead for k-fold degraded reads"
        " and spreads recovery over all survivors"
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_parity_vs_mirror
