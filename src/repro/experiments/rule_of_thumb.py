"""Experiment 5.2: the Section 4.3 rule-of-thumb operation budget.

Regenerates the paper's worked examples and a parameter sweep:

* ``b = 64``, ``eps = 1%``, ``nbar = 16``  ->  ``k = 13``;
* ``b = 32``, ``eps = 5%``, ``nbar = 8``   ->  ``k = 8``;

and cross-checks each rule-of-thumb value against the *exact* budget from
tracking ``Pi_k`` explicitly for a concrete single-disk-addition schedule
whose average disk count matches ``nbar`` (the paper's own advice: "keep
track of the quantity Pi_k explicitly").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import exact_max_operations, rule_of_thumb_max_operations
from repro.experiments.tables import format_table


@dataclass(frozen=True)
class RuleOfThumbRow:
    """One (b, eps, nbar) configuration of the budget table."""

    bits: int
    eps: float
    nbar: float
    rule_of_thumb_k: int
    #: exact budget when every epoch has exactly nbar disks — the
    #: schedule whose geometric mean the rule of thumb assumes
    exact_constant_k: int
    #: exact budget for the schedule N0 = nbar - ops/2 growing by +1/op
    exact_k: int
    paper_k: int | None = None


#: The paper's two worked examples (bits, eps, nbar, expected k).
PAPER_EXAMPLES = ((64, 0.01, 16.0, 13), (32, 0.05, 8.0, 8))

#: Sweep grid for the wider table.
SWEEP = tuple(
    (bits, eps, float(nbar))
    for bits in (16, 32, 48, 64)
    for eps in (0.01, 0.05, 0.10)
    for nbar in (4, 8, 16, 64)
)


def _matched_schedule_n0(nbar: float, rule_k: int) -> int:
    """Initial disk count whose +1/op schedule averages roughly ``nbar``.

    For ``k`` single-disk additions the average count is about
    ``n0 + k/2``, so start at ``nbar - k/2`` (at least 2).
    """
    return max(2, int(round(nbar - max(rule_k, 0) / 2)))


def run_rule_of_thumb() -> list[RuleOfThumbRow]:
    """Build the budget table: paper examples first, then the sweep."""
    rows: list[RuleOfThumbRow] = []
    for bits, eps, nbar, paper_k in PAPER_EXAMPLES:
        rows.append(_row(bits, eps, nbar, paper_k))
    for bits, eps, nbar in SWEEP:
        rows.append(_row(bits, eps, nbar, None))
    return rows


def _exact_constant(bits: int, eps: float, nbar: float) -> int:
    """Largest ``k`` with ``nbar**(k+1) <= R0 * eps / (1 + eps)``."""
    from fractions import Fraction

    limit = Fraction(1 << bits) * Fraction(eps).limit_denominator(10**9)
    limit /= 1 + Fraction(eps).limit_denominator(10**9)
    n = Fraction(nbar).limit_denominator(10**6)
    pi = n
    k = -1
    while pi <= limit:
        k += 1
        pi *= n
    return k


def _row(bits: int, eps: float, nbar: float, paper_k: int | None) -> RuleOfThumbRow:
    rule_k = rule_of_thumb_max_operations(bits, eps, nbar)
    n0 = _matched_schedule_n0(nbar, rule_k)
    exact_k = exact_max_operations(1 << bits, n0, eps)
    return RuleOfThumbRow(
        bits=bits,
        eps=eps,
        nbar=nbar,
        rule_of_thumb_k=rule_k,
        exact_constant_k=_exact_constant(bits, eps, nbar),
        exact_k=exact_k,
        paper_k=paper_k,
    )


def report(rows: list[RuleOfThumbRow] | None = None) -> str:
    """Render the budget table."""
    rows = rows if rows is not None else run_rule_of_thumb()
    table_rows = [
        (
            r.bits,
            r.eps,
            r.nbar,
            r.rule_of_thumb_k,
            r.exact_constant_k,
            r.exact_k,
            "-" if r.paper_k is None else str(r.paper_k),
        )
        for r in rows
    ]
    return format_table(
        (
            "b",
            "eps",
            "nbar",
            "rule-of-thumb k",
            "exact k (const nbar)",
            "exact k (+1 growth)",
            "paper k",
        ),
        table_rows,
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_rule_of_thumb
