"""Experiment ONL: online scaling under live streaming load.

The paper's motivation (Section 1): scaling must not interrupt service.
The harness loads a server, admits streams up to a target utilization,
then performs a disk addition *online* — migration only spends bandwidth
streams leave idle each round — and compares against the stop-the-world
alternative (streams paused while the same moves run at full bandwidth):

* online: hiccups should be zero; the cost is migration stretched over
  more rounds;
* stop-the-world: migration finishes fast, but every stream loses every
  round of it — the "downtime" SCADDAR exists to avoid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.operations import ScalingOp
from repro.server.cmserver import CMServer
from repro.server.online import OnlineScaler
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream
from repro.storage.disk import DiskSpec
from repro.storage.migration import MigrationSession
from repro.experiments.tables import format_table
from repro.workloads.generator import uniform_catalog


@dataclass(frozen=True)
class OnlineScalingResult:
    """Online vs stop-the-world comparison for one utilization level."""

    utilization: float
    streams: int
    plan_moves: int
    online_rounds: int
    online_hiccups: int
    #: hiccups of the identical stream workload over the same number of
    #: rounds with NO migration running — the random-placement baseline.
    baseline_hiccups: int
    stop_world_rounds: int
    #: stream-rounds of service lost by the stop-the-world variant
    stop_world_lost_service: int

    @property
    def migration_caused_hiccups(self) -> int:
        """Hiccups attributable to the migration itself."""
        return max(0, self.online_hiccups - self.baseline_hiccups)


def _build_server(
    num_objects: int, blocks_per_object: int, n0: int, bits: int, seed: int
) -> CMServer:
    catalog = uniform_catalog(
        num_objects, blocks_per_object, master_seed=seed, bits=bits
    )
    spec = DiskSpec(capacity_blocks=200_000, bandwidth_blocks_per_round=10)
    return CMServer(catalog, [spec] * n0, bits=bits, default_spec=spec)


def _admit_streams(server: CMServer, scheduler: RoundScheduler, count: int) -> None:
    for sid in range(count):
        media = server.catalog.get(sid % len(server.catalog))
        # Stagger start positions so per-round demand spreads out.
        start = (sid * 131) % media.num_blocks
        scheduler.admit(Stream(sid, media, start_block=start))


def run_online_scaling(
    utilizations: tuple[float, ...] = (0.3, 0.6, 0.8),
    n0: int = 4,
    num_objects: int = 8,
    blocks_per_object: int = 1_000,
    bits: int = 32,
    seed: int = 0x0A11E,
) -> list[OnlineScalingResult]:
    """Sweep stream utilization; scale +1 disk online at each level."""
    results = []
    for utilization in utilizations:
        server = _build_server(num_objects, blocks_per_object, n0, bits, seed)
        scheduler = RoundScheduler(server.array)
        capacity = sum(
            server.array.disk(pid).bandwidth_blocks_per_round
            for pid in server.array.physical_ids
        )
        num_streams = max(1, math.floor(capacity * utilization))
        _admit_streams(server, scheduler, num_streams)

        scaler = OnlineScaler(server, scheduler)
        online = scaler.scale_online(ScalingOp.add(1))

        # No-migration control: the same streams over the same rounds on
        # an identical (already scaled, no traffic during scale) server.
        control = _build_server(num_objects, blocks_per_object, n0, bits, seed)
        control_sched = RoundScheduler(control.array)
        _admit_streams(control, control_sched, num_streams)
        baseline_hiccups = sum(
            r.hiccups for r in control_sched.run_rounds(online.rounds)
        )

        # Stop-the-world baseline: same scale on an identical server with
        # no stream traffic; each migration round is full downtime.
        baseline = _build_server(num_objects, blocks_per_object, n0, bits, seed)
        pending = baseline.begin_scale(ScalingOp.add(1))
        session = MigrationSession(baseline.array, pending.plan)
        budgets = {
            pid: baseline.array.disk(pid).bandwidth_blocks_per_round
            for pid in baseline.array.physical_ids
        }
        stop_world = session.run(budgets)
        baseline.finish_scale(pending)

        results.append(
            OnlineScalingResult(
                utilization=utilization,
                streams=num_streams,
                plan_moves=len(pending.plan),
                online_rounds=online.rounds,
                online_hiccups=online.hiccups,
                baseline_hiccups=baseline_hiccups,
                stop_world_rounds=stop_world.rounds_used,
                stop_world_lost_service=stop_world.rounds_used * num_streams,
            )
        )
    return results


def report(results: list[OnlineScalingResult] | None = None) -> str:
    """Render the utilization sweep."""
    results = results if results is not None else run_online_scaling()
    table = format_table(
        (
            "utilization",
            "streams",
            "moves",
            "online rounds",
            "online hiccups",
            "no-migration hiccups",
            "migration-caused",
            "stop-world rounds",
            "lost stream-rounds",
        ),
        [
            (
                r.utilization,
                r.streams,
                r.plan_moves,
                r.online_rounds,
                r.online_hiccups,
                r.baseline_hiccups,
                r.migration_caused_hiccups,
                r.stop_world_rounds,
                r.stop_world_lost_service,
            )
            for r in results
        ],
    )
    return (
        table
        + "\nmigration-caused = 0 means the scaling itself was zero-downtime"
        " (remaining hiccups are the random-placement statistical baseline)"
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_online_scaling
