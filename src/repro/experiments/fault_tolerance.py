"""Experiment S6: mirroring at offset ``f(Nj) = Nj/2`` (Section 6).

Checks the three properties the sketch promises:

* primary and mirror always land on distinct disks (``Nj >= 2``);
* every block stays readable after any single-disk failure;
* mirroring survives scaling operations, because the mirror is a pure
  function of the (remapped) primary.

It also quantifies the scheme's known trade-off: with a *fixed* offset
the failed disk's read load lands on exactly one partner disk (load 2x)
instead of spreading, which is why the paper mentions parity as future
work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.experiments.tables import format_table
from repro.server.faults import MirroredPlacement
from repro.workloads.generator import random_x0s


@dataclass(frozen=True)
class FailureCase:
    """Availability and load picture after one disk failure."""

    failed_disk: int
    blocks_lost: int
    max_load: int
    mean_load: float
    overloaded_disks: int  # disks serving > 1.5x the mean


@dataclass(frozen=True)
class FaultToleranceResult:
    """Mirroring verification across a scaling schedule."""

    disks: int
    blocks: int
    distinct_replicas: bool
    cases: tuple[FailureCase, ...]
    survives_all_single_failures: bool


def run_fault_tolerance(
    n0: int = 4,
    operations: int = 4,
    num_blocks: int = 20_000,
    bits: int = 32,
    seed: int = 0xFA17,
) -> FaultToleranceResult:
    """Mirror a block population, scale, then fail each disk in turn."""
    mapper = ScaddarMapper(n0=n0, bits=bits)
    for __ in range(operations):
        mapper.apply(ScalingOp.add(1))
    mirrored = MirroredPlacement(mapper)
    x0s = random_x0s(num_blocks, bits=bits, seed=seed)

    n = mirrored.num_disks
    distinct = all(
        (pair := mirrored.replica_pair(x0)).primary != pair.mirror for x0 in x0s
    )
    cases = []
    for failed in range(n):
        loads = mirrored.failover_load(x0s, failed)
        lost = sum(
            1 for x0 in x0s if not mirrored.tolerates_failure(x0, failed)
        ) if not distinct else 0
        served = {d: c for d, c in loads.items() if d != failed}
        mean = sum(served.values()) / len(served)
        cases.append(
            FailureCase(
                failed_disk=failed,
                blocks_lost=lost,
                max_load=max(served.values()),
                mean_load=mean,
                overloaded_disks=sum(1 for c in served.values() if c > 1.5 * mean),
            )
        )
    return FaultToleranceResult(
        disks=n,
        blocks=num_blocks,
        distinct_replicas=distinct,
        cases=tuple(cases),
        survives_all_single_failures=all(c.blocks_lost == 0 for c in cases),
    )


def report(result: FaultToleranceResult | None = None) -> str:
    """Render the failure sweep."""
    result = result or run_fault_tolerance()
    table = format_table(
        ("failed disk", "blocks lost", "max read load", "mean", "disks > 1.5x mean"),
        [
            (c.failed_disk, c.blocks_lost, c.max_load, c.mean_load, c.overloaded_disks)
            for c in result.cases
        ],
    )
    summary = (
        f"\ndisks={result.disks} blocks={result.blocks} "
        f"distinct replicas: {'yes' if result.distinct_replicas else 'NO'}; "
        "all single failures survivable: "
        f"{'yes' if result.survives_all_single_failures else 'NO'}\n"
        "note: fixed-offset mirroring concentrates failover load on one "
        "partner disk (the paper's parity future-work motivation)"
    )
    return table + summary


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_fault_tolerance
