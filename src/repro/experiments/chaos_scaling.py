"""Experiment CHAOS: crash-consistent scaling under injected faults.

The robustness counterpart of the online-scaling experiment: every
scaling operation here runs against a deterministic
:class:`~repro.server.faults.FaultInjector` — transient transfer errors
at a configurable rate (default well above 10%), slow disks stretching
transfers past round boundaries, and one whole-disk death mid-migration
that escalates into the Section 6 failure-as-removal flow.  Three
scenarios, each journaled end to end:

* **scale-up** — add a disk group online while streams play, with
  transient + slow faults on every transfer;
* **scale-down** — drain and remove a disk under the same fault load;
* **disk-death** — a source disk dies mid-addition; the interrupted
  operation completes off the surviving replicas and the death becomes
  one more removal on the same operation log
  (:func:`~repro.server.recovery.escalate_disk_death`).

The acceptance bar: **zero blocks lost** in every scenario (block count
conserved and ``fsck.check_layout`` clean afterwards), with the whole
run reproducible bit-for-bit from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.movement import optimal_move_fraction
from repro.core.operations import ScalingOp
from repro.experiments.tables import format_table
from repro.server.cmserver import CMServer, ScaleReport
from repro.server.faults import DiskDeathError, FaultInjector, derive_seed
from repro.server.fsck import check_layout
from repro.server.journal import ScalingJournal
from repro.server.online import OnlineScaler
from repro.server.recovery import escalate_disk_death
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream
from repro.storage.disk import DiskSpec
from repro.storage.migration import MigrationSession
from repro.workloads.generator import uniform_catalog


@dataclass(frozen=True)
class ChaosScenarioResult:
    """Outcome of one scaling operation under fault injection."""

    scenario: str
    plan_moves: int
    rounds: int
    transient_faults: int
    slow_transfers: int
    mirror_reads: int
    hiccups: int
    blocks_lost: int
    layout_clean: bool
    #: Movement efficiency of the scenario's scaling operation (RO1
    #: optimum over the observed moved fraction; faults cost retries and
    #: rounds, never extra block movement).
    efficiency: float = 0.0

    @property
    def survived(self) -> bool:
        """The headline claim: no data loss, consistent layout."""
        return self.blocks_lost == 0 and self.layout_clean


def _build(
    num_objects: int, blocks_per_object: int, n0: int, bits: int, seed: int,
    obs=None,
) -> tuple[CMServer, RoundScheduler]:
    catalog = uniform_catalog(
        num_objects, blocks_per_object, master_seed=seed, bits=bits
    )
    spec = DiskSpec(capacity_blocks=200_000, bandwidth_blocks_per_round=10)
    server = CMServer(
        catalog, [spec] * n0, bits=bits, default_spec=spec,
        journal=ScalingJournal(),
        obs=obs,
    )
    scheduler = RoundScheduler(server.array, obs=obs)
    for sid in range(num_objects):
        media = server.catalog.get(sid)
        scheduler.admit(Stream(sid, media, start_block=(sid * 131) % media.num_blocks))
    return server, scheduler


def _finish(
    scenario: str,
    server: CMServer,
    blocks_before: int,
    plan_moves: int,
    rounds: int,
    hiccups: int,
    injector: FaultInjector,
    op: ScalingOp,
    n_before: int,
) -> ChaosScenarioResult:
    audit = check_layout(server)
    report = ScaleReport(
        op=op,
        n_before=n_before,
        n_after=op.next_disk_count(n_before),
        blocks_moved=plan_moves,
        total_blocks=server.total_blocks,
        optimal_fraction=optimal_move_fraction(op, n_before),
    )
    return ChaosScenarioResult(
        scenario=scenario,
        plan_moves=plan_moves,
        rounds=rounds,
        transient_faults=injector.stats.transient_faults,
        slow_transfers=injector.stats.slow_transfers,
        mirror_reads=injector.stats.mirror_reads,
        hiccups=hiccups,
        blocks_lost=blocks_before - server.total_blocks,
        layout_clean=audit.clean,
        efficiency=report.efficiency,
    )


def run_chaos_scaling(
    n0: int = 4,
    num_objects: int = 6,
    blocks_per_object: int = 600,
    bits: int = 32,
    fault_rate: float = 0.15,
    slow_rate: float = 0.05,
    seed: int = 0xC4A05,
    obs=None,
) -> list[ChaosScenarioResult]:
    """Run the three chaos scenarios; every one must lose zero blocks.

    ``obs`` (an :class:`repro.obs.Obs`) threads one observability handle
    through every scenario's server, journal, and migration session —
    scale spans, journal record counters, and ``migrate.retry`` /
    ``migrate.slow`` events all land on it.
    """
    results = []

    # Scenario 1: online scale-up under transient + slow faults.
    server, scheduler = _build(
        num_objects, blocks_per_object, n0, bits, seed, obs=obs
    )
    before = server.total_blocks
    injector = FaultInjector(
        seed=derive_seed(seed, 0), transient_rate=fault_rate, slow_rate=slow_rate
    )
    report = OnlineScaler(server, scheduler).scale_online(
        ScalingOp.add(2), injector=injector
    )
    results.append(
        _finish("scale-up", server, before, report.blocks_moved,
                report.rounds, report.hiccups, injector,
                ScalingOp.add(2), n0)
    )

    # Scenario 2: online scale-down under the same fault load.
    server, scheduler = _build(
        num_objects, blocks_per_object, n0, bits, seed, obs=obs
    )
    before = server.total_blocks
    injector = FaultInjector(
        seed=derive_seed(seed, 1), transient_rate=fault_rate, slow_rate=slow_rate
    )
    report = OnlineScaler(server, scheduler).scale_online(
        ScalingOp.remove([1]), injector=injector
    )
    results.append(
        _finish("scale-down", server, before, report.blocks_moved,
                report.rounds, report.hiccups, injector,
                ScalingOp.remove([1]), n0)
    )

    # Scenario 3: a disk dies mid-addition; escalate failure-as-removal.
    server, scheduler = _build(
        num_objects, blocks_per_object, n0, bits, seed, obs=obs
    )
    before = server.total_blocks
    injector = FaultInjector(
        seed=derive_seed(seed, 2),
        transient_rate=fault_rate,
        slow_rate=slow_rate,
        death_at_transfer=max(2, before // (n0 * 4)),
        death_victim="source",
    )
    pending = server.begin_scale(ScalingOp.add(1))
    session = MigrationSession(
        server.array, pending.plan,
        journal=server.journal, op_seq=pending.op_seq, injector=injector,
        obs=server.obs,
    )
    hiccups = rounds = 0
    try:
        while not session.done:
            round_report = scheduler.run_round()
            hiccups += round_report.hiccups
            rounds += 1
            session.step(round_report.spare_by_physical)
        server.finish_scale(pending)
    except DiskDeathError as death:
        escalate_disk_death(
            server, pending, session, death.physical_id, injector=injector
        )
    results.append(
        _finish("disk-death", server, before, len(pending.plan),
                rounds, hiccups, injector,
                ScalingOp.add(1), n0)
    )
    return results


def report(results: list[ChaosScenarioResult] | None = None) -> str:
    """Render the chaos sweep."""
    results = results if results is not None else run_chaos_scaling()
    table = format_table(
        (
            "scenario",
            "moves",
            "rounds",
            "transient faults",
            "slow transfers",
            "mirror reads",
            "hiccups",
            "efficiency",
            "blocks lost",
            "fsck clean",
        ),
        [
            (
                r.scenario,
                r.plan_moves,
                r.rounds,
                r.transient_faults,
                r.slow_transfers,
                r.mirror_reads,
                r.hiccups,
                r.efficiency,
                r.blocks_lost,
                "yes" if r.layout_clean else "NO",
            )
            for r in results
        ],
    )
    survived = all(r.survived for r in results)
    return (
        table
        + "\nblocks lost = 0 and fsck clean on every row means scaling "
        "survived the injected faults without data loss"
        + ("" if survived else "\n*** DATA LOSS OR CORRUPTION DETECTED ***")
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_chaos_scaling
