"""The evaluation harness: one module per paper table/figure/claim.

Each module exposes ``run_*`` (returns structured results) and
``report()`` (renders the same table the CLI prints); the pytest-benchmark
suite under ``benchmarks/`` wraps the ``run_*`` functions.

Index (see DESIGN.md section 3 for the full mapping):

====================  ==========================================
module                paper artifact
====================  ==========================================
``fig1``              Figure 1 (naive RO2 violation)
``cov_curve``         Section 5 CoV-vs-operations curve
``rule_of_thumb``     Section 4.3 worked examples + sweep
``movement``          RO1: per-op movement vs optimum ``z_j``
``uniformity``        RO2: source/destination chi-square
``access_cost``       AO1: lookup latency + state footprint
``fault_tolerance``   Section 6 mirroring
``heterogeneous``     Section 6 logical-disk mapping
``online_scaling``    Section 1 online requirement
``stream_balance``    Section 1 random-vs-striping claims
``bound_tightness``   ablation: Lemma 4.2/4.3 vs exact unfairness
``parity_vs_mirror``  Section 6 future work: parity vs mirroring
``group_size``        ablation: Def 3.3 disk groups vs single adds
``removal_patterns``  Sec 4.2.1: removal-only and mixed schedules
``generator_sensitivity``  ablation: PRNG family independence
``reshuffle_cost``    amortized traffic incl. periodic reshuffles
``ingest_under_load`` Sec 2 [1]: writing new media on a busy server
``modern``            extension: vs consistent/jump hashing
``chaos_scaling``     robustness: scaling under injected faults
``availability``      robustness: serving through disk death
``soak``              robustness: long-horizon lifecycle soak
``cluster_chaos``     robustness: shard rebalances under failure
``flash_crowd``       popularity-aware replication vs uniform R
====================  ==========================================
"""

from repro.experiments import (
    access_cost,
    availability,
    bound_tightness,
    chaos_scaling,
    cluster_chaos,
    cov_curve,
    fault_tolerance,
    fig1,
    flash_crowd,
    generator_sensitivity,
    group_size,
    heterogeneous,
    ingest_under_load,
    modern,
    movement,
    online_scaling,
    parity_vs_mirror,
    removal_patterns,
    reshuffle_cost,
    rule_of_thumb,
    soak,
    stream_balance,
    uniformity,
)

#: CLI name -> experiment module (each has a ``report()``).
EXPERIMENTS = {
    "fig1": fig1,
    "cov-curve": cov_curve,
    "rule-of-thumb": rule_of_thumb,
    "movement": movement,
    "uniformity": uniformity,
    "access-cost": access_cost,
    "fault-tolerance": fault_tolerance,
    "heterogeneous": heterogeneous,
    "online-scaling": online_scaling,
    "stream-balance": stream_balance,
    "parity-vs-mirror": parity_vs_mirror,
    "group-size": group_size,
    "removal-patterns": removal_patterns,
    "generator-sensitivity": generator_sensitivity,
    "reshuffle-cost": reshuffle_cost,
    "ingest-under-load": ingest_under_load,
    "bound-tightness": bound_tightness,
    "modern": modern,
    "chaos": chaos_scaling,
    "availability": availability,
    "soak": soak,
    "cluster-chaos": cluster_chaos,
    "flash-crowd": flash_crowd,
}

__all__ = ["EXPERIMENTS"]
