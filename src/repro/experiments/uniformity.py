"""Experiment RO2: randomness of the redistribution, per operation.

RO2 has two observable sides:

* **destinations** — blocks that move must land uniformly on the eligible
  disks (the added group for an addition, the survivors for a removal);
* **sources** — the moved set must be a uniform random sample of all
  blocks, so each pre-operation disk contributes movers in proportion to
  its population.  This is where the naive scheme fails at operation 2:
  Figure 1 shows disks 0 and 2 contributing *nothing*.

The harness runs a schedule per policy and reports chi-square p-values
for both sides of every operation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.fairness import destination_counts, proportional_chi_square
from repro.analysis.movement import PhysicalTracker
from repro.analysis.stats import chi_square_uniform
from repro.core.errors import UnsupportedOperationError
from repro.core.operations import ScalingOp
from repro.experiments.tables import format_table
from repro.placement import ALL_POLICIES
from repro.storage.block import Block
from repro.workloads.generator import random_x0s
from repro.workloads.schedules import additions


@dataclass(frozen=True)
class OpUniformity:
    """Randomness verdict of one operation under one policy."""

    op_index: int
    kind: str
    moved: int
    eligible_disks: tuple[int, ...]
    destination_counts: tuple[int, ...]
    destination_p: float
    source_counts: tuple[int, ...]
    source_populations: tuple[int, ...]
    source_p: float

    @property
    def empty_destinations(self) -> int:
        """Eligible disks that received zero moved blocks."""
        return sum(1 for c in self.destination_counts if c == 0)

    @property
    def silent_sources(self) -> int:
        """Populated pre-op disks that contributed zero movers."""
        return sum(
            1
            for count, population in zip(self.source_counts, self.source_populations)
            if population > 0 and count == 0
        )


@dataclass(frozen=True)
class PolicyUniformity:
    """Per-operation uniformity results of one policy."""

    policy: str
    per_op: tuple[OpUniformity, ...]
    skipped_reason: str | None = None


def _eligible_logical(op: ScalingOp, n_before: int, n_after: int) -> list[int]:
    """Post-operation logical indices a moved block may land on."""
    if op.kind == "add":
        return list(range(n_before, n_after))
    return list(range(n_after))


def run_uniformity(
    schedule: list[ScalingOp] | None = None,
    n0: int = 4,
    num_blocks: int = 30_000,
    bits: int = 32,
    seed: int = 0x0402,
    policies: tuple[str, ...] = ("scaddar", "naive", "directory"),
) -> list[PolicyUniformity]:
    """Sweep the schedule, collecting source/destination statistics."""
    schedule = schedule if schedule is not None else additions(4)
    blocks = [
        Block(object_id=0, index=i, x0=x0)
        for i, x0 in enumerate(random_x0s(num_blocks, bits=bits, seed=seed))
    ]
    results: list[PolicyUniformity] = []
    for name in policies:
        cls = ALL_POLICIES[name]
        policy = cls(n0, bits=bits) if name == "scaddar" else cls(n0)
        policy.register(blocks)
        tracker = PhysicalTracker(n0)
        per_op: list[OpUniformity] = []
        skipped = None
        # logical disk per block, pre-op; populations per logical disk.
        logical_before = {b.block_id: policy.disk_of(b) for b in blocks}
        physical_before = {
            bid: tracker.physical(d) for bid, d in logical_before.items()
        }
        for op_index, op in enumerate(schedule):
            n_before = policy.current_disks
            populations = [0] * n_before
            for disk in logical_before.values():
                populations[disk] += 1
            try:
                n_after = policy.apply(op)
            except UnsupportedOperationError as exc:
                skipped = str(exc)
                break
            tracker.apply(op)
            eligible = _eligible_logical(op, n_before, n_after)
            destinations: list[int] = []
            sources = [0] * n_before
            logical_after: dict = {}
            physical_after: dict = {}
            for block in blocks:
                disk = policy.disk_of(block)
                home = tracker.physical(disk)
                logical_after[block.block_id] = disk
                physical_after[block.block_id] = home
                if home != physical_before[block.block_id]:
                    destinations.append(disk)
                    sources[logical_before[block.block_id]] += 1
            dest_counts = destination_counts(destinations, eligible)
            if len(dest_counts) >= 2 and sum(dest_counts) > 0:
                __, dest_p = chi_square_uniform(dest_counts)
            else:
                dest_p = 1.0  # single eligible disk: trivially uniform
            if op.kind == "add":
                source_weights = populations
            else:
                # Removal: only evicted disks contribute movers; their
                # contribution is exactly their population (p = 1).
                source_weights = [
                    populations[d] if d in op.removed else 0
                    for d in range(n_before)
                ]
                sources = [
                    sources[d] if d in op.removed else 0 for d in range(n_before)
                ]
            __, source_p = proportional_chi_square(sources, source_weights)
            per_op.append(
                OpUniformity(
                    op_index=op_index,
                    kind=op.kind,
                    moved=len(destinations),
                    eligible_disks=tuple(eligible),
                    destination_counts=tuple(dest_counts),
                    destination_p=dest_p,
                    source_counts=tuple(sources),
                    source_populations=tuple(source_weights),
                    source_p=source_p,
                )
            )
            logical_before = logical_after
            physical_before = physical_after
        results.append(
            PolicyUniformity(policy=name, per_op=tuple(per_op), skipped_reason=skipped)
        )
    return results


def report(results: list[PolicyUniformity] | None = None) -> str:
    """Render the per-operation uniformity table."""
    results = results if results is not None else run_uniformity()
    rows: list[tuple[object, ...]] = []
    for result in results:
        for op in result.per_op:
            rows.append(
                (
                    result.policy,
                    op.op_index,
                    op.kind,
                    op.moved,
                    op.destination_p,
                    op.empty_destinations,
                    op.source_p,
                    op.silent_sources,
                )
            )
        if result.skipped_reason:
            rows.append((result.policy, "-", "skipped", "-", "-", "-", "-", "-"))
    return format_table(
        (
            "policy",
            "op",
            "kind",
            "moved",
            "dest p-value",
            "empty dests",
            "source p-value",
            "silent sources",
        ),
        rows,
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_uniformity
