"""Experiment SOAK: the full lifecycle, thousands of ops, every backend.

The other robustness experiments each stress one seam (a crash, a disk
death, one faulty migration).  Real deployments hit all of them, in
arbitrary order, for years.  This experiment compresses that lifetime:
for every registered backend it drives one server through a long
randomized mix of

* **serve** rounds (streams playing; conservation is asserted on every
  round: ``requested == served + hiccups + queued``),
* **scale** operations run online under fault injection (transient
  transfer errors retry with bounded backoff; every backend gets only
  operations it supports — adds-only for sequential checking, tail
  removals for jump hash),
* **ingest** of new objects and **removal** of old ones,
* **crash/resume** cycles (snapshot + journal, process dropped
  mid-migration — or mid-*reshuffle* for SCADDAR — and resumed),
* **reshuffles**, both explicit and automatic: the SCADDAR server runs
  with an :class:`~repro.server.watchdog.ExhaustionWatchdog` in
  ``auto_reset`` mode and a deliberately small bit width, so the
  Lemma 4.3 budget genuinely runs out mid-soak and the full
  redistribution path runs as part of ordinary operation.

Every phase's randomness derives from one master seed through
:func:`~repro.server.faults.derive_seed`, so the whole soak — action
mix, fault schedules, crash points — is bit-reproducible while the
streams stay decorrelated.

The acceptance bar, per backend: zero blocks lost over the whole run,
conservation holding on every served round, and a clean ``fsck`` at the
end.  The final CoV is recorded (not asserted here): sequential
checking's fairness decays by design, which is exactly the trade the
paper's reshuffle exists to avoid.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.stats import coefficient_of_variation
from repro.core.operations import ScalingOp
from repro.experiments.tables import format_table
from repro.placement.backends import BACKENDS
from repro.server.cmserver import CMServer
from repro.server.faults import FaultInjector, derive_seed
from repro.server.fsck import check_layout
from repro.server.ingest import IngestSession
from repro.server.journal import ScalingJournal
from repro.server.online import OnlineScaler
from repro.server.persistence import resume_server, snapshot_server
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream
from repro.server.watchdog import ExhaustionWatchdog, WatchdogConfig
from repro.storage.disk import DiskSpec
from repro.storage.migration import MigrationSession
from repro.workloads.generator import uniform_catalog

#: Ceiling on the disk count before the mix prefers removals (keeps the
#: array size — and the run time — bounded over thousands of ops).
_MAX_DISKS = 12


@dataclass(frozen=True)
class SoakResult:
    """One backend's lifetime score card."""

    backend: str
    ops: int
    serve_rounds: int
    scale_ops: int
    ingests: int
    object_removals: int
    crash_resumes: int
    reshuffles: int
    #: Reshuffles the watchdog ran on its own (budget exhaustion).
    auto_resets: int
    #: Blocks moved by migrations + reshuffles over the whole run.
    lifetime_moves: int
    transient_faults: int
    hiccups: int
    final_cov: float
    blocks_lost: int
    conservation_ok: bool
    layout_clean: bool

    @property
    def survived(self) -> bool:
        """The headline claim: a lifetime of churn, nothing lost."""
        return (
            self.blocks_lost == 0
            and self.conservation_ok
            and self.layout_clean
        )


def _supported_scale_op(
    name: str, rng: random.Random, num_disks: int, n0: int
) -> ScalingOp:
    """A scaling operation this backend can run at this disk count."""
    can_remove = name != "sequential_checking" and num_disks > n0
    grow = num_disks < _MAX_DISKS and (not can_remove or rng.random() < 0.6)
    if grow or not can_remove:
        return ScalingOp.add(rng.choice((1, 1, 2)))
    if name == "jump_hash":
        return ScalingOp.remove([num_disks - 1])  # tail-only
    return ScalingOp.remove([rng.randrange(num_disks)])


def _admit_streams(server: CMServer, scheduler: RoundScheduler) -> None:
    for media in server.catalog:
        if media.num_blocks == 0:
            continue
        scheduler.admit(
            Stream(
                media.object_id,
                media,
                start_block=(media.object_id * 131) % media.num_blocks,
            )
        )


def _run_backend(
    name: str,
    phase_seed: int,
    ops: int,
    n0: int,
    num_objects: int,
    blocks_per_object: int,
    bits: int,
    eps: float,
    fault_rate: float,
    slow_rate: float,
    master_seed: int,
) -> SoakResult:
    """Drive one backend through the full randomized lifecycle."""
    rng = random.Random(derive_seed(phase_seed, 0))
    catalog = uniform_catalog(
        num_objects, blocks_per_object, master_seed=master_seed, bits=bits
    )
    spec = DiskSpec(capacity_blocks=200_000, bandwidth_blocks_per_round=16)
    journal = ScalingJournal()
    server = CMServer(
        catalog, [spec] * n0, bits=bits, default_spec=spec,
        journal=journal, backend=name,
    )
    config = WatchdogConfig(eps=eps, auto_reset=True)
    watchdog = ExhaustionWatchdog(server, config)
    server.attach_watchdog(watchdog)
    scheduler = RoundScheduler(server.array)
    _admit_streams(server, scheduler)

    blocks_expected = server.total_blocks
    conservation_ok = True
    serve_rounds = scale_ops = ingests = object_removals = 0
    crash_resumes = lifetime_moves = transient_faults = hiccups = 0
    auto_resets = next_ingest = 0
    reshufflable = name == "scaddar"

    for i in range(ops):
        roll = rng.random()
        if roll < 0.18 and server.num_disks < _MAX_DISKS * 2:
            # --- scale online under fault injection -------------------
            op = _supported_scale_op(name, rng, server.num_disks, n0)
            injector = FaultInjector(
                seed=derive_seed(phase_seed, 1_000 + i),
                transient_rate=fault_rate,
                slow_rate=slow_rate,
            )
            report = OnlineScaler(server, scheduler).scale_online(
                op, injector=injector
            )
            scale_ops += 1
            lifetime_moves += report.blocks_moved
            transient_faults += injector.stats.transient_faults
            hiccups += report.hiccups
        elif roll < 0.26:
            # --- ingest a new object ----------------------------------
            size = rng.randrange(20, 60)
            session = IngestSession(server, f"soak-{next_ingest}", size)
            next_ingest += 1
            while not session.done:
                session.step(10_000)
            blocks_expected += size
            ingests += 1
        elif roll < 0.32 and next_ingest > object_removals:
            # --- retire the oldest soak-ingested object ---------------
            for media in server.catalog:
                if media.name == f"soak-{object_removals}":
                    blocks_expected -= media.num_blocks
                    server.remove_object(media.object_id)
                    object_removals += 1
                    scheduler = RoundScheduler(server.array)
                    _admit_streams(server, scheduler)
                    break
        elif roll < 0.38:
            # --- crash mid-operation, resume from snapshot + journal --
            snapshot = snapshot_server(server)
            crash_reshuffle = reshufflable and rng.random() < 0.4
            if crash_reshuffle:
                pending = server.begin_reshuffle()
            else:
                op = _supported_scale_op(name, rng, server.num_disks, n0)
                pending = server.begin_scale(op)
            session = MigrationSession(
                server.array, pending.plan,
                journal=journal, op_seq=pending.op_seq,
            )
            if len(pending.plan):
                session.step(
                    len(pending.plan),
                    max_moves=rng.randrange(len(pending.plan)) + 1,
                )
            del server, pending, session  # the crash
            server, resumed, live = resume_server(snapshot, journal)
            if live is not None:
                while not live.done:
                    live.step(10_000)
                if crash_reshuffle:
                    server.finish_reshuffle(resumed)
                else:
                    server.finish_scale(resumed)
                lifetime_moves += len(resumed.plan)
                if not crash_reshuffle:
                    scale_ops += 1
            auto_resets += watchdog.auto_resets  # lifetime count survives
            watchdog = ExhaustionWatchdog(server, config)
            server.attach_watchdog(watchdog)
            scheduler = RoundScheduler(server.array)
            _admit_streams(server, scheduler)
            crash_resumes += 1
        elif roll < 0.42 and reshufflable:
            # --- explicit full redistribution -------------------------
            lifetime_moves += server.reshuffle()
        else:
            # --- serve one round --------------------------------------
            report = scheduler.run_round()
            serve_rounds += 1
            hiccups += report.hiccups
            conservation_ok &= (
                report.requested
                == report.served + report.hiccups + report.queued
            )

    audit = check_layout(server)
    return SoakResult(
        backend=name,
        ops=ops,
        serve_rounds=serve_rounds,
        scale_ops=scale_ops,
        ingests=ingests,
        object_removals=object_removals,
        crash_resumes=crash_resumes,
        reshuffles=server.reshuffles,
        auto_resets=auto_resets + watchdog.auto_resets,
        lifetime_moves=lifetime_moves,
        transient_faults=transient_faults,
        hiccups=hiccups,
        final_cov=coefficient_of_variation(server.load_vector()),
        blocks_lost=blocks_expected - server.total_blocks,
        conservation_ok=conservation_ok,
        layout_clean=audit.clean,
    )


def run_soak(
    ops_per_backend: int = 400,
    n0: int = 4,
    num_objects: int = 4,
    blocks_per_object: int = 150,
    bits: int = 16,
    eps: float = 0.05,
    fault_rate: float = 0.12,
    slow_rate: float = 0.03,
    seed: int = 0x50AC,
) -> list[SoakResult]:
    """Soak every registered backend; each must survive its lifetime.

    ``bits=16`` with ``eps=0.05`` keeps SCADDAR's Lemma 4.3 budget at a
    handful of operations, so a soak of any length forces multiple
    automatic resets — the watchdog's auto-reshuffle path runs for real,
    not as a contrived unit test.
    """
    return [
        _run_backend(
            name,
            phase_seed=derive_seed(seed, index),
            ops=ops_per_backend,
            n0=n0,
            num_objects=num_objects,
            blocks_per_object=blocks_per_object,
            bits=bits,
            eps=eps,
            fault_rate=fault_rate,
            slow_rate=slow_rate,
            master_seed=seed,
        )
        for index, name in enumerate(BACKENDS)
    ]


def report(results: list[SoakResult] | None = None) -> str:
    """Render the lifetime score card."""
    results = results if results is not None else run_soak()
    table = format_table(
        (
            "backend",
            "ops",
            "serve",
            "scales",
            "ingests",
            "crashes",
            "reshuffles",
            "auto resets",
            "moves",
            "faults",
            "final CoV",
            "blocks lost",
            "conserved",
            "fsck clean",
        ),
        [
            (
                r.backend,
                r.ops,
                r.serve_rounds,
                r.scale_ops,
                r.ingests,
                r.crash_resumes,
                r.reshuffles,
                r.auto_resets,
                r.lifetime_moves,
                r.transient_faults,
                r.final_cov,
                r.blocks_lost,
                "yes" if r.conservation_ok else "NO",
                "yes" if r.layout_clean else "NO",
            )
            for r in results
        ],
    )
    survived = all(r.survived for r in results)
    return (
        table
        + "\neach row is one server's whole lifetime: thousands of mixed "
        "ops (serve/scale/ingest/crash/reshuffle) under >=10% fault "
        "injection, zero data loss required"
        + ("" if survived else "\n*** LIFECYCLE DATA LOSS DETECTED ***")
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_soak
