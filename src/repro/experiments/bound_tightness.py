"""Ablation: how tight are Lemma 4.2/4.3 against the exact unfairness?

Not a paper table — DESIGN.md calls the Lemma 4.3 pre-check out as the
design choice governing when to reshuffle, and this ablation measures
how conservative it is.  For a small enough ``b`` the *exact* unfairness
coefficient is computable by enumerating all ``2**b`` random values
through the vectorized REMAP chain; we compare it per-operation with the
analytic upper bound and with the tolerance the budget enforces.

Expected shape: bound >= exact everywhere (it is a proven bound); the
bound is loose early (it assumes worst-case range loss each op) and
within an order of magnitude near the budget's edge; the budget stops
scaling *before* the exact unfairness crosses eps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.exact import exact_unfairness
from repro.core.bounds import lemma_43_allows, unfairness_upper_bound
from repro.core.operations import OperationLog, ScalingOp
from repro.experiments.tables import format_table


@dataclass(frozen=True)
class TightnessPoint:
    """Exact vs bounded unfairness after one schedule prefix."""

    operations: int
    disks: int
    exact: float
    bound: float
    within_budget: bool

    @property
    def slack(self) -> float:
        """bound / exact (``inf`` when exact is 0; 1.0 when both are
        infinite — the range is simply exhausted)."""
        if self.exact == 0.0:
            return float("inf")
        if self.exact == float("inf"):
            return 1.0
        return self.bound / self.exact


@dataclass(frozen=True)
class TightnessResult:
    """The ablation's full curve."""

    bits: int
    eps: float
    points: tuple[TightnessPoint, ...]


def run_bound_tightness(
    bits: int = 16,
    n0: int = 4,
    operations: int = 8,
    eps: float = 0.05,
) -> TightnessResult:
    """Enumerate all ``2**bits`` values after each schedule prefix."""
    log = OperationLog(n0=n0)
    r0 = 1 << bits
    points = []
    for j in range(operations + 1):
        if j > 0:
            log.append(ScalingOp.add(1))
        points.append(
            TightnessPoint(
                operations=j,
                disks=log.current_disks,
                exact=exact_unfairness(log, bits),
                bound=unfairness_upper_bound(r0, log.disk_counts()),
                within_budget=lemma_43_allows(r0, log.product_n(), eps),
            )
        )
    return TightnessResult(bits=bits, eps=eps, points=tuple(points))


def report(result: TightnessResult | None = None) -> str:
    """Render the tightness table."""
    result = result or run_bound_tightness()
    rows = [
        (p.operations, p.disks, p.exact, p.bound, p.slack, p.within_budget)
        for p in result.points
    ]
    table = format_table(
        (
            "ops j",
            "disks",
            "exact unfairness",
            "Lemma 4.2 bound",
            "slack (bound/exact)",
            f"within eps={result.eps}",
        ),
        rows,
    )
    return (
        f"exhaustive enumeration of all 2^{result.bits} random values\n"
        + table
        + "\nbound >= exact everywhere; the budget stops before exact "
        "unfairness crosses eps"
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_bound_tightness
