"""Experiment AVAILABILITY: serving under disk failure, mirror vs parity.

The read-side counterpart of the chaos-scaling experiment: instead of
faulting *migrations*, this one faults the *serving path* itself.  Each
cell of the sweep plays a full catalog of streams through the degraded
serving stack (:mod:`repro.server.reads`) while a seeded injector
delivers transient read errors and slow reads at a configurable rate —
and, mid-playback, kills one disk outright.  Halfway through the
remaining horizon a replacement drive is installed and the background
scrubber rebuilds it back to ``healthy`` at a bounded rate per round.

Two protection schemes are compared at every fault rate:

* **mirror** — Section 6 offset mirroring: a failed primary read is
  served by one read from the mirror disk;
* **parity** — XOR parity groups (Section 6 future work): a failed read
  is reconstructed from ``k`` surviving group members (the tail the
  greedy grouping leaves ungrouped falls back to mirroring).

The headline claim, asserted by ``benchmarks/bench_availability.py``
and the CI smoke: with either scheme enabled, **zero hiccups are
attributable to the killed disk** — every one of its reads is served by
failover or reconstruction — the scrubber returns the replacement to
``healthy``, and the whole run is bit-reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.tables import format_table
from repro.server.cmserver import CMServer
from repro.server.faults import FaultInjector, derive_seed
from repro.server.health import DiskHealth
from repro.server.metrics import MetricsCollector
from repro.server.reads import build_degraded_stack
from repro.server.streams import Stream
from repro.storage.disk import DiskSpec
from repro.workloads.generator import uniform_catalog


@dataclass(frozen=True)
class AvailabilityResult:
    """Outcome of one (scheme, fault-rate) cell of the sweep."""

    scheme: str
    read_fault_rate: float
    rounds: int
    requested: int
    served: int
    hiccups: int
    queued: int
    failover_reads: int
    reconstructed_reads: int
    #: Hiccups whose primary was the killed disk — the acceptance metric.
    dead_disk_hiccups: int
    scrub_repairs: int
    #: Rounds from replacement install to the scrubber's healthy verdict.
    rebuild_rounds: int
    #: The killed disk's health state at the end of the run.
    victim_final_state: str
    #: Re-requests of previously-queued reads (counted in ``requested``
    #: again but representing demand already counted once).
    retried: int = 0

    @property
    def unique_requested(self) -> int:
        """Demand with queued-read re-requests counted once."""
        return self.requested - self.retried

    @property
    def availability(self) -> float:
        """Served / unique demand over the horizon (the SLO number).

        Dividing by raw ``requested`` would count a queued read's demand
        twice (its original round and its retry round) while crediting
        its serve once — understating availability exactly when the
        system is degraded.
        """
        unique = self.unique_requested
        return self.served / unique if unique else 1.0

    @property
    def hiccup_rate(self) -> float:
        """Hiccups / unique demand over the horizon."""
        unique = self.unique_requested
        return self.hiccups / unique if unique else 0.0

    @property
    def survived(self) -> bool:
        """The headline claim: the disk death cost zero hiccups and the
        replacement disk came back healthy."""
        return (
            self.dead_disk_hiccups == 0
            and self.victim_final_state == DiskHealth.HEALTHY.value
        )


def _run_cell(
    scheme: str,
    rate: float,
    cell_seed: int,
    n0: int,
    num_objects: int,
    blocks_per_object: int,
    bits: int,
    rounds: int,
    kill_round: int,
    replace_round: int,
    parity_k: int,
    scrub_rate: int,
    obs=None,
) -> AvailabilityResult:
    catalog = uniform_catalog(
        num_objects, blocks_per_object, master_seed=cell_seed, bits=bits
    )
    spec = DiskSpec(capacity_blocks=200_000, bandwidth_blocks_per_round=10)
    server = CMServer(catalog, [spec] * n0, bits=bits, default_spec=spec)
    injector = FaultInjector(
        seed=cell_seed,
        read_error_rate=rate,
        read_slow_rate=rate / 2,
        scrub_divergence_rate=rate / 4,
    )
    if obs is not None:
        server.attach_obs(obs)
        obs.event("cell.begin", scheme=scheme, rate=rate)
    stack = build_degraded_stack(
        server,
        injector=injector,
        protection=scheme,
        parity_k=parity_k,
        scrub_rate=scrub_rate,
        obs=obs,
    )
    for sid in range(num_objects):
        media = server.catalog.get(sid)
        stack.scheduler.admit(
            Stream(sid, media, start_block=(sid * 131) % media.num_blocks)
        )

    victim = server.array.physical_at(1)
    collector = MetricsCollector()
    rebuild_done_round = None
    for r in range(rounds):
        if r == kill_round:
            injector.kill(victim)
            stack.monitor.mark_dead(victim)
        if r == replace_round:
            injector.revive(victim)
            stack.monitor.begin_rebuild(victim)
        report = stack.scheduler.run_round()
        collector.record(report)
        if (
            rebuild_done_round is None
            and r >= replace_round
            and stack.monitor.state(victim) is DiskHealth.HEALTHY
        ):
            rebuild_done_round = r
    summary = collector.summary()
    stats = stack.planner.stats
    return AvailabilityResult(
        scheme=scheme,
        read_fault_rate=rate,
        rounds=rounds,
        requested=summary.total_requested,
        served=summary.total_served,
        hiccups=summary.total_hiccups,
        queued=summary.total_queued,
        retried=summary.total_retried,
        failover_reads=summary.total_failover_reads,
        reconstructed_reads=summary.total_reconstructed_reads,
        dead_disk_hiccups=stats.hiccups_by_primary.get(victim, 0),
        scrub_repairs=summary.total_scrub_repaired,
        rebuild_rounds=(
            rebuild_done_round - replace_round
            if rebuild_done_round is not None
            else -1
        ),
        victim_final_state=stack.monitor.state(victim).value,
    )


def run_availability(
    n0: int = 6,
    num_objects: int = 6,
    blocks_per_object: int = 400,
    bits: int = 32,
    rounds: int = 200,
    kill_round: int = 50,
    replace_round: int = 100,
    read_fault_rates: tuple[float, ...] = (0.0, 0.02, 0.08),
    schemes: tuple[str, ...] = ("mirror", "parity"),
    parity_k: int = 4,
    scrub_rate: int = 32,
    seed: int = 0xA7A11,
    obs=None,
) -> list[AvailabilityResult]:
    """Sweep fault rates x protection schemes, one disk death per cell.

    Every cell's injector is seeded via :func:`derive_seed` from the one
    ``seed``, so the whole sweep is reproducible end-to-end from a
    single value (and the CLI's ``--seed`` flag reaches it).

    ``obs`` (an :class:`repro.obs.Obs`) threads one observability handle
    through every cell's server, health monitor, and scheduler: the
    event log carries the full trace (``cell.begin`` marks cell
    boundaries) and the metrics registry the serve/failover/scrub
    counters — the artifact ``scaddar trace`` / ``scaddar metrics``
    expose.  Same seed, same event sequence (wall-clock durations
    aside): the log's :meth:`~repro.obs.EventLog.deterministic_view` is
    bit-stable.
    """
    if not 0 <= kill_round < replace_round < rounds:
        raise ValueError(
            f"need 0 <= kill_round < replace_round < rounds, got "
            f"{kill_round}, {replace_round}, {rounds}"
        )
    results = []
    for scheme_index, scheme in enumerate(schemes):
        for rate_index, rate in enumerate(read_fault_rates):
            cell_seed = derive_seed(seed, scheme_index * 1000 + rate_index)
            results.append(
                _run_cell(
                    scheme,
                    rate,
                    cell_seed,
                    n0=n0,
                    num_objects=num_objects,
                    blocks_per_object=blocks_per_object,
                    bits=bits,
                    rounds=rounds,
                    kill_round=kill_round,
                    replace_round=replace_round,
                    parity_k=parity_k,
                    scrub_rate=scrub_rate,
                    obs=obs,
                )
            )
    return results


def report(results: list[AvailabilityResult] | None = None) -> str:
    """Render the availability sweep."""
    results = results if results is not None else run_availability()
    table = format_table(
        (
            "scheme",
            "fault rate",
            "requested",
            "retried",
            "served",
            "failover",
            "reconstructed",
            "queued",
            "hiccups",
            "availability",
            "dead-disk hiccups",
            "scrub repairs",
            "rebuild rounds",
            "victim state",
        ),
        [
            (
                r.scheme,
                f"{r.read_fault_rate:.2f}",
                r.requested,
                r.retried,
                r.served,
                r.failover_reads,
                r.reconstructed_reads,
                r.queued,
                r.hiccups,
                f"{r.availability:.4f}",
                r.dead_disk_hiccups,
                r.scrub_repairs,
                r.rebuild_rounds,
                r.victim_final_state,
            )
            for r in results
        ],
    )
    survived = all(r.survived for r in results)
    return (
        table
        + "\none disk is killed mid-playback in every cell; availability "
        "is served / (requested - retried), counting each queued read's "
        "re-request once; dead-disk hiccups = 0 means every read the "
        "victim owed was served by failover or reconstruction, and "
        "'healthy' means the scrubber finished the replacement's rebuild"
        + ("" if survived else "\n*** AVAILABILITY VIOLATED: the disk death "
           "leaked hiccups or the rebuild never completed ***")
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_availability
