"""Ablation: does the pseudo-random generator family matter?

The paper assumes "a standard pseudo-random number generator" and its
analysis pretends the bits are truly random.  This ablation runs the
Section 5 style measurement (load CoV across a scaling schedule) with
each implemented family at the same ``b``, against the balls-in-bins
sampling floor: if SCADDAR's guarantees held only for one specific
generator, that would show up here as a family whose CoV leaves the
floor early.

Expected shape: all families track the multinomial floor until the
Lemma 4.3 budget runs out, then all degrade together — the scheme's
behaviour is a property of the remap arithmetic, not of the generator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import coefficient_of_variation
from repro.analysis.theory import expected_load_cov
from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.experiments.tables import format_table
from repro.prng.sequence import GENERATOR_FAMILIES, make_generator


@dataclass(frozen=True)
class FamilyCurve:
    """One generator family's CoV across schedule prefixes."""

    family: str
    cov_by_ops: tuple[float, ...]


@dataclass(frozen=True)
class GeneratorSensitivityResult:
    """All families' curves plus the sampling floor."""

    bits: int
    num_blocks: int
    disk_counts: tuple[int, ...]
    floors: tuple[float, ...]
    curves: tuple[FamilyCurve, ...]


def run_generator_sensitivity(
    n0: int = 4,
    operations: int = 8,
    num_blocks: int = 30_000,
    bits: int = 32,
    seed: int = 0x6E4,
) -> GeneratorSensitivityResult:
    """Measure the CoV curve per generator family at the same b."""
    curves = []
    disk_counts: tuple[int, ...] = ()
    for family in sorted(GENERATOR_FAMILIES):
        gen = make_generator(family, seed=seed, bits=bits)
        x0s = [gen.next() for __ in range(num_blocks)]
        mapper = ScaddarMapper(n0=n0, bits=bits)
        covs = []
        counts = []
        for j in range(operations + 1):
            if j > 0:
                mapper.apply(ScalingOp.add(1))
            n = mapper.current_disks
            counts.append(n)
            loads = [0] * n
            for x0 in x0s:
                loads[mapper.disk_of(x0)] += 1
            covs.append(coefficient_of_variation(loads))
        curves.append(FamilyCurve(family=family, cov_by_ops=tuple(covs)))
        disk_counts = tuple(counts)
    floors = tuple(
        expected_load_cov(num_blocks, n) for n in disk_counts
    )
    return GeneratorSensitivityResult(
        bits=bits,
        num_blocks=num_blocks,
        disk_counts=disk_counts,
        floors=floors,
        curves=tuple(curves),
    )


def report(result: GeneratorSensitivityResult | None = None) -> str:
    """Render the per-family CoV table."""
    result = result or run_generator_sensitivity()
    headers = ["ops j", "disks", "sampling floor"] + [
        c.family for c in result.curves
    ]
    rows = []
    for j, (n, floor) in enumerate(zip(result.disk_counts, result.floors)):
        rows.append(
            (j, n, floor, *(c.cov_by_ops[j] for c in result.curves))
        )
    table = format_table(headers, rows)
    return (
        f"{result.num_blocks} blocks, b={result.bits}; CoV per generator "
        "family vs the multinomial sampling floor\n"
        + table
        + "\nall families hug the floor: SCADDAR's behaviour does not "
        "depend on the generator choice"
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_generator_sensitivity
