"""Ablation: why scale by disk *groups*? (Definition 3.3)

The paper defines a scaling operation on a whole disk group rather than
a single disk.  This ablation quantifies why, growing a server from
``N0`` to ``N0 + total_new`` disks with different group sizes:

* **randomness budget** — ``Pi_k`` multiplies by every intermediate disk
  count, so twelve +1 operations cost a factor ``5*6*...*16`` while one
  +12 group costs only ``16``: grouping preserves orders of magnitude of
  the Lemma 4.3 budget;
* **block traffic** — with single additions a block can move several
  times (onto disk 5, then onto disk 9, ...); the expected cumulative
  moved fraction is ``sum 1/(N+i) > G/(N+G)``, the one-group optimum.

Both effects are measured: the exact ``Pi`` / remaining budget, and the
observed per-schedule cumulative block-moves over a 20k population
(vectorized REMAP).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.operations import OperationLog, ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.core.vectorized import disks_array
from repro.experiments.tables import format_table
from repro.workloads.generator import random_x0s


@dataclass(frozen=True)
class GroupSizeRow:
    """Outcome of reaching the same final size with one group size."""

    group_size: int
    operations: int
    pi: int
    unfairness_bound: float
    remaining_budget: int
    #: cumulative block-moves over the whole schedule / population size
    cumulative_moved_fraction: float
    #: what RO1 predicts for this schedule with unlimited randomness:
    #: sum of g / (N + i*g) over the steps
    theoretical_moved_fraction: float
    #: the one-shot optimum: total_new / n_final
    one_shot_fraction: float


@dataclass(frozen=True)
class GroupSizeResult:
    """The ablation table."""

    n0: int
    total_new: int
    bits: int
    eps: float
    rows: tuple[GroupSizeRow, ...]


def run_group_size(
    n0: int = 4,
    total_new: int = 12,
    group_sizes: tuple[int, ...] = (1, 2, 3, 4, 6, 12),
    num_blocks: int = 20_000,
    bits: int = 32,
    eps: float = 0.05,
    seed: int = 0x6A0F,
) -> GroupSizeResult:
    """Grow ``n0 -> n0 + total_new`` with each group size and compare."""
    for g in group_sizes:
        if total_new % g:
            raise ValueError(
                f"group size {g} does not divide the growth {total_new}"
            )
    x0s = np.asarray(random_x0s(num_blocks, bits=bits, seed=seed), dtype=np.uint64)
    rows = []
    for g in group_sizes:
        mapper = ScaddarMapper(n0=n0, bits=bits)
        log_prefix = OperationLog(n0=n0)
        previous = disks_array(x0s, log_prefix)
        moves = 0
        for __ in range(total_new // g):
            mapper.apply(ScalingOp.add(g))
            log_prefix.append(ScalingOp.add(g))
            current = disks_array(x0s, log_prefix)
            moves += int(np.count_nonzero(current != previous))
            previous = current
        theoretical = sum(
            g / (n0 + (i + 1) * g) for i in range(total_new // g)
        )
        rows.append(
            GroupSizeRow(
                group_size=g,
                operations=mapper.num_operations,
                pi=mapper.product_n(),
                unfairness_bound=mapper.unfairness_bound(),
                remaining_budget=mapper.remaining_operations(eps, group_size=g),
                cumulative_moved_fraction=moves / num_blocks,
                theoretical_moved_fraction=theoretical,
                one_shot_fraction=total_new / (n0 + total_new),
            )
        )
    return GroupSizeResult(
        n0=n0, total_new=total_new, bits=bits, eps=eps, rows=tuple(rows)
    )


def report(result: GroupSizeResult | None = None) -> str:
    """Render the ablation table."""
    result = result or run_group_size()
    table = format_table(
        (
            "group size",
            "ops used",
            "Pi",
            "unfairness bound",
            f"further ops left (eps={result.eps})",
            "moved frac (measured)",
            "moved frac (theory)",
            "one-shot optimum",
        ),
        [
            (
                r.group_size,
                r.operations,
                r.pi,
                r.unfairness_bound,
                r.remaining_budget,
                r.cumulative_moved_fraction,
                r.theoretical_moved_fraction,
                r.one_shot_fraction,
            )
            for r in result.rows
        ],
    )
    return (
        f"growing {result.n0} -> {result.n0 + result.total_new} disks, "
        f"b={result.bits}\n"
        + table
        + "\nbigger groups spend less randomness AND less block traffic "
        "for the same growth — Definition 3.3's rationale.\n"
        "measured < theory signals an exhausted range: blocks STOP moving "
        "(the new disks starve) — the failure mode, not a saving"
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_group_size
