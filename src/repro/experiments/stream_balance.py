"""Experiment RND: why random placement? (Section 1's RIO claims)

The paper adopts randomized placement for the RIO-style advantages:
load balancing "by the law of large numbers", a *single traffic
pattern*, and support for unpredictable access such as "interactive
applications or VCR-style operations" — while Section 2 concedes that
constrained striping offers deterministic guarantees and random
placement is "competitive".  This experiment measures exactly that
trade under a mixed VCR workload (normal playback plus 2x and 4x
fast-scan, whose strides pin a striped stream to ``N / gcd(s, N)``
disks):

* **predictability** — across many seeds (stream populations), random
  placement's hiccup count sits in a tight band (law of large numbers);
  striping's outcome swings by multiples depending on how convoys
  happen to align, so a provider cannot plan for it;
* **fairness** — striping's hiccups concentrate on the convoy members
  (the same few viewers suffer every round); random placement spreads
  them thinly over everyone.

Both layouts serve the identical stream populations on identical disks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.server.objects import ObjectCatalog
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream
from repro.storage.array import DiskArray
from repro.storage.disk import DiskSpec
from repro.workloads.generator import uniform_catalog

#: VCR playback modes: (stride, share of streams). Stride s = skip s-1
#: blocks after each delivered block (fast-scan).
PLAYBACK_MODES = ((1, 0.5), (2, 0.25), (4, 0.25))


@dataclass(frozen=True)
class SeedOutcome:
    """One stream population on one layout."""

    hiccups: int
    worst_peak_queue: int
    #: largest share of all hiccups charged to a single stream
    worst_stream_share: float


@dataclass(frozen=True)
class LayoutSummary:
    """Across-seed statistics for one layout."""

    placement: str
    seeds: int
    mean_hiccups: float
    min_hiccups: int
    max_hiccups: int
    #: max/min across seeds — the predictability metric (lower = planable)
    spread: float
    mean_worst_stream_share: float

    @classmethod
    def from_outcomes(
        cls, placement: str, outcomes: list[SeedOutcome]
    ) -> "LayoutSummary":
        hiccups = [o.hiccups for o in outcomes]
        low = min(hiccups)
        return cls(
            placement=placement,
            seeds=len(outcomes),
            mean_hiccups=float(np.mean(hiccups)),
            min_hiccups=low,
            max_hiccups=max(hiccups),
            spread=max(hiccups) / low if low else float("inf"),
            mean_worst_stream_share=float(
                np.mean([o.worst_stream_share for o in outcomes])
            ),
        )


@dataclass(frozen=True)
class StreamBalanceResult:
    """Random vs round-robin striping under mixed VCR access."""

    streams: int
    disks: int
    bandwidth: int
    rounds: int
    summaries: tuple[LayoutSummary, ...]


def _build_array(
    catalog: ObjectCatalog, n_disks: int, bandwidth: int, layout: str
) -> DiskArray:
    spec = DiskSpec(capacity_blocks=1_000_000, bandwidth_blocks_per_round=bandwidth)
    array = DiskArray([spec] * n_disks)
    for media in catalog:
        for block in media.blocks():
            if layout == "random":
                logical = block.x0 % n_disks
            else:
                logical = (block.object_id + block.index) % n_disks
            array.place(block, logical)
    return array


def _run_layout(
    catalog: ObjectCatalog,
    layout: str,
    n_disks: int,
    bandwidth: int,
    starts: list[tuple[int, int, int]],
    rounds: int,
) -> SeedOutcome:
    array = _build_array(catalog, n_disks, bandwidth, layout)
    scheduler = RoundScheduler(array)
    strides: dict[int, int] = {}
    for sid, (object_id, position, stride) in enumerate(starts):
        scheduler.admit(Stream(sid, catalog.get(object_id), start_block=position))
        strides[sid] = stride
    peaks = []
    for __ in range(rounds):
        positions_before = {s.stream_id: s.position for s in scheduler.streams}
        report = scheduler.run_round()
        peaks.append(max(report.load_by_physical.values(), default=0))
        for stream in scheduler.streams:
            advanced = stream.position != positions_before[stream.stream_id]
            skip = strides[stream.stream_id] - 1
            if advanced and skip and stream.is_active:
                stream.seek(min(stream.position + skip, stream.media.num_blocks - 1))
    total = scheduler.total_hiccups
    worst_stream = max(scheduler.hiccups_by_stream.values(), default=0)
    return SeedOutcome(
        hiccups=total,
        worst_peak_queue=int(max(peaks)),
        worst_stream_share=worst_stream / total if total else 0.0,
    )


def _draw_starts(
    rng: random.Random,
    num_objects: int,
    blocks_per_object: int,
    num_streams: int,
    rounds: int,
) -> list[tuple[int, int, int]]:
    mode_cdf = []
    acc = 0.0
    for stride, share in PLAYBACK_MODES:
        acc += share
        mode_cdf.append((acc, stride))
    max_stride = max(stride for stride, __ in PLAYBACK_MODES)
    headroom = blocks_per_object - rounds * max_stride - 1
    if headroom <= 0:
        raise ValueError(
            "objects too short for the horizon: need more than "
            f"{rounds * max_stride + 1} blocks, have {blocks_per_object}"
        )
    starts = []
    for __ in range(num_streams):
        roll = rng.random()
        stride = next(s for threshold, s in mode_cdf if roll <= threshold)
        starts.append((rng.randrange(num_objects), rng.randrange(headroom), stride))
    return starts


def run_stream_balance(
    num_objects: int = 8,
    blocks_per_object: int = 1_500,
    n_disks: int = 8,
    bandwidth: int = 4,
    num_streams: int = 28,
    rounds: int = 250,
    seeds: int = 10,
) -> StreamBalanceResult:
    """Sweep stream populations; aggregate per-layout statistics."""
    catalog = uniform_catalog(num_objects, blocks_per_object, master_seed=7, bits=32)
    outcomes: dict[str, list[SeedOutcome]] = {"random": [], "round_robin": []}
    for seed in range(seeds):
        rng = random.Random(seed)
        starts = _draw_starts(
            rng, num_objects, blocks_per_object, num_streams, rounds
        )
        for layout in outcomes:
            outcomes[layout].append(
                _run_layout(catalog, layout, n_disks, bandwidth, starts, rounds)
            )
    summaries = tuple(
        LayoutSummary.from_outcomes(layout, results)
        for layout, results in outcomes.items()
    )
    return StreamBalanceResult(
        streams=num_streams,
        disks=n_disks,
        bandwidth=bandwidth,
        rounds=rounds,
        summaries=summaries,
    )


def report(result: StreamBalanceResult | None = None) -> str:
    """Render the layout comparison."""
    from repro.experiments.tables import format_table

    result = result or run_stream_balance()
    table = format_table(
        (
            "placement",
            "seeds",
            "mean hiccups",
            "min",
            "max",
            "max/min spread",
            "worst-stream share",
        ),
        [
            (
                s.placement,
                s.seeds,
                s.mean_hiccups,
                s.min_hiccups,
                s.max_hiccups,
                s.spread,
                s.mean_worst_stream_share,
            )
            for s in result.summaries
        ],
    )
    return (
        f"{result.streams} streams (50% play, 25% 2x scan, 25% 4x scan), "
        f"{result.disks} disks, bandwidth {result.bandwidth}/round, "
        f"{result.rounds} rounds per seed\n"
        + table
        + "\nrandom placement: outcome in a tight band (plannable, law of"
        " large numbers), hiccups spread over streams;\nstriping: outcome"
        " swings with convoy luck and concentrates on the convoy members"
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_stream_balance
