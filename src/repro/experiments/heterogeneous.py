"""Experiment S6b: SCADDAR on heterogeneous disks via logical mapping.

Section 6: "by applying previous work of mapping homogeneous logical
disks to heterogeneous physical disks [18], SCADDAR may naturally evolve
to allow block redistribution on heterogeneous physical disks".  The
harness builds a three-generation pool (weights 1, 2 and 4 logical disks
per drive), verifies each drive receives load proportional to its weight,
then adds and removes drives and re-verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.tables import format_table
from repro.storage.hetero import HeterogeneousPool
from repro.workloads.generator import random_x0s


@dataclass(frozen=True)
class PoolSnapshot:
    """Load picture of the pool at one point of the scenario."""

    label: str
    logical_disks: int
    loads: dict[int, int]  # physical id -> blocks
    weights: dict[int, int]  # physical id -> logical disks
    max_share_error: float  # worst |observed - expected| / expected


@dataclass(frozen=True)
class HeterogeneousResult:
    """Snapshots across the add/remove scenario."""

    blocks: int
    snapshots: tuple[PoolSnapshot, ...]


def _snapshot(pool: HeterogeneousPool, x0s: list[int], label: str) -> PoolSnapshot:
    loads = pool.load_by_physical(x0s)
    weights = {pid: pool.weight_of(pid) for pid in pool.physical_ids}
    total_weight = sum(weights.values())
    worst = 0.0
    for pid, load in loads.items():
        expected = len(x0s) * weights[pid] / total_weight
        if expected > 0:
            worst = max(worst, abs(load - expected) / expected)
    return PoolSnapshot(
        label=label,
        logical_disks=pool.num_logical_disks,
        loads=loads,
        weights=weights,
        max_share_error=worst,
    )


def run_heterogeneous(
    num_blocks: int = 40_000, bits: int = 32, seed: int = 0x8E7E
) -> HeterogeneousResult:
    """Three-generation pool: initial, +fast drive, -slow drive."""
    x0s = random_x0s(num_blocks, bits=bits, seed=seed)
    # gen1 = 1 logical disk, gen2 = 2, gen3 = 4 (bandwidth ratios).
    pool = HeterogeneousPool([(0, 1), (1, 1), (2, 2), (3, 4)], bits=bits)
    snapshots = [_snapshot(pool, x0s, "initial (2x gen1, gen2, gen3)")]
    pool.add_disk(4, weight=4)
    snapshots.append(_snapshot(pool, x0s, "+ gen3 drive (weight 4)"))
    pool.remove_disk(0)
    snapshots.append(_snapshot(pool, x0s, "- gen1 drive (weight 1)"))
    return HeterogeneousResult(blocks=num_blocks, snapshots=tuple(snapshots))


def report(result: HeterogeneousResult | None = None) -> str:
    """Render per-drive load vs the weight-proportional expectation."""
    result = result or run_heterogeneous()
    sections = []
    for snap in result.snapshots:
        total_weight = sum(snap.weights.values())
        rows = [
            (
                f"drive {pid}",
                snap.weights[pid],
                snap.loads[pid],
                result.blocks * snap.weights[pid] / total_weight,
            )
            for pid in sorted(snap.loads)
        ]
        table = format_table(("drive", "weight", "blocks", "expected"), rows)
        sections.append(
            f"{snap.label} — {snap.logical_disks} logical disks, "
            f"max share error {snap.max_share_error:.3%}\n{table}"
        )
    comparison = report_comparison()
    return "\n\n".join(sections) + "\n\n" + comparison


@dataclass(frozen=True)
class ApproachRow:
    """One heterogeneous approach's score on the same fleet scenario."""

    approach: str
    max_share_error_initial: float
    max_share_error_final: float
    #: blocks moved when one weight-4 drive was added / removed,
    #: as a fraction of the population (optimum: the drive's share)
    add_moved_fraction: float
    remove_moved_fraction: float
    add_optimal: float
    remove_optimal: float


def run_hetero_comparison(
    num_blocks: int = 40_000, bits: int = 32, seed: int = 0x8E7F
) -> list[ApproachRow]:
    """SCADDAR-over-logical-disks vs weighted straw2, identical fleet.

    Scenario: drives of weight 1/1/2/4; add a weight-4 drive; remove a
    weight-1 drive.  Both approaches should keep load proportional and
    move only the affected drive's share.
    """
    from repro.placement.weighted_straw import WeightedStrawPool

    x0s = random_x0s(num_blocks, bits=bits, seed=seed)
    members = [(0, 1), (1, 1), (2, 2), (3, 4)]
    rows = []
    for name, pool in (
        ("scaddar + logical disks", HeterogeneousPool(members, bits=bits)),
        ("weighted straw2", WeightedStrawPool([(p, float(w)) for p, w in members])),
    ):
        def share_error():
            loads = pool.load_by_physical(x0s)
            total_weight = sum(pool.weight_of(p) for p in pool.physical_ids)
            worst = 0.0
            for pid, load in loads.items():
                expected = num_blocks * pool.weight_of(pid) / total_weight
                worst = max(worst, abs(load - expected) / expected)
            return worst

        initial_error = share_error()
        before = {x0: pool.physical_of_block(x0) for x0 in x0s}
        pool.add_disk(4, 4)
        add_moved = sum(
            1 for x0 in x0s if pool.physical_of_block(x0) != before[x0]
        )
        before = {x0: pool.physical_of_block(x0) for x0 in x0s}
        pool.remove_disk(0)
        remove_moved = sum(
            1 for x0 in x0s if pool.physical_of_block(x0) != before[x0]
        )
        rows.append(
            ApproachRow(
                approach=name,
                max_share_error_initial=initial_error,
                max_share_error_final=share_error(),
                add_moved_fraction=add_moved / num_blocks,
                remove_moved_fraction=remove_moved / num_blocks,
                add_optimal=4 / 12,  # the new drive's share of weight 12
                remove_optimal=1 / 12,  # the retired drive's share
            )
        )
    return rows


def report_comparison(rows: list[ApproachRow] | None = None) -> str:
    """Render the two-approach comparison table."""
    rows = rows if rows is not None else run_hetero_comparison()
    table = format_table(
        (
            "approach",
            "share err (initial)",
            "share err (final)",
            "+drive moved",
            "optimal",
            "-drive moved",
            "optimal ",
        ),
        [
            (
                r.approach,
                r.max_share_error_initial,
                r.max_share_error_final,
                r.add_moved_fraction,
                r.add_optimal,
                r.remove_moved_fraction,
                r.remove_optimal,
            )
            for r in rows
        ],
    )
    return (
        "approach comparison on the same fleet (weights 1/1/2/4, +4, -1):\n"
        + table
        + "\nboth keep load proportional and move ~the affected drive's "
        "share; straw2 needs no logical-disk indirection but draws O(N) "
        "straws per lookup"
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_heterogeneous
