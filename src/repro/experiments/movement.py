"""Experiment RO1: block movement per scaling operation, per policy.

RO1 demands that operation ``j`` move only ``z_j * B`` blocks (Eq. 1).
The harness runs the same scaling schedule over every policy and compares
the observed moved fraction with the optimum:

* SCADDAR and the directory baseline sit at the optimum;
* complete redistribution and round-robin move nearly everything;
* the naive scheme is also movement-optimal (its failure is RO2);
* the modern comparators are near-optimal in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.movement import OpMovement, run_schedule
from repro.core.errors import UnsupportedOperationError
from repro.core.operations import ScalingOp
from repro.experiments.tables import format_table
from repro.placement import ALL_POLICIES
from repro.storage.block import Block
from repro.workloads.generator import random_x0s
from repro.workloads.schedules import additions


@dataclass(frozen=True)
class PolicyMovement:
    """Per-operation movement of one policy over one schedule."""

    policy: str
    per_op: tuple[OpMovement, ...]
    skipped_reason: str | None = None

    @property
    def mean_overhead(self) -> float:
        """Mean observed/optimal ratio over the schedule."""
        if not self.per_op:
            return float("nan")
        return sum(m.overhead_ratio for m in self.per_op) / len(self.per_op)


def _make_policy(name: str, n0: int, bits: int):
    cls = ALL_POLICIES[name]
    if name == "scaddar":
        return cls(n0, bits=bits)
    return cls(n0)


def run_movement(
    schedule: list[ScalingOp] | None = None,
    n0: int = 4,
    num_blocks: int = 20_000,
    bits: int = 32,
    seed: int = 0x40E5,
    policies: tuple[str, ...] = tuple(ALL_POLICIES),
) -> list[PolicyMovement]:
    """Sweep the schedule over the selected policies.

    Policies that cannot represent an operation in the schedule (the
    naive scheme on removals, extendible hashing on non-doublings, jump
    hash on non-tail removals) are reported as skipped rather than
    crashing the sweep.
    """
    schedule = schedule if schedule is not None else additions(8)
    blocks = [
        Block(object_id=0, index=i, x0=x0)
        for i, x0 in enumerate(random_x0s(num_blocks, bits=bits, seed=seed))
    ]
    results: list[PolicyMovement] = []
    for name in policies:
        try:
            policy = _make_policy(name, n0, bits)
            per_op = run_schedule(policy, blocks, schedule)
        except UnsupportedOperationError as exc:
            results.append(
                PolicyMovement(policy=name, per_op=(), skipped_reason=str(exc))
            )
            continue
        results.append(PolicyMovement(policy=name, per_op=tuple(per_op)))
    return results


def report(results: list[PolicyMovement] | None = None) -> str:
    """Render moved fractions per operation and the overhead summary."""
    results = results if results is not None else run_movement()
    complete = [r for r in results if r.per_op]
    if not complete:
        return "all policies skipped the schedule"
    ops = len(complete[0].per_op)
    headers = ["policy"] + [f"op{j}" for j in range(ops)] + ["optimal", "overhead"]
    rows: list[list[object]] = []
    for result in results:
        if not result.per_op:
            rows.append(
                [result.policy]
                + ["-"] * ops
                + ["-", f"skipped: {result.skipped_reason}"]
            )
            continue
        rows.append(
            [result.policy]
            + [m.moved_fraction for m in result.per_op]
            + [
                " ".join(f"{float(m.optimal_fraction):.3f}" for m in result.per_op),
                result.mean_overhead,
            ]
        )
    return format_table(headers, rows)


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_movement
