"""Plain-text table rendering shared by the experiment reports."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table.

    Numbers are right-aligned, text left-aligned; floats print with four
    significant decimals.
    """
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    columns = len(headers)
    for row in rendered_rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells but the table has {columns} columns"
            )
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in rendered_rows))
        if rendered_rows
        else len(headers[c])
        for c in range(columns)
    ]
    numeric = [
        bool(rendered_rows) and all(_is_number_like(row[c]) for row in rendered_rows)
        for c in range(columns)
    ]

    def fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(cells):
            parts.append(cell.rjust(widths[c]) if numeric[c] else cell.ljust(widths[c]))
        return "  ".join(parts).rstrip()

    separator = "  ".join("-" * w for w in widths)
    lines = [fmt_line(list(headers)), separator]
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


def _render(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if cell in (float("inf"), float("-inf")):
            return "inf" if cell > 0 else "-inf"
        return f"{cell:.4f}"
    return str(cell)


def _is_number_like(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return text in ("inf", "-inf", "nan", "yes", "no", "-")
