"""Experiment AO1: access cost and persistent-state footprint.

AO1 demands block location "through low complexity computation": SCADDAR
needs one disk access plus a chain of ``j`` mod/div steps, against the
directory baseline's O(1) lookup that costs O(blocks) persistent state
and concurrency-controlled updates.  The harness measures:

* lookup latency of ``AF()`` as the operation count ``j`` grows,
  alongside a directory dict lookup;
* the arithmetic-step count of the chain (exactly ``j`` REMAPs);
* persistent-state entries per policy as the catalog grows (the paper's
  "millions of entries" argument).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.experiments.tables import format_table
from repro.placement import ALL_POLICIES
from repro.storage.block import Block
from repro.workloads.generator import random_x0s


@dataclass(frozen=True)
class LookupPoint:
    """Lookup cost after ``operations`` scaling operations."""

    operations: int
    scaddar_ns: float
    directory_ns: float
    remap_steps: int


@dataclass(frozen=True)
class StateRow:
    """Persistent state of each policy for one catalog size."""

    blocks: int
    operations: int
    entries_by_policy: dict[str, int]


@dataclass(frozen=True)
class AccessCostResult:
    """Latency curve + state table."""

    lookups: tuple[LookupPoint, ...]
    state: tuple[StateRow, ...]


def _time_per_call(fn, calls: int) -> float:
    start = time.perf_counter()
    for __ in range(calls):
        fn()
    return (time.perf_counter() - start) / calls * 1e9


def run_access_cost(
    max_operations: int = 16,
    op_stride: int = 2,
    num_probe_blocks: int = 200,
    bits: int = 32,
    state_block_counts: tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000),
    state_operations: int = 8,
) -> AccessCostResult:
    """Measure lookup latency vs ``j`` and state size vs catalog size."""
    probes = random_x0s(num_probe_blocks, bits=bits, seed=0xACCE55)
    directory = {x0: x0 % 4 for x0 in probes}

    lookups = []
    mapper = ScaddarMapper(n0=4, bits=bits)
    for j in range(0, max_operations + 1, op_stride):
        while mapper.num_operations < j:
            mapper.apply(ScalingOp.add(1))
        probe_iter = iter(probes * 50)
        scaddar_ns = _time_per_call(
            lambda: mapper.disk_of(next(probe_iter)), len(probes) * 40
        )
        dir_iter = iter(probes * 50)
        directory_ns = _time_per_call(
            lambda: directory[next(dir_iter)], len(probes) * 40
        )
        lookups.append(
            LookupPoint(
                operations=j,
                scaddar_ns=scaddar_ns,
                directory_ns=directory_ns,
                remap_steps=j,
            )
        )

    state_rows = []
    for num_blocks in state_block_counts:
        entries: dict[str, int] = {}
        # Scale-free policies can report without building the population.
        sample = [
            Block(object_id=0, index=i, x0=x0)
            for i, x0 in enumerate(
                random_x0s(min(num_blocks, 1_000), bits=bits, seed=1)
            )
        ]
        for name, cls in ALL_POLICIES.items():
            policy = cls(4, bits=bits) if name == "scaddar" else cls(4)
            policy.register(sample)
            for __ in range(state_operations):
                try:
                    policy.apply(ScalingOp.add(1))
                except Exception:
                    break
            raw = policy.state_entries()
            if name == "directory":
                # The directory scales linearly with the catalog; report
                # the full-population footprint, not the sample's.
                raw = num_blocks
            entries[name] = raw
        state_rows.append(
            StateRow(
                blocks=num_blocks,
                operations=state_operations,
                entries_by_policy=entries,
            )
        )
    return AccessCostResult(lookups=tuple(lookups), state=tuple(state_rows))


def report(result: AccessCostResult | None = None) -> str:
    """Render the latency curve and the state-footprint table."""
    result = result or run_access_cost()
    latency = format_table(
        ("ops j", "REMAP steps", "AF() ns/lookup", "directory ns/lookup"),
        [
            (p.operations, p.remap_steps, p.scaddar_ns, p.directory_ns)
            for p in result.lookups
        ],
    )
    policies = sorted(result.state[0].entries_by_policy) if result.state else []
    state = format_table(
        ("blocks", "ops", *policies),
        [
            (row.blocks, row.operations, *(row.entries_by_policy[p] for p in policies))
            for row in result.state
        ],
    )
    return (
        "lookup latency (mean):\n"
        + latency
        + "\n\npersistent state entries by policy:\n"
        + state
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_access_cost
