"""Experiment MOD (extension): SCADDAR vs modern placement schemes.

Not in the paper — SCADDAR (2002) predates jump consistent hash (2014)
and CRUSH (2006); consistent hashing (1997) existed but targeted web
caching.  The ablation asks how the paper's scheme compares on its own
three objectives against the schemes that later owned this space
(vnode ring, jump hash, and a CRUSH-style straw2 bucket):

* movement per operation (RO1),
* load uniformity after a schedule (RO2),
* lookup cost and persistent state (AO1).

Headline shape: all three are movement-near-optimal; jump hash has the
best uniformity and zero state but cannot remove arbitrary disks; the
ring needs many vnodes for comparable uniformity; SCADDAR supports
arbitrary group removal with tiny state, but its uniformity decays with
the operation count (the Lemma 4.3 budget).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.movement import run_schedule
from repro.analysis.stats import coefficient_of_variation
from repro.core.operations import ScalingOp
from repro.experiments.tables import format_table
from repro.placement import (
    ConsistentHashPolicy,
    JumpHashPolicy,
    PlacementPolicy,
    ScaddarPolicy,
    StrawPolicy,
)
from repro.storage.block import Block
from repro.workloads.generator import random_x0s

#: Scaling schedule: growth, one mid-life removal (tail index so jump
#: hash can participate), further growth.
def comparison_schedule() -> list[ScalingOp]:
    """The mixed schedule every comparator can express."""
    return [
        ScalingOp.add(2),
        ScalingOp.add(2),
        ScalingOp.remove([7]),  # tail removal: jump hash compatible
        ScalingOp.add(3),
        ScalingOp.add(2),
    ]


@dataclass(frozen=True)
class ComparatorRow:
    """One policy's score card over the comparison schedule."""

    policy: str
    mean_moved_fraction: float
    mean_overhead: float
    final_cov: float
    lookup_ns: float
    state_entries: int
    supports_arbitrary_removal: bool


#: Policies that can remove an arbitrary (interior) disk.
_ARBITRARY_REMOVAL = {"scaddar", "consistent_hash", "straw"}


def _make_policies(n0: int, bits: int) -> list[PlacementPolicy]:
    return [
        ScaddarPolicy(n0, bits=bits),
        ConsistentHashPolicy(n0, vnodes=64),
        JumpHashPolicy(n0),
        StrawPolicy(n0),
    ]


def run_modern(
    n0: int = 4,
    num_blocks: int = 20_000,
    bits: int = 32,
    seed: int = 0x30DE,
) -> list[ComparatorRow]:
    """Run the comparison schedule over the three schemes."""
    blocks = [
        Block(object_id=0, index=i, x0=x0)
        for i, x0 in enumerate(random_x0s(num_blocks, bits=bits, seed=seed))
    ]
    schedule = comparison_schedule()
    rows = []
    for policy in _make_policies(n0, bits):
        per_op = run_schedule(policy, blocks, schedule)
        n = policy.current_disks
        loads = [0] * n
        for block in blocks[: num_blocks // 2]:
            loads[policy.disk_of(block)] += 1

        probe = blocks[: 500]
        start = time.perf_counter()
        for block in probe * 4:
            policy.disk_of(block)
        lookup_ns = (time.perf_counter() - start) / (len(probe) * 4) * 1e9

        rows.append(
            ComparatorRow(
                policy=policy.name,
                mean_moved_fraction=sum(m.moved_fraction for m in per_op)
                / len(per_op),
                mean_overhead=sum(m.overhead_ratio for m in per_op) / len(per_op),
                final_cov=coefficient_of_variation(loads),
                lookup_ns=lookup_ns,
                state_entries=policy.state_entries(),
                supports_arbitrary_removal=policy.name in _ARBITRARY_REMOVAL,
            )
        )
    return rows


def report(rows: list[ComparatorRow] | None = None) -> str:
    """Render the comparator score card."""
    rows = rows if rows is not None else run_modern()
    table = format_table(
        (
            "policy",
            "mean moved frac",
            "overhead vs optimal",
            "final CoV",
            "lookup ns",
            "state entries",
            "arbitrary removal",
        ),
        [
            (
                r.policy,
                r.mean_moved_fraction,
                r.mean_overhead,
                r.final_cov,
                r.lookup_ns,
                r.state_entries,
                r.supports_arbitrary_removal,
            )
            for r in rows
        ],
    )
    return table


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_modern
