"""Experiment MOD (extension): one server stack, every placement backend.

Not in the paper — SCADDAR (2002) predates jump consistent hash (2014)
and CRUSH (2006); consistent hashing (1997) existed but targeted web
caching.  Earlier revisions compared the raw policies over a schedule;
since the backend refactor the comparison drives the **full server
loop** for every backend in the registry
(:data:`repro.placement.backends.BACKENDS`):

    load objects → scale repeatedly → migrate blocks → snapshot →
    crash mid-migration → resume from snapshot + journal → finish →
    ``fsck``

so the numbers measure each scheme *as a server backend*, not as a bare
mapping function:

* movement per operation and efficiency vs the RO1 optimum,
* load uniformity after the schedule (RO2),
* lookup latency through the server's retrieval path and persistent
  state size (AO1),
* whether a mid-migration crash resumes without losing a block.

Headline shape: SCADDAR and the directory baseline are movement-optimal
(the directory pays O(blocks) snapshot state for it); jump hash is
near-optimal with zero state but only drops tail disks (the schedule
here is tail-compatible so it can participate); the vnode ring moves
more than optimal at moderate vnode counts.  Every backend survives the
crash with zero blocks lost — crash consistency lives in the server
stack, not in the placement scheme.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.movement import optimal_move_fraction
from repro.analysis.stats import coefficient_of_variation
from repro.core.operations import ScalingOp
from repro.experiments.tables import format_table
from repro.placement.backends import BACKENDS
from repro.server.cmserver import CMServer, ScaleReport
from repro.server.fsck import check_layout
from repro.server.journal import ScalingJournal
from repro.server.persistence import resume_server, snapshot_server
from repro.storage.disk import DiskSpec
from repro.storage.migration import MigrationSession
from repro.workloads.generator import uniform_catalog


def comparison_schedule(backend_name: str = "scaddar") -> list[ScalingOp]:
    """Growth, one mid-life tail removal, further growth.

    The removal targets the last disk so jump hash (tail-only removals)
    can run the same schedule as the arbitrary-removal backends.
    Sequential checking is reallocation-free and adds-only, so its
    schedule replaces the removal with an equal-length growth step.
    """
    if backend_name == "sequential_checking":
        return [
            ScalingOp.add(2),
            ScalingOp.add(2),
            ScalingOp.add(1),
            ScalingOp.add(3),
        ]
    return [
        ScalingOp.add(2),
        ScalingOp.add(2),
        ScalingOp.remove([7]),  # tail removal: jump hash compatible
        ScalingOp.add(3),
    ]


@dataclass(frozen=True)
class BackendRow:
    """One backend's score card over the full server loop."""

    backend: str
    mean_moved_fraction: float
    mean_efficiency: float
    final_cov: float
    lookup_ns: float
    state_entries: int
    resumed_clean: bool
    blocks_lost: int

    @property
    def survived(self) -> bool:
        """Crash consistency: resumed to a clean layout, nothing lost."""
        return self.resumed_clean and self.blocks_lost == 0


def _run_backend(
    backend_name: str,
    n0: int,
    num_blocks: int,
    bits: int,
    seed: int,
) -> BackendRow:
    """Drive the full load → scale → crash → resume loop for one backend."""
    num_objects = 4
    catalog = uniform_catalog(
        num_objects, num_blocks // num_objects, master_seed=seed, bits=bits
    )
    spec = DiskSpec(capacity_blocks=200_000, bandwidth_blocks_per_round=10)
    journal = ScalingJournal()
    server = CMServer(
        catalog, [spec] * n0, bits=bits, default_spec=spec,
        journal=journal, backend=backend_name,
    )
    blocks_before = server.total_blocks

    schedule = comparison_schedule(backend_name)
    reports: list[ScaleReport] = [server.scale(op) for op in schedule[:-1]]

    # Snapshot at the last quiescent point, then crash mid-way through
    # the final operation's migration: the journal holds the intent and
    # the moves that landed; the half-moved server is simply dropped.
    snapshot = snapshot_server(server)
    pending = server.begin_scale(schedule[-1])
    session = MigrationSession(
        server.array, pending.plan, journal=journal, op_seq=pending.op_seq
    )
    session.step(len(pending.plan), max_moves=len(pending.plan) // 2)
    del server  # the crash

    server, pending, session = resume_server(snapshot, journal)
    if session is not None:
        while not session.done:
            session.step(len(pending.plan))
        server.finish_scale(pending)
    reports.append(
        ScaleReport(
            op=schedule[-1],
            n_before=pending.n_before,
            n_after=pending.n_after,
            blocks_moved=len(pending.plan),
            total_blocks=server.total_blocks,
            optimal_fraction=optimal_move_fraction(
                schedule[-1], pending.n_before
            ),
        )
    )
    audit = check_layout(server)

    # AO1: lookup latency through the server's actual retrieval path.
    media = server.catalog.get(0)
    probe = min(500, media.num_blocks)
    start = time.perf_counter()
    for _ in range(4):
        for index in range(probe):
            server.block_location(0, index)
    lookup_ns = (time.perf_counter() - start) / (probe * 4) * 1e9

    return BackendRow(
        backend=backend_name,
        mean_moved_fraction=(
            sum(r.moved_fraction for r in reports) / len(reports)
        ),
        mean_efficiency=sum(r.efficiency for r in reports) / len(reports),
        final_cov=coefficient_of_variation(server.load_vector()),
        lookup_ns=lookup_ns,
        state_entries=server.backend.state_entries(),
        resumed_clean=audit.clean,
        blocks_lost=blocks_before - server.total_blocks,
    )


def run_modern(
    n0: int = 4,
    num_blocks: int = 20_000,
    bits: int = 32,
    seed: int = 0x30DE,
) -> list[BackendRow]:
    """Run the full server loop for every registered backend."""
    return [
        _run_backend(name, n0, num_blocks, bits, seed)
        for name in BACKENDS
    ]


def report(rows: list[BackendRow] | None = None) -> str:
    """Render the backend score card."""
    rows = rows if rows is not None else run_modern()
    table = format_table(
        (
            "backend",
            "mean moved frac",
            "efficiency",
            "final CoV",
            "lookup ns",
            "state entries",
            "crash-resume clean",
            "blocks lost",
        ),
        [
            (
                r.backend,
                r.mean_moved_fraction,
                r.mean_efficiency,
                r.final_cov,
                r.lookup_ns,
                r.state_entries,
                "yes" if r.resumed_clean else "NO",
                r.blocks_lost,
            )
            for r in rows
        ],
    )
    survived = all(r.survived for r in rows)
    return (
        table
        + "\nevery backend ran the same load -> scale -> crash -> resume "
        "loop through one server stack"
        + ("" if survived else "\n*** SOME BACKEND LOST DATA ON RESUME ***")
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_modern
