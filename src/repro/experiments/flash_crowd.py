"""Experiment FLASH-CROWD: popularity-aware replication under a burst.

ROADMAP item 4's payoff measurement.  Two clusters, built from the same
seed (identical shard homes), serve the same Zipf stream population at
the **same total storage budget**:

* **uniform** — the budget affords one copy per object and no more
  (the best uniform R the budget buys is R=1), the pre-policy baseline;
* **adaptive** — R=1 plus a
  :class:`~repro.cluster.popularity.ReplicationPolicy` whose copy
  budget is the *same* total; the fractional headroom above
  one-per-object is spent where observed demand is.

The timeline stresses exactly what popularity-aware replication is
for:

1. **warm** — Zipf-apportioned streams play; the adaptive cluster's
   demand tracker ranks the head and its rate-bounded per-round adapt
   pass grows the hot objects' replica sets;
2. **flash** — a burst of new streams lands on a previously *cold*
   object; decayed demand re-ranks it to the top and the policy shifts
   copies toward it (hysteresis keeps the calm tail untouched);
3. **death** — the shard holding the flash object (which the Zipf head
   also hashes around) dies mid-serving.  Hot-object availability over
   the post-death window is the headline: the adaptive cluster serves
   its top-decile objects at **1.0** (streams fail over to the copies
   demand earned), the uniform cluster strands every stream of every
   dead-homed object.

Per-object availability is measured from first principles: each round's
per-stream demand (`demand_window`, non-destructive) is charged to the
stream's object, and misses come from the schedulers' cumulative
``hiccups_by_stream`` deltas plus stranded-stream demand.  Cold objects
on the dead shard degrade the same way in both clusters — the policy
trades *their* redundancy headroom for the head's, which is the whole
point.

Both runs end with a clean cluster fsck (under-replication explained by
the dead shard is *degraded*, not a breach), the adaptive cluster never
exceeds its copy budget, and the adaptive scenario is executed twice to
prove same-seed bit-identical state (layout + replica map + committed
targets + tracker scores).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Optional

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.fsck import check_cluster
from repro.cluster.popularity import ReplicationPolicy
from repro.experiments.cluster_chaos import ha_digest
from repro.experiments.tables import format_table
from repro.storage.disk import DiskSpec
from repro.workloads.generator import apportion_streams, zipf_popularity


@dataclass(frozen=True)
class FlashCrowdResult:
    """Outcome of one flash-crowd variant (uniform or adaptive)."""

    variant: str
    shards: int
    objects: int
    #: Total copies the variant is allowed (primaries included).
    copy_budget: int
    #: Copies actually held when the shard died.
    copies_at_death: int
    streams: int
    victim_shard: int
    #: Top-decile object ids (by constructed demand), the availability
    #: claim's subjects.
    hot_objects: tuple[int, ...]
    #: Served fraction of hot-object demand across the post-death window.
    hot_availability: float
    #: Served fraction of all demand across the post-death window.
    overall_availability: float
    #: Served fraction of non-hot demand (the graceful-degradation side).
    cold_availability: float
    streams_stranded: int
    fsck_clean: bool
    #: Same-seed replay reproduced the full state digest (always True
    #: for variants not replayed).
    deterministic: bool = True
    digest: str = ""

    @property
    def budget_respected(self) -> bool:
        """The variant never held more copies than its budget."""
        return self.copies_at_death <= self.copy_budget


def _build_cluster(
    num_shards: int,
    disks_per_shard: int,
    num_objects: int,
    blocks_per_object: int,
    num_domains: int,
    bandwidth: int,
    seed: int,
    policy: Optional[ReplicationPolicy],
    obs=None,
) -> ClusterCoordinator:
    """One serving cluster; identical homes for any fixed seed, with or
    without a policy attached (placement never reads the tracker)."""
    spec = DiskSpec(
        capacity_blocks=100_000, bandwidth_blocks_per_round=bandwidth
    )
    coordinator = ClusterCoordinator.create(
        num_shards,
        disks_per_shard,
        spec,
        bits=32,
        router_backend="consistent_hash",
        master_seed=seed,
        obs=obs,
        replication_factor=1,
        num_domains=num_domains,
        replication_policy=policy,
    )
    for i in range(num_objects):
        coordinator.add_object(f"title-{i}", blocks_per_object, 1)
    return coordinator


def _admit(
    coordinator: ClusterCoordinator,
    census: list[tuple[int, int]],
    next_stream_id: int,
) -> int:
    """Admit ``count`` streams per (gid, count), staggered start blocks."""
    for gid, count in census:
        blocks = coordinator.shard(
            coordinator.shard_of(gid)
        ).server.catalog.get(coordinator.local_id_of(gid)).num_blocks
        for i in range(count):
            coordinator.admit_stream(
                next_stream_id, gid, start_block=(i * 37) % blocks
            )
            next_stream_id += 1
    return next_stream_id


def _hiccup_census(coordinator: ClusterCoordinator) -> dict[int, int]:
    """Cumulative hiccups per stream id, summed over every scheduler
    (dead shards' schedulers included — failed-over streams leave their
    history behind)."""
    census: dict[int, int] = {}
    for shard in coordinator._serving_shards():
        if shard._scheduler is None:
            continue
        for stream_id, count in shard.scheduler.hiccups_by_stream.items():
            census[stream_id] = census.get(stream_id, 0) + count
    return census


def _measured_rounds(
    coordinator: ClusterCoordinator, rounds: int
) -> tuple[dict[int, int], dict[int, int]]:
    """Run ``rounds`` barrier rounds, charging per-object demand and
    misses.  Returns ``(requested_by_gid, hiccups_by_gid)``."""
    requested: dict[int, int] = {}
    hiccups: dict[int, int] = {}
    stream_gid = dict(coordinator._streams)
    before = _hiccup_census(coordinator)
    for _ in range(rounds):
        # Demand this round, read non-destructively before serving.
        for shard in coordinator._serving_shards():
            if shard._scheduler is None:
                continue
            if not coordinator.health.is_live(shard.shard_id):
                continue
            for stream in shard.scheduler.streams:
                gid = stream_gid.get(stream.stream_id)
                if gid is None:
                    continue
                _, count = stream.demand_window()
                requested[gid] = requested.get(gid, 0) + count
        for stream_id in sorted(coordinator._stranded):
            gid = stream_gid.get(stream_id)
            _, count = coordinator._stranded[stream_id].demand_window()
            if gid is not None and count:
                requested[gid] = requested.get(gid, 0) + count
                hiccups[gid] = hiccups.get(gid, 0) + count
        coordinator.run_round()
    after = _hiccup_census(coordinator)
    for stream_id, count in after.items():
        delta = count - before.get(stream_id, 0)
        gid = stream_gid.get(stream_id)
        if delta and gid is not None:
            hiccups[gid] = hiccups.get(gid, 0) + delta
    return requested, hiccups


def _availability(
    requested: dict[int, int], hiccups: dict[int, int], gids
) -> float:
    """Served fraction of the given objects' demand (1.0 on no demand)."""
    total = sum(requested.get(gid, 0) for gid in gids)
    missed = sum(hiccups.get(gid, 0) for gid in gids)
    return (total - missed) / total if total else 1.0


def _state_digest(coordinator: ClusterCoordinator) -> str:
    """Layout + replica map + popularity state, bit-exactly."""
    manager = coordinator.replication
    popularity = manager.policy_payload()
    return hashlib.sha256(
        (
            ha_digest(coordinator)
            + json.dumps(popularity, sort_keys=True, separators=(",", ":"))
        ).encode()
    ).hexdigest()


def _run_variant(
    variant: str,
    num_shards: int,
    disks_per_shard: int,
    num_objects: int,
    blocks_per_object: int,
    num_domains: int,
    bandwidth: int,
    base_streams: int,
    flash_streams: int,
    warm_rounds: int,
    flash_rounds: int,
    post_rounds: int,
    copy_budget: int,
    seed: int,
    policy: Optional[ReplicationPolicy],
    obs=None,
) -> FlashCrowdResult:
    coordinator = _build_cluster(
        num_shards, disks_per_shard, num_objects, blocks_per_object,
        num_domains, bandwidth, seed, policy, obs=obs,
    )

    # Zipf-apportioned base census, then the burst on a cold object.
    weights = zipf_popularity(num_objects)
    census = [
        (gid, count)
        for gid, count in enumerate(apportion_streams(base_streams, weights))
        if count
    ]
    flash_gid = num_objects - 2  # deep in the Zipf tail: cold until now
    next_id = _admit(coordinator, census, 0)
    coordinator.run_rounds(warm_rounds)

    next_id = _admit(coordinator, [(flash_gid, flash_streams)], next_id)
    coordinator.run_rounds(flash_rounds)

    # The burst's object defines the blast radius: its home shard dies.
    victim = coordinator.shard_of(flash_gid)
    copies_at_death = (
        len(coordinator._home) + len(coordinator._replica_local)
    )
    death = coordinator.kill_shard(victim)

    # Hot set: the top decile by *constructed* demand — the flash object
    # first, then the Zipf head — identical for both variants.
    decile = max(1, num_objects // 10)
    hot = (flash_gid,) + tuple(range(decile))[: max(0, decile - 1)]

    requested, hiccups = _measured_rounds(coordinator, post_rounds)
    cold = [gid for gid in coordinator.object_ids if gid not in hot]
    audit = check_cluster(coordinator)
    return FlashCrowdResult(
        variant=variant,
        shards=num_shards,
        objects=num_objects,
        copy_budget=copy_budget,
        copies_at_death=copies_at_death,
        streams=next_id,
        victim_shard=victim,
        hot_objects=hot,
        hot_availability=_availability(requested, hiccups, hot),
        overall_availability=_availability(
            requested, hiccups, coordinator.object_ids
        ),
        cold_availability=_availability(requested, hiccups, cold),
        streams_stranded=death.streams_stranded + len(coordinator._stranded),
        fsck_clean=audit.clean,
        digest=_state_digest(coordinator),
    )


def run_flash_crowd(
    num_shards: int = 6,
    disks_per_shard: int = 3,
    num_objects: int = 20,
    blocks_per_object: int = 80,
    num_domains: int = 3,
    bandwidth: int = 200,
    base_streams: int = 48,
    flash_streams: int = 16,
    warm_rounds: int = 10,
    flash_rounds: int = 12,
    post_rounds: int = 8,
    extra_copy_fraction: float = 0.4,
    seed: int = 0xF1A5,
    obs=None,
) -> list[FlashCrowdResult]:
    """Run both variants at the same storage budget; returns
    ``[uniform, adaptive]``.

    The budget is ``num_objects * (1 + extra_copy_fraction)`` total
    copies — enough for R=1 everywhere plus a fractional headroom that
    *cannot* buy uniform R=2, so the uniform baseline's best play is
    R=1 and the headroom is only exploitable by spending it unevenly.
    """
    copy_budget = num_objects + max(2, round(num_objects * extra_copy_fraction))

    def policy() -> ReplicationPolicy:
        return ReplicationPolicy(
            copy_budget,
            hysteresis_rounds=2,
            max_copy_ops_per_round=4,
            demand_half_life_rounds=8,
        )

    common = dict(
        num_shards=num_shards,
        disks_per_shard=disks_per_shard,
        num_objects=num_objects,
        blocks_per_object=blocks_per_object,
        num_domains=num_domains,
        bandwidth=bandwidth,
        base_streams=base_streams,
        flash_streams=flash_streams,
        warm_rounds=warm_rounds,
        flash_rounds=flash_rounds,
        post_rounds=post_rounds,
        copy_budget=copy_budget,
        seed=seed,
    )
    uniform = _run_variant("uniform", policy=None, obs=obs, **common)
    adaptive = _run_variant("adaptive", policy=policy(), obs=obs, **common)
    # Same seed, fresh policy object, second run: every bit of state —
    # layout, replica map, targets, tracker scores — must reproduce.
    adaptive_replay = _run_variant("adaptive", policy=policy(), **common)
    adaptive = replace(
        adaptive,
        deterministic=adaptive.digest == adaptive_replay.digest,
    )
    return [uniform, adaptive]


def report(results: Optional[list[FlashCrowdResult]] = None) -> str:
    """Render the flash-crowd comparison."""
    results = results if results is not None else run_flash_crowd()
    table = format_table(
        (
            "variant",
            "budget",
            "copies",
            "streams",
            "stranded",
            "hot avail",
            "cold avail",
            "overall",
            "fsck clean",
            "same-seed",
        ),
        [
            (
                r.variant,
                r.copy_budget,
                r.copies_at_death,
                r.streams,
                r.streams_stranded,
                round(r.hot_availability, 4),
                round(r.cold_availability, 4),
                round(r.overall_availability, 4),
                "yes" if r.fsck_clean else "NO",
                "yes" if r.deterministic else "NO",
            )
            for r in results
        ],
    )
    uniform, adaptive = results[0], results[-1]
    won = (
        adaptive.hot_availability >= 1.0
        and adaptive.hot_availability >= uniform.hot_availability
        and adaptive.budget_respected
        and all(r.fsck_clean and r.deterministic for r in results)
    )
    return (
        table
        + "\nsame storage budget, same shard death: demand-apportioned "
        "copies keep every top-decile object serving at 1.0 while the "
        "uniform baseline strands the flash crowd; cold objects degrade "
        "identically — the headroom went where the viewers are"
        + ("" if won else "\n*** ADAPTIVE REPLICATION DID NOT PAY OFF ***")
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_flash_crowd
