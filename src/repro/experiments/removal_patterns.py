"""Experiment REM: removal-heavy and mixed scaling schedules.

Section 4.2.1 derives the removal REMAP but the evaluation narrative
focuses on additions; this experiment exercises the other half.  For a
removal-only schedule and a mixed add/remove schedule it verifies, per
operation:

* RO1 — exactly the evicted blocks move (movement overhead 1.0);
* RO2 — evicted blocks land uniformly over the survivors (chi-square);
* the load stays balanced (CoV), and shrinking then regrowing the array
  spends the same Lemma 4.3 budget as pure growth of equal length
  (every operation multiplies Pi by the new disk count).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.fairness import destination_counts
from repro.analysis.movement import PhysicalTracker, optimal_move_fraction
from repro.analysis.stats import chi_square_uniform, coefficient_of_variation
from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.experiments.tables import format_table
from repro.workloads.generator import random_x0s
from repro.workloads.schedules import mixed_schedule, random_removals


@dataclass(frozen=True)
class RemovalOpStats:
    """Per-operation verdicts under a removal/mixed schedule."""

    op_index: int
    kind: str
    n_after: int
    moved: int
    overhead: float
    destination_p: float
    cov_after: float


@dataclass(frozen=True)
class RemovalPatternsResult:
    """Both schedules' per-op statistics plus the budget picture."""

    schedule_name: str
    ops: tuple[RemovalOpStats, ...]
    final_unfairness_bound: float
    remaining_budget: int


def _run_schedule(
    name: str,
    schedule: list[ScalingOp],
    n0: int,
    num_blocks: int,
    bits: int,
    eps: float,
    seed: int,
) -> RemovalPatternsResult:
    mapper = ScaddarMapper(n0=n0, bits=bits)
    x0s = random_x0s(num_blocks, bits=bits, seed=seed)
    tracker = PhysicalTracker(n0)
    physical = {x0: tracker.physical(mapper.disk_of(x0)) for x0 in x0s}
    stats = []
    for op_index, op in enumerate(schedule):
        n_before = mapper.current_disks
        mapper.apply(op)
        tracker.apply(op)
        n_after = mapper.current_disks
        eligible = (
            list(range(n_before, n_after))
            if op.kind == "add"
            else list(range(n_after))
        )
        destinations = []
        new_physical = {}
        for x0 in x0s:
            disk = mapper.disk_of(x0)
            home = tracker.physical(disk)
            new_physical[x0] = home
            if home != physical[x0]:
                destinations.append(disk)
        counts = destination_counts(destinations, eligible)
        if len(counts) >= 2 and sum(counts) > 0:
            __, pvalue = chi_square_uniform(counts)
        else:
            pvalue = 1.0
        loads = [0] * n_after
        for x0 in x0s:
            loads[mapper.disk_of(x0)] += 1
        optimal = float(optimal_move_fraction(op, n_before))
        moved = len(destinations)
        stats.append(
            RemovalOpStats(
                op_index=op_index,
                kind=op.kind,
                n_after=n_after,
                moved=moved,
                overhead=(moved / num_blocks) / optimal if optimal else 0.0,
                destination_p=pvalue,
                cov_after=coefficient_of_variation(loads),
            )
        )
        physical = new_physical
    return RemovalPatternsResult(
        schedule_name=name,
        ops=tuple(stats),
        final_unfairness_bound=mapper.unfairness_bound(),
        remaining_budget=mapper.remaining_operations(eps),
    )


def run_removal_patterns(
    n0: int = 10,
    num_blocks: int = 20_000,
    bits: int = 32,
    eps: float = 0.05,
    seed: int = 0x4E40,
) -> list[RemovalPatternsResult]:
    """Run a removal-only and a mixed schedule over SCADDAR."""
    removal_only = random_removals(4, n0=n0, seed=seed)
    mixed = mixed_schedule(8, n0=n0, seed=seed, add_probability=0.5)
    return [
        _run_schedule("removals-only", removal_only, n0, num_blocks, bits, eps, seed),
        _run_schedule("mixed", mixed, n0, num_blocks, bits, eps, seed + 1),
    ]


def report(results: list[RemovalPatternsResult] | None = None) -> str:
    """Render per-op verdicts for both schedules."""
    results = results if results is not None else run_removal_patterns()
    sections = []
    for result in results:
        rows = [
            (
                op.op_index,
                op.kind,
                op.n_after,
                op.moved,
                op.overhead,
                op.destination_p,
                op.cov_after,
            )
            for op in result.ops
        ]
        table = format_table(
            ("op", "kind", "Nj", "moved", "overhead", "dest p-value", "CoV"),
            rows,
        )
        sections.append(
            f"schedule: {result.schedule_name}\n{table}\n"
            f"final unfairness bound {result.final_unfairness_bound:.2e}, "
            f"budget left {result.remaining_budget} ops"
        )
    return "\n\n".join(sections)


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_removal_patterns
