"""Experiment ING: loading new media onto a busy server (Section 2 [1]).

The paper notes it needs a block-writing technique "to write blocks
during the redistribution" (Aref et al.).  The ingest engine reuses the
migration discipline — writes only spend spare per-round bandwidth — so
loading a new title must not disturb playing streams, only stretch with
their utilization.

The harness admits streams to several utilization levels, ingests the
same object at each, and reports ingest time and stream hiccups (the
no-migration control isolates ingest-caused ones).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.server.cmserver import CMServer
from repro.server.ingest import IngestSession
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream
from repro.storage.disk import DiskSpec
from repro.experiments.tables import format_table
from repro.workloads.generator import uniform_catalog


@dataclass(frozen=True)
class IngestLoadRow:
    """Ingest outcome at one utilization level."""

    utilization: float
    streams: int
    ingest_blocks: int
    ingest_rounds: int
    hiccups_during_ingest: int
    baseline_hiccups: int

    @property
    def ingest_caused_hiccups(self) -> int:
        """Hiccups attributable to the ingest writes."""
        return max(0, self.hiccups_during_ingest - self.baseline_hiccups)


def _build(num_objects, blocks_per_object, n0, seed):
    catalog = uniform_catalog(
        num_objects, blocks_per_object, master_seed=seed, bits=32
    )
    spec = DiskSpec(capacity_blocks=200_000, bandwidth_blocks_per_round=8)
    return CMServer(catalog, [spec] * n0, bits=32, default_spec=spec)


def _admit(server, scheduler, count):
    for sid in range(count):
        media = server.catalog.get(sid % len(server.catalog))
        scheduler.admit(
            Stream(sid, media, start_block=(sid * 97) % media.num_blocks)
        )


def run_ingest_under_load(
    utilizations: tuple[float, ...] = (0.2, 0.5, 0.8),
    n0: int = 4,
    num_objects: int = 5,
    blocks_per_object: int = 1_500,
    ingest_blocks: int = 600,
    seed: int = 0x1267,
) -> list[IngestLoadRow]:
    """Ingest the same object at several stream-utilization levels."""
    rows = []
    for utilization in utilizations:
        server = _build(num_objects, blocks_per_object, n0, seed)
        scheduler = RoundScheduler(server.array)
        capacity = sum(
            server.array.disk(pid).bandwidth_blocks_per_round
            for pid in server.array.physical_ids
        )
        num_streams = max(1, math.floor(capacity * utilization))
        _admit(server, scheduler, num_streams)

        session = IngestSession(server, "new-title", ingest_blocks)
        rounds = 0
        hiccups = 0
        while not session.done:
            report = scheduler.run_round()
            hiccups += report.hiccups
            session.step(report.spare_by_physical)
            rounds += 1

        control = _build(num_objects, blocks_per_object, n0, seed)
        control_sched = RoundScheduler(control.array)
        _admit(control, control_sched, num_streams)
        baseline = sum(r.hiccups for r in control_sched.run_rounds(rounds))

        rows.append(
            IngestLoadRow(
                utilization=utilization,
                streams=num_streams,
                ingest_blocks=ingest_blocks,
                ingest_rounds=rounds,
                hiccups_during_ingest=hiccups,
                baseline_hiccups=baseline,
            )
        )
    return rows


def report(rows: list[IngestLoadRow] | None = None) -> str:
    """Render the utilization sweep."""
    rows = rows if rows is not None else run_ingest_under_load()
    table = format_table(
        (
            "utilization",
            "streams",
            "blocks ingested",
            "ingest rounds",
            "hiccups",
            "baseline hiccups",
            "ingest-caused",
        ),
        [
            (
                r.utilization,
                r.streams,
                r.ingest_blocks,
                r.ingest_rounds,
                r.hiccups_during_ingest,
                r.baseline_hiccups,
                r.ingest_caused_hiccups,
            )
            for r in rows
        ],
    )
    return (
        table
        + "\ningest-caused = 0: writing new media costs rounds, never "
        "stream deadlines (same discipline as online redistribution)"
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_ingest_under_load
