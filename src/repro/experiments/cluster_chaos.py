"""Experiment CLUSTER-CHAOS: cluster rebalances under failure.

The cluster-level counterpart of the chaos-scaling experiment: every
scenario reorganizes *objects over shards* (SCADDAR's minimal-move
objective one level up) while streams play, and must come out the other
side with **zero blocks lost** and a clean cluster fsck.  Four
scenarios:

* **shard-add** — grow the cluster online; migrations interleave with
  barrier rounds, and the observed object-move fraction must respect the
  router's theoretical bound (``k/(N+k)`` for ``jump_hash``, the
  object-level analogue of the paper's Lemma bounds);
* **shard-remove** — drain and detach a shard under the same serving
  load;
* **crash-resume** — the coordinator dies mid-rebalance ("shard death
  mid-rebalance": the process owning the topology is gone); recovery
  replays the :class:`~repro.cluster.journal.ClusterJournal` over the
  manifest and must land bit-identically on the layout an uncrashed run
  produces;
* **disk-death** — a disk dies *inside* one shard mid-scale while the
  rest of the cluster keeps serving; the shard escalates
  failure-as-removal locally, and every shard draws its fault schedule
  from its own :func:`~repro.cluster.shard.shard_fault_seed`-derived
  stream (no two shards share one);
* **shard-death-serving** — with replication factor 2 across two
  failure domains, a whole shard dies mid-serving; streams fail over to
  replicas, availability across the event stays >= 0.99, the journaled
  rebuild restores R=2 with a fully-replicated fsck, and crash-resume
  of the rebuild is proven at **every** move index against the
  uncrashed digest;
* **shard-death-rebalance** — the shard dies while an online shard-add
  rebalance is mid-flight; the open rebalance completes (dead sources
  fall back to replica copies), then the rebuild runs — zero blocks
  lost through the composition.

Every run is bit-reproducible from ``seed``: each scenario's final
layout is digested and the shard-add and shard-death scenarios are
executed twice to prove the digests match.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, replace

from repro.analysis.movement import optimal_move_fraction
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.fsck import check_cluster
from repro.cluster.journal import ClusterJournal
from repro.cluster.persistence import resume_cluster, snapshot_cluster
from repro.core.operations import ScalingOp
from repro.experiments.tables import format_table
from repro.server.faults import DiskDeathError, FaultInjector
from repro.server.fsck import check_layout
from repro.server.recovery import escalate_disk_death
from repro.storage.disk import DiskSpec
from repro.storage.migration import MigrationSession


@dataclass(frozen=True)
class ClusterChaosResult:
    """Outcome of one cluster chaos scenario."""

    scenario: str
    shards_before: int
    shards_after: int
    planned_moves: int
    migrated: int
    rounds: int
    hiccups: int
    blocks_lost: int
    layout_clean: bool
    #: Fraction of objects moved over the router's theoretical optimum
    #: (<= 1.0 + slack means the rebalance was move-minimal).
    move_fraction: float = 0.0
    optimal_fraction: float = 0.0
    #: Same-seed replay produced an identical layout digest.
    deterministic: bool = True
    #: sha256 over the final (gid, shard, logical placements) layout.
    digest: str = ""
    #: Served fraction of the cluster demand across the whole event
    #: (1.0 for scenarios that do not measure it).
    availability: float = 1.0
    #: The scenario's availability floor (0.0 when not asserted).
    availability_floor: float = 0.0

    @property
    def survived(self) -> bool:
        """The headline claim: nothing lost, everything consistent,
        availability above the scenario's floor."""
        return (
            self.blocks_lost == 0
            and self.layout_clean
            and self.availability >= self.availability_floor
        )


def _build(
    num_shards: int,
    disks_per_shard: int,
    num_objects: int,
    blocks_per_object: int,
    bits: int,
    seed: int,
    router_backend: str = "jump_hash",
    journal: ClusterJournal | None = None,
    obs=None,
    replication_factor: int = 1,
    num_domains: int | None = None,
) -> ClusterCoordinator:
    spec = DiskSpec(capacity_blocks=100_000, bandwidth_blocks_per_round=12)
    coordinator = ClusterCoordinator.create(
        num_shards,
        disks_per_shard,
        spec,
        bits=bits,
        router_backend=router_backend,
        master_seed=seed,
        journal=journal if journal is not None else ClusterJournal(),
        obs=obs,
        replication_factor=replication_factor,
        num_domains=num_domains,
    )
    for i in range(num_objects):
        coordinator.add_object(f"title-{i}", blocks_per_object)
    for i in range(num_objects):
        media_blocks = blocks_per_object
        coordinator.admit_stream(i, i, start_block=(i * 37) % media_blocks)
    return coordinator


def layout_digest(coordinator: ClusterCoordinator) -> str:
    """sha256 fingerprint of the cluster's logical block layout."""
    layout = []
    for gid in coordinator.object_ids:
        shard_id, physicals = coordinator.block_locations(gid)
        array = coordinator.shard(shard_id).server.array
        layout.append(
            (gid, shard_id, [array.logical_of(pid) for pid in physicals])
        )
    return hashlib.sha256(
        json.dumps(layout, separators=(",", ":")).encode()
    ).hexdigest()


def ha_digest(coordinator: ClusterCoordinator) -> str:
    """Layout digest extended with the replica map — the fingerprint a
    replicated cluster must reproduce bit-for-bit across same-seed runs
    and crash-resumed rebuilds."""
    replicas = sorted(
        (gid, list(copies))
        for gid, copies in coordinator._replica_home.items()
    )
    return hashlib.sha256(
        (
            layout_digest(coordinator)
            + json.dumps(replicas, separators=(",", ":"))
        ).encode()
    ).hexdigest()


def _rebalance_online(
    coordinator: ClusterCoordinator, op: ScalingOp
) -> tuple[int, int, int, int]:
    """Begin/migrate/finish with one barrier round per migration.

    Returns (planned, migrated, rounds, hiccups)."""
    before = coordinator.total_blocks
    pending = coordinator.begin_reshard(op)
    rounds = hiccups = 0
    while coordinator.migrate_next(pending) is not None:
        report = coordinator.run_round()
        rounds += 1
        hiccups += report.hiccups
    coordinator.finish_reshard(pending)
    assert coordinator.total_blocks == before
    return len(pending.moves), len(pending.applied), rounds, hiccups


def _topology_scenario(
    scenario: str,
    op: ScalingOp,
    num_shards: int,
    disks_per_shard: int,
    num_objects: int,
    blocks_per_object: int,
    bits: int,
    seed: int,
    obs=None,
) -> ClusterChaosResult:
    coordinator = _build(
        num_shards, disks_per_shard, num_objects, blocks_per_object,
        bits, seed, obs=obs,
    )
    before = coordinator.total_blocks
    planned, migrated, rounds, hiccups = _rebalance_online(coordinator, op)
    audit = check_cluster(coordinator)
    return ClusterChaosResult(
        scenario=scenario,
        shards_before=num_shards,
        shards_after=coordinator.num_shards,
        planned_moves=planned,
        migrated=migrated,
        rounds=rounds,
        hiccups=hiccups,
        blocks_lost=before - coordinator.total_blocks,
        layout_clean=audit.clean,
        move_fraction=migrated / num_objects if num_objects else 0.0,
        optimal_fraction=optimal_move_fraction(op, num_shards),
        digest=layout_digest(coordinator),
    )


def _crash_resume_scenario(
    num_shards: int,
    disks_per_shard: int,
    num_objects: int,
    blocks_per_object: int,
    bits: int,
    seed: int,
    obs=None,
) -> ClusterChaosResult:
    op = ScalingOp.add(1)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "cluster.journal")
        coordinator = _build(
            num_shards, disks_per_shard, num_objects, blocks_per_object,
            bits, seed, journal=ClusterJournal(path), obs=obs,
        )
        manifest = snapshot_cluster(coordinator)
        blocks = coordinator.total_blocks

        # The doomed timeline: rebalance until half the moves landed,
        # then the coordinator "dies" (we simply stop driving it).
        pending = coordinator.begin_reshard(op)
        planned = len(pending.moves)
        for _ in range(planned // 2):
            coordinator.migrate_next(pending)
        coordinator.journal.close()

        # The uncrashed twin fixes the expected layout.
        twin = _build(
            num_shards, disks_per_shard, num_objects, blocks_per_object,
            bits, seed,
        )
        twin_planned, twin_migrated, _, _ = _rebalance_online(twin, op)
        expected = layout_digest(twin)

        resumed, resumed_pending = resume_cluster(manifest, path)
        rounds = hiccups = 0
        assert resumed_pending is not None
        mid_audit = check_cluster(resumed, resumed_pending)
        while resumed.migrate_next(resumed_pending) is not None:
            report = resumed.run_round()
            rounds += 1
            hiccups += report.hiccups
        resumed.finish_reshard(resumed_pending)
        resumed.journal.close()
        audit = check_cluster(resumed)
        digest = layout_digest(resumed)
        return ClusterChaosResult(
            scenario="crash-resume",
            shards_before=num_shards,
            shards_after=resumed.num_shards,
            planned_moves=planned,
            migrated=len(resumed_pending.applied),
            rounds=rounds,
            hiccups=hiccups,
            blocks_lost=blocks - resumed.total_blocks,
            layout_clean=audit.clean and mid_audit.clean,
            move_fraction=(
                twin_migrated / num_objects if num_objects else 0.0
            ),
            optimal_fraction=optimal_move_fraction(op, num_shards),
            deterministic=digest == expected,
            digest=digest,
        )


def _disk_death_scenario(
    num_shards: int,
    disks_per_shard: int,
    num_objects: int,
    blocks_per_object: int,
    bits: int,
    seed: int,
    fault_rate: float,
    obs=None,
) -> ClusterChaosResult:
    coordinator = _build(
        num_shards, disks_per_shard, num_objects, blocks_per_object,
        bits, seed, obs=obs,
    )
    before = coordinator.total_blocks
    victim = coordinator.shards[0]
    server = victim.server

    # Each shard's schedule comes from its own derived stream — the
    # injector for shard 0 must not correlate with any sibling's.
    seeds = {s.fault_seed(seed) for s in coordinator.shards}
    decorrelated = len(seeds) == len(coordinator.shards)
    injector = FaultInjector(
        seed=victim.fault_seed(seed),
        transient_rate=fault_rate,
        death_at_transfer=max(2, server.total_blocks // (disks_per_shard * 4)),
        death_victim="source",
    )
    pending = server.begin_scale(ScalingOp.add(1))
    session = MigrationSession(
        server.array, pending.plan,
        journal=server.journal, op_seq=pending.op_seq, injector=injector,
        obs=server.obs,
    )
    rounds = hiccups = 0
    try:
        while not session.done:
            report = coordinator.run_round()
            rounds += 1
            hiccups += report.hiccups
            session.step(report.reports[victim.shard_id].spare_by_physical)
        server.finish_scale(pending)
    except DiskDeathError as death:
        escalate_disk_death(
            server, pending, session, death.physical_id, injector=injector
        )
    shard_audit = check_layout(server)
    cluster_audit = check_cluster(coordinator)
    return ClusterChaosResult(
        scenario="disk-death",
        shards_before=num_shards,
        shards_after=coordinator.num_shards,
        planned_moves=len(pending.plan),
        migrated=len(session.executed),
        rounds=rounds,
        hiccups=hiccups,
        blocks_lost=before - coordinator.total_blocks,
        layout_clean=(
            shard_audit.clean and cluster_audit.clean and decorrelated
        ),
        digest=layout_digest(coordinator),
    )


def _shard_death_scenario(
    num_shards: int,
    disks_per_shard: int,
    num_objects: int,
    blocks_per_object: int,
    bits: int,
    seed: int,
    mid_rebalance: bool,
    resume_proof: bool = False,
    obs=None,
) -> ClusterChaosResult:
    """Kill a whole shard (mid-serving or mid-rebalance) at R=2 across
    two failure domains, rebuild, and audit the full story.

    With ``resume_proof`` the rebuild's journal is re-cut at every
    apply index and each cut resumed to completion — every one must
    land on the uncrashed run's exact layout + replica-map digest.
    """
    scenario = (
        "shard-death-rebalance" if mid_rebalance else "shard-death-serving"
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "cluster.journal")
        coordinator = _build(
            num_shards, disks_per_shard, num_objects, blocks_per_object,
            bits, seed, router_backend="consistent_hash",
            journal=ClusterJournal(path), obs=obs,
            replication_factor=2, num_domains=2,
        )
        domains = {s.domain for s in coordinator.shards}
        assert len(domains) >= 2
        blocks_before = coordinator.total_blocks
        reports = coordinator.run_rounds(3)  # steady state first

        pending = None
        if mid_rebalance:
            pending = coordinator.begin_reshard(ScalingOp.add(1))
            coordinator.migrate_next(pending)
            reports.append(coordinator.run_round())
            victim = min(
                sid
                for sid in coordinator.shard_ids
                if sid not in pending.new_shard_ids
            )
        else:
            victim = coordinator.shard_of(0)
        manifest = (
            snapshot_cluster(coordinator) if not mid_rebalance else None
        )

        coordinator.kill_shard(victim)
        reports.append(coordinator.run_round())
        if pending is not None:
            # The open rebalance completes around the corpse: dead
            # sources fall back to replica copies or promotion.
            while coordinator.migrate_next(pending) is not None:
                reports.append(coordinator.run_round())
            coordinator.finish_reshard(pending)

        rebuilder = coordinator.begin_shard_rebuild(victim)
        planned = len(rebuilder.pending.moves)
        while not rebuilder.done:
            rebuilder.step()
            reports.append(coordinator.run_round())
        rebuilder.finish()
        reports.extend(coordinator.run_rounds(2))
        coordinator.journal.close()

        requested = sum(r.requested for r in reports)
        served = sum(r.served for r in reports)
        availability = served / requested if requested else 1.0
        audit = check_cluster(coordinator)
        clean = (
            audit.clean
            and audit.fully_replicated
            and coordinator.lost_objects == 0
        )
        digest = ha_digest(coordinator)

        deterministic = True
        if resume_proof and manifest is not None:
            # Re-cut the rebuild journal at every apply index; every
            # resumed timeline must reach this exact digest.
            lines = open(path, encoding="utf-8").read().splitlines(
                keepends=True
            )
            begin = [
                l for l in lines if json.loads(l)["type"] == "begin"
            ]
            applies = [
                l for l in lines if json.loads(l)["type"] == "apply"
            ]
            for crash_at in range(len(applies) + 1):
                cut = os.path.join(tmp, f"cut-{crash_at}.journal")
                with open(cut, "w", encoding="utf-8") as handle:
                    handle.write("".join(begin + applies[:crash_at]))
                resumed, open_pending = resume_cluster(
                    dict(manifest), cut
                )
                assert open_pending is not None
                resumed.execute_reshard(open_pending)
                resumed.finish_reshard(open_pending)
                resumed.journal.close()
                if ha_digest(resumed) != digest:
                    deterministic = False

        return ClusterChaosResult(
            scenario=scenario,
            shards_before=num_shards,
            shards_after=coordinator.num_shards,
            planned_moves=planned,
            migrated=planned,
            rounds=len(reports),
            hiccups=sum(r.hiccups for r in reports),
            blocks_lost=(
                coordinator.lost_blocks
                + max(0, blocks_before - coordinator.total_blocks)
            ),
            layout_clean=clean,
            deterministic=deterministic,
            digest=digest,
            availability=availability,
            availability_floor=0.99,
        )


def run_cluster_chaos(
    num_shards: int = 3,
    disks_per_shard: int = 3,
    num_objects: int = 18,
    blocks_per_object: int = 120,
    bits: int = 32,
    fault_rate: float = 0.1,
    seed: int = 0xC105,
    obs=None,
) -> list[ClusterChaosResult]:
    """Run the four cluster chaos scenarios; all must lose zero blocks.

    ``obs`` (a cluster-level :class:`repro.obs.Obs`) instruments every
    coordinator built along the way; merge the per-shard handles with
    :func:`repro.cluster.obs.merged_deterministic_view`.
    """
    add = _topology_scenario(
        "shard-add", ScalingOp.add(2), num_shards, disks_per_shard,
        num_objects, blocks_per_object, bits, seed, obs=obs,
    )
    # Same seed, second run: the digest must be bit-identical.
    replay = _topology_scenario(
        "shard-add", ScalingOp.add(2), num_shards, disks_per_shard,
        num_objects, blocks_per_object, bits, seed,
    )
    add = replace(add, deterministic=add.digest == replay.digest)
    remove = _topology_scenario(
        "shard-remove", ScalingOp.remove([num_shards - 1]), num_shards,
        disks_per_shard, num_objects, blocks_per_object, bits, seed,
        obs=obs,
    )
    crash = _crash_resume_scenario(
        num_shards, disks_per_shard, num_objects, blocks_per_object,
        bits, seed, obs=obs,
    )
    death = _disk_death_scenario(
        num_shards, disks_per_shard, num_objects, blocks_per_object,
        bits, seed, fault_rate, obs=obs,
    )
    shard_death = _shard_death_scenario(
        num_shards, disks_per_shard, num_objects, blocks_per_object,
        bits, seed, mid_rebalance=False, resume_proof=True, obs=obs,
    )
    # Same seed, second run: the replicated digest must match too.
    shard_death_replay = _shard_death_scenario(
        num_shards, disks_per_shard, num_objects, blocks_per_object,
        bits, seed, mid_rebalance=False,
    )
    shard_death = replace(
        shard_death,
        deterministic=(
            shard_death.deterministic
            and shard_death.digest == shard_death_replay.digest
        ),
    )
    rebalance_death = _shard_death_scenario(
        num_shards, disks_per_shard, num_objects, blocks_per_object,
        bits, seed, mid_rebalance=True, obs=obs,
    )
    return [add, remove, crash, death, shard_death, rebalance_death]


def report(results: list[ClusterChaosResult] | None = None) -> str:
    """Render the cluster chaos sweep."""
    results = results if results is not None else run_cluster_chaos()
    table = format_table(
        (
            "scenario",
            "shards",
            "moves",
            "migrated",
            "rounds",
            "hiccups",
            "move frac",
            "optimal",
            "blocks lost",
            "avail",
            "fsck clean",
            "same-seed",
        ),
        [
            (
                r.scenario,
                f"{r.shards_before}->{r.shards_after}",
                r.planned_moves,
                r.migrated,
                r.rounds,
                r.hiccups,
                round(r.move_fraction, 3),
                round(r.optimal_fraction, 3),
                r.blocks_lost,
                round(r.availability, 4),
                "yes" if r.layout_clean else "NO",
                "yes" if r.deterministic else "NO",
            )
            for r in results
        ],
    )
    survived = all(r.survived and r.deterministic for r in results)
    return (
        table
        + "\nzero blocks lost + clean fsck on every row: the cluster "
        "rebalanced, crashed, lost a disk, and lost whole shards "
        "without losing data; availability held through the shard "
        "deaths and same-seed runs replay bit-identically"
        + ("" if survived else "\n*** DATA LOSS OR NONDETERMINISM ***")
    )


#: Uniform entry point used by the CLI (`scaddar <name>`).
run = run_cluster_chaos
