"""The structured event log: typed, ring-buffered, JSON-lines events.

Every interesting thing the server stack does — a health transition, a
breaker trip, a failover read, a scaling phase — is one :class:`Event`:
a monotonically sequenced, ``perf_counter``-stamped ``(kind, fields)``
record held in a bounded ring buffer.  Two properties make the log
usable in the seeded experiments:

* **determinism** — with a fixed seed, a run emits the *same events in
  the same order*; only wall-clock stamps differ.  By convention every
  wall-clock field ends in ``_s`` (seconds), so
  :meth:`EventLog.deterministic_view` can strip exactly the
  nondeterministic part and the rest compares bit-for-bit;
* **boundedness** — the ring drops the oldest events once ``capacity``
  is reached (``dropped`` counts them), so a week-long run cannot grow
  the log without bound.

The export format is JSON lines (one event per line), the same idiom the
scaling journal uses, written with a pinned ``utf-8`` encoding so event
logs are portable across platforms.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class Event:
    """One structured log record.

    Attributes
    ----------
    seq:
        Monotonic per-log sequence number (deterministic under a seed).
    ts:
        ``perf_counter`` stamp at emission — wall-clock, excluded from
        determinism comparisons.
    kind:
        Dotted event name, e.g. ``"health.transition"`` — the typed part
        of the record; consumers filter on it.
    fields:
        JSON-serializable payload.  Keys ending in ``_s`` hold wall-clock
        durations in seconds and are stripped by deterministic views.
    """

    seq: int
    ts: float
    kind: str
    fields: dict[str, Any]

    def to_json(self) -> str:
        """The event as one compact JSON line."""
        return json.dumps(
            {"seq": self.seq, "ts": self.ts, "kind": self.kind,
             "fields": self.fields},
            separators=(",", ":"),
            default=str,
        )

    def deterministic(self) -> tuple[int, str, dict[str, Any]]:
        """The seed-determined part: sequence, kind, and every field that
        is not a wall-clock duration (``*_s`` keys are dropped)."""
        return (
            self.seq,
            self.kind,
            {k: v for k, v in self.fields.items() if not k.endswith("_s")},
        )


class EventLog:
    """Bounded, monotonically sequenced structured event log.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest events are evicted (and counted in
        :attr:`dropped`) once emission outruns it.
    clock:
        Timestamp source (default :func:`time.perf_counter`).  Injectable
        so tests can pin stamps.
    """

    def __init__(
        self,
        capacity: int = 65536,
        clock: Optional[Callable[[], float]] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._clock = clock if clock is not None else time.perf_counter
        self._events: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        #: Events evicted by the ring buffer so far.
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def total_emitted(self) -> int:
        """Events ever emitted (including evicted ones)."""
        return self._seq

    @property
    def events(self) -> tuple[Event, ...]:
        """The retained events, oldest first."""
        return tuple(self._events)

    def emit(self, kind: str, /, **fields: Any) -> Event:
        """Append one event; returns it.

        ``kind`` is positional-only so payloads may carry a field
        literally named ``kind`` (e.g. a scaling operation's kind).
        """
        event = Event(seq=self._seq, ts=self._clock(), kind=kind, fields=fields)
        self._seq += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        return event

    def tail(self, count: int) -> tuple[Event, ...]:
        """The last ``count`` retained events, oldest first."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return ()
        return tuple(self._events)[-count:]

    def kinds(self) -> dict[str, int]:
        """Retained event count per kind (a quick profile of a run)."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def deterministic_view(self) -> list[tuple[int, str, dict[str, Any]]]:
        """The seed-determined projection of the whole log.

        Two runs of a seeded experiment must produce equal views; the
        stripped ``ts`` stamps and ``*_s`` duration fields are the only
        parts allowed to differ.
        """
        return [event.deterministic() for event in self._events]

    def to_jsonl(self, path: str | Path | None = None) -> str:
        """Serialize the retained events as JSON lines.

        Writes to ``path`` (``utf-8``, platform-independent) when given;
        always returns the text.
        """
        text = "".join(event.to_json() + "\n" for event in self._events)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @staticmethod
    def read_jsonl(path: str | Path) -> list[Event]:
        """Parse a JSONL event file back into :class:`Event` records.

        A torn final line (the crash-while-appending artifact, same as
        the scaling journal's) is tolerated and dropped.
        """
        lines = Path(path).read_text(encoding="utf-8").splitlines()
        events: list[Event] = []
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    break
                raise ValueError(f"corrupt event log line {lineno}") from None
            events.append(
                Event(
                    seq=raw["seq"],
                    ts=raw["ts"],
                    kind=raw["kind"],
                    fields=raw.get("fields", {}),
                )
            )
        return events

    def __repr__(self) -> str:
        return (
            f"EventLog(events={len(self._events)}, emitted={self._seq}, "
            f"capacity={self.capacity}, dropped={self.dropped})"
        )
