"""Exporters: Prometheus text format and JSON.

The registry's counters and histograms rendered two ways:

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples,
  cumulative ``_bucket``/``_sum``/``_count`` histogram series), so a run
  can be scraped or diffed with standard tooling.  Internal metric names
  use dots (``reads.served``); Prometheus names cannot, so the exporter
  sanitizes them to underscores (``reads_served``);
* :func:`to_json` — a nested dict for programmatic consumption (the
  ``scaddar metrics --format json`` path and the bench artifacts).
"""

from __future__ import annotations

import json
import re
from typing import Any

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    LabelKey,
    MetricsRegistry,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """Map an internal dotted metric name to a legal Prometheus name."""
    sanitized = _NAME_RE.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _counter_lines(counter: Counter) -> list[str]:
    name = sanitize_name(counter.name)
    lines = []
    if counter.help:
        lines.append(f"# HELP {name} {counter.help}")
    lines.append(f"# TYPE {name} counter")
    series = counter.series or {(): 0.0}
    for key in sorted(series):
        lines.append(f"{name}{_format_labels(key)} {_format_value(series[key])}")
    return lines


def _gauge_lines(gauge: Gauge) -> list[str]:
    name = sanitize_name(gauge.name)
    lines = []
    if gauge.help:
        lines.append(f"# HELP {name} {gauge.help}")
    lines.append(f"# TYPE {name} gauge")
    for key in sorted(gauge.series):
        value = gauge.series[key]
        lines.append(f"{name}{_format_labels(key)} {_format_value(value)}")
    return lines


def _histogram_lines(hist: Histogram) -> list[str]:
    name = sanitize_name(hist.name)
    lines = []
    if hist.help:
        lines.append(f"# HELP {name} {hist.help}")
    lines.append(f"# TYPE {name} histogram")
    for key in sorted(hist.series):
        series = hist.series[key]
        cumulative = 0
        for bound, count in zip(hist.buckets, series.bucket_counts):
            cumulative += count
            le = _format_labels(key, (("le", _format_value(bound)),))
            lines.append(f"{name}_bucket{le} {cumulative}")
        cumulative += series.bucket_counts[-1]
        le = _format_labels(key, (("le", "+Inf"),))
        lines.append(f"{name}_bucket{le} {cumulative}")
        lines.append(f"{name}_sum{_format_labels(key)} {repr(series.sum)}")
        lines.append(f"{name}_count{_format_labels(key)} {series.count}")
    return lines


def to_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text exposition format."""
    lines: list[str] = []
    for counter in registry.counters:
        lines.extend(_counter_lines(counter))
    for gauge in registry.gauges:
        lines.extend(_gauge_lines(gauge))
    for hist in registry.histograms:
        lines.extend(_histogram_lines(hist))
    return "\n".join(lines) + ("\n" if lines else "")


def _labels_dict(key: LabelKey) -> dict[str, str]:
    return {k: v for k, v in key}


def to_json(registry: MetricsRegistry) -> dict[str, Any]:
    """The whole registry as a JSON-compatible dict."""
    counters = [
        {
            "name": counter.name,
            "help": counter.help,
            "series": [
                {"labels": _labels_dict(key), "value": value}
                for key, value in sorted(counter.series.items())
            ],
        }
        for counter in registry.counters
    ]
    gauges = [
        {
            "name": gauge.name,
            "help": gauge.help,
            "series": [
                {"labels": _labels_dict(key), "value": value}
                for key, value in sorted(gauge.series.items())
            ],
        }
        for gauge in registry.gauges
    ]
    histograms = [
        {
            "name": hist.name,
            "help": hist.help,
            "buckets": list(hist.buckets),
            "series": [
                {
                    "labels": _labels_dict(key),
                    "bucket_counts": list(series.bucket_counts),
                    "count": series.count,
                    "sum": series.sum,
                    "min": None if series.count == 0 else series.min,
                    "max": None if series.count == 0 else series.max,
                }
                for key, series in sorted(hist.series.items())
            ],
        }
        for hist in registry.histograms
    ]
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def to_json_text(registry: MetricsRegistry, indent: int = 2) -> str:
    """:func:`to_json` serialized as text."""
    return json.dumps(to_json(registry), indent=indent) + "\n"
