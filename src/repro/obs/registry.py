"""Counter and histogram registries (the numeric half of observability).

Counters accumulate monotonically (serves, failovers, cache hits);
histograms accumulate distributions (fsync latency, span durations,
per-backend lookup times) into fixed log-spaced buckets plus running
sum/count/min/max, so percentile-ish questions cost O(buckets) memory no
matter how long the run is.  Both support Prometheus-style labels — a
metric name owns a family of series keyed by sorted ``(key, value)``
label pairs — which is exactly what the exporter
(:mod:`repro.obs.export`) renders.

Everything here is plain Python and allocation-light: one dict lookup
and an integer add per observation, so instruments can sit on warm
paths (they are still kept off the innermost vector kernels — the
engine counts per *batch*, never per block).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

#: Label set -> series key: sorted tuple of (key, value) pairs.
LabelKey = tuple[tuple[str, str], ...]

#: Default histogram buckets: log-spaced seconds from 1µs to 10s, the
#: range spanning a no-op span to a full experiment cell.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing metric family.

    One ``Counter`` owns every label combination of its name; ``inc``
    with no labels addresses the unlabelled series.
    """

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, /, **labels: Any) -> None:
        """Add ``amount`` (default 1) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of one labelled series (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0)

    @property
    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    @property
    def series(self) -> dict[LabelKey, float]:
        """Every labelled series, keyed by sorted label pairs."""
        return dict(self._values)

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, total={self.total})"


class Gauge:
    """A point-in-time metric family (goes up *and* down).

    Same label semantics as :class:`Counter`, but ``set`` overwrites the
    series instead of accumulating — the shape for "remaining budget",
    "disks alive", "queue depth".  A series that was never set reads as
    ``None`` (distinct from a gauge legitimately sitting at 0).
    """

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, /, **labels: Any) -> None:
        """Overwrite the labelled series with ``value``."""
        self._values[_label_key(labels)] = value

    def value(self, **labels: Any) -> Optional[float]:
        """Current value of one labelled series (None if never set)."""
        return self._values.get(_label_key(labels))

    @property
    def series(self) -> dict[LabelKey, float]:
        """Every labelled series, keyed by sorted label pairs."""
        return dict(self._values)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, series={len(self._values)})"


class _HistogramSeries:
    """Accumulated distribution of one label combination."""

    __slots__ = ("bucket_counts", "count", "sum", "min", "max")

    def __init__(self, num_buckets: int):
        # One slot per finite bucket plus the +Inf overflow slot.
        self.bucket_counts = [0] * (num_buckets + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram:
    """A fixed-bucket distribution metric family.

    Parameters
    ----------
    name / help:
        Metric identity (see :class:`MetricsRegistry`).
    buckets:
        Finite upper bounds, ascending; an implicit ``+Inf`` bucket
        catches the overflow.  Defaults to :data:`DEFAULT_BUCKETS`.
    """

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
    ):
        self.name = name
        self.help = help
        self.buckets = tuple(
            sorted(buckets if buckets is not None else DEFAULT_BUCKETS)
        )
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self._series: dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, /, **labels: Any) -> None:
        """Record one observation into the labelled series."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(len(self.buckets))
            self._series[key] = series
        slot = len(self.buckets)  # +Inf by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                slot = i
                break
        series.bucket_counts[slot] += 1
        series.count += 1
        series.sum += value
        if value < series.min:
            series.min = value
        if value > series.max:
            series.max = value

    def count(self, **labels: Any) -> int:
        """Observations recorded in one labelled series."""
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0

    def sum(self, **labels: Any) -> float:
        """Sum of observations in one labelled series."""
        series = self._series.get(_label_key(labels))
        return series.sum if series is not None else 0.0

    def mean(self, **labels: Any) -> float:
        """Mean observation of one labelled series (0.0 when empty)."""
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return 0.0
        return series.sum / series.count

    @property
    def series(self) -> dict[LabelKey, _HistogramSeries]:
        """Every labelled series, keyed by sorted label pairs."""
        return dict(self._series)

    def __repr__(self) -> str:
        total = sum(s.count for s in self._series.values())
        return f"Histogram({self.name!r}, observations={total})"


class MetricsRegistry:
    """Registry of every counter and histogram of one observability
    handle — get-or-create semantics, so instrumentation sites never
    coordinate:  ``registry.counter("reads.served").inc()`` works from
    anywhere and always addresses the same metric.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter of that name (created on first touch)."""
        metric = self._counters.get(name)
        if metric is None:
            metric = Counter(name, help)
            self._counters[name] = metric
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge of that name (created on first touch)."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = Gauge(name, help)
            self._gauges[name] = metric
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
    ) -> Histogram:
        """The histogram of that name (created on first touch)."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = Histogram(name, help, buckets=buckets)
            self._histograms[name] = metric
        return metric

    @property
    def counters(self) -> list[Counter]:
        """All counters, sorted by name."""
        return [self._counters[k] for k in sorted(self._counters)]

    @property
    def gauges(self) -> list[Gauge]:
        """All gauges, sorted by name."""
        return [self._gauges[k] for k in sorted(self._gauges)]

    @property
    def histograms(self) -> list[Histogram]:
        """All histograms, sorted by name."""
        return [self._histograms[k] for k in sorted(self._histograms)]

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
