"""Structured observability for the server stack (zero dependencies).

The package the long-run story hangs on: a typed, ring-buffered,
JSON-lines event log with seeded-run determinism
(:class:`~repro.obs.events.EventLog`), nested tracing spans with
``perf_counter`` timing (:class:`~repro.obs.trace.Tracer`),
counter/histogram registries
(:class:`~repro.obs.registry.MetricsRegistry`), and Prometheus-text /
JSON exporters (:mod:`repro.obs.export`) — bundled behind one handle
(:class:`~repro.obs.facade.Obs`) that every server constructor accepts
as ``obs=`` and defaults to the near-zero-overhead
:data:`~repro.obs.facade.NULL_OBS`.

See ``docs/OPERATIONS.md`` for the event schema and span naming
convention, and ``scaddar trace`` / ``scaddar metrics`` for the CLI
views of a run.
"""

from repro.obs.events import Event, EventLog
from repro.obs.export import sanitize_name, to_json, to_json_text, to_prometheus
from repro.obs.facade import NULL_OBS, NullObs, Obs, ObsHandle
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import SPAN_HISTOGRAM, Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_OBS",
    "SPAN_HISTOGRAM",
    "Counter",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullObs",
    "Obs",
    "ObsHandle",
    "Span",
    "Tracer",
    "sanitize_name",
    "to_json",
    "to_json_text",
    "to_prometheus",
]
