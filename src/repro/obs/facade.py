"""The observability handle servers carry: :class:`Obs` and its no-op twin.

Every instrumented constructor takes ``obs=`` and defaults to
:data:`NULL_OBS` — a stateless singleton whose every method is a pass
(``span``/``timer`` return one shared, reusable null context manager),
so an uninstrumented server pays one attribute load and a truthiness
check per *batched* operation and nothing per block.  The overhead
budget is enforced by ``benchmarks/bench_obs_overhead.py`` (< 3 % on the
engine hot path).

Hot-path convention: guard per-item event emission with ``if
obs.enabled:`` so the null case never builds a kwargs dict in a loop;
batched counters and spans may call unconditionally.

One :class:`Obs` bundles the three instruments:

* :class:`~repro.obs.events.EventLog` — the structured event stream;
* :class:`~repro.obs.trace.Tracer` — nested timing spans over that log;
* :class:`~repro.obs.registry.MetricsRegistry` — counters + histograms,
  exported via :meth:`Obs.prometheus` / :meth:`Obs.json_snapshot`.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable, Optional, Union

from repro.obs.events import EventLog
from repro.obs.export import to_json, to_prometheus
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer


class _NullSpan:
    """Shared no-op context manager (also stands in for timers)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **fields: Any) -> None:
        """No-op twin of :meth:`repro.obs.trace.Span.annotate`."""


_NULL_SPAN = _NullSpan()


class NullObs:
    """The do-nothing observability handle (default for every server).

    API-compatible with :class:`Obs` (asserted by ``tests/test_obs.py``)
    so instrumentation sites never branch on the handle type; ``enabled``
    is the one flag hot loops may check to skip building event payloads.
    """

    __slots__ = ()

    enabled = False

    def event(self, kind: str, /, **fields: Any) -> None:
        return None

    def span(self, name: str, /, **fields: Any) -> _NullSpan:
        return _NULL_SPAN

    def timer(self, name: str, /, **labels: Any) -> _NullSpan:
        return _NULL_SPAN

    def inc(self, name: str, amount: float = 1, /, **labels: Any) -> None:
        return None

    def set_gauge(self, name: str, value: float, /, **labels: Any) -> None:
        return None

    def observe(self, name: str, value: float, /, **labels: Any) -> None:
        return None

    def prometheus(self) -> str:
        return ""

    def json_snapshot(self) -> dict[str, Any]:
        return {"counters": [], "gauges": [], "histograms": []}

    def write_events(self, path: Union[str, Path, None] = None) -> str:
        return ""

    def __repr__(self) -> str:
        return "NullObs()"


#: The process-wide no-op handle; never holds state, safe to share.
NULL_OBS = NullObs()


class _Timer:
    """Times a ``with`` body into one histogram series."""

    __slots__ = ("_hist", "_labels", "_clock", "_start")

    def __init__(
        self, hist: Histogram, labels: dict[str, Any],
        clock: Callable[[], float],
    ):
        self._hist = hist
        self._labels = labels
        self._clock = clock
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._hist.observe(self._clock() - self._start, **self._labels)
        return False


class Obs:
    """A live observability handle: event log + tracer + metrics.

    Parameters
    ----------
    capacity:
        Event-log ring size (oldest events evicted past it).
    clock:
        Time source for stamps and span durations (default
        :func:`time.perf_counter`); injectable for tests.

    Examples
    --------
    >>> obs = Obs()
    >>> with obs.span("scale.plan"):
    ...     obs.inc("reads.served", 3)
    >>> [e.kind for e in obs.log.events]
    ['span.start', 'span.end']
    >>> obs.registry.counter("reads.served").total
    3
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 65536,
        clock: Optional[Callable[[], float]] = None,
    ):
        self._clock = clock if clock is not None else time.perf_counter
        self.log = EventLog(capacity=capacity, clock=self._clock)
        self.registry = MetricsRegistry()
        self.tracer = Tracer(self.log, self.registry, clock=self._clock)

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def event(self, kind: str, /, **fields: Any):
        """Emit one structured event."""
        return self.log.emit(kind, **fields)

    def span(self, name: str, /, **fields: Any) -> Span:
        """A nested timing span (context manager)."""
        return self.tracer.span(name, **fields)

    def timer(self, name: str, /, **labels: Any) -> _Timer:
        """Time a ``with`` body into the named histogram — the quiet op
        timer: no events, one observation."""
        return _Timer(self.registry.histogram(name), labels, self._clock)

    def inc(self, name: str, amount: float = 1, /, **labels: Any) -> None:
        """Increment the named counter."""
        self.registry.counter(name).inc(amount, **labels)

    def set_gauge(self, name: str, value: float, /, **labels: Any) -> None:
        """Overwrite the named gauge's labelled series."""
        self.registry.gauge(name).set(value, **labels)

    def observe(self, name: str, value: float, /, **labels: Any) -> None:
        """Record one observation into the named histogram."""
        self.registry.histogram(name).observe(value, **labels)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def prometheus(self) -> str:
        """Metrics in Prometheus text exposition format."""
        return to_prometheus(self.registry)

    def json_snapshot(self) -> dict[str, Any]:
        """Metrics as a JSON-compatible dict."""
        return to_json(self.registry)

    def write_events(self, path: Union[str, Path, None] = None) -> str:
        """Dump the event log as JSON lines (optionally to ``path``)."""
        return self.log.to_jsonl(path)

    def __repr__(self) -> str:
        return f"Obs(events={len(self.log)}, {self.registry!r})"


#: Anything an instrumented constructor accepts as its ``obs=``.
ObsHandle = Union[Obs, NullObs]
