"""Lightweight tracing spans with parent/child nesting.

A span brackets one operation — ``tracer.span("scale.plan")`` — and
records its ``perf_counter`` duration.  Spans nest: entering a span
pushes it on the tracer's stack, so a ``scale.apply`` span opened while
``scale.plan``'s parent operation is live records that parentage, and a
trace viewer can reconstruct the call tree from the event log alone.

Each span emits two events into the tracer's :class:`~repro.obs.events.
EventLog` (``span.start`` / ``span.end``) and one observation into the
``span.seconds`` histogram labelled by span name.  Span ids are plain
monotonic integers, so seeded runs produce identical trace structure
(the ``duration_s`` field is the only wall-clock part, and deterministic
views strip it — see :meth:`~repro.obs.events.EventLog.deterministic_view`).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from repro.obs.events import EventLog
from repro.obs.registry import MetricsRegistry

#: Histogram every span duration lands in (labelled ``name=<span name>``).
SPAN_HISTOGRAM = "span.seconds"


class Span:
    """One timed, nested operation (use via ``with tracer.span(...)``)."""

    __slots__ = (
        "_tracer", "name", "fields", "span_id", "parent_id",
        "_start", "duration",
    )

    def __init__(self, tracer: "Tracer", name: str, fields: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.fields = fields
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self._start = 0.0
        #: Wall-clock seconds, set when the span closes.
        self.duration: Optional[float] = None

    def annotate(self, **fields: Any) -> None:
        """Attach fields reported on the span's ``span.end`` event."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        self.parent_id = tracer._stack[-1] if tracer._stack else None
        tracer._stack.append(self.span_id)
        if tracer.log is not None:
            # User fields merge under the reserved keys (which win), so a
            # span annotated with e.g. name= or kind= can never collide.
            payload = dict(self.fields)
            payload.update(
                span=self.span_id, parent=self.parent_id, name=self.name
            )
            tracer.log.emit("span.start", **payload)
        self._start = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        self.duration = tracer._clock() - self._start
        if tracer._stack and tracer._stack[-1] == self.span_id:
            tracer._stack.pop()
        if tracer.log is not None:
            payload = dict(self.fields)
            payload.update(
                span=self.span_id,
                name=self.name,
                ok=exc_type is None,
                duration_s=self.duration,
            )
            tracer.log.emit("span.end", **payload)
        if tracer.registry is not None:
            tracer.registry.histogram(
                SPAN_HISTOGRAM, help="span durations by name"
            ).observe(self.duration, name=self.name)
        return False


class Tracer:
    """Creates nested :class:`Span` instances over one event log.

    Parameters
    ----------
    log:
        Event log receiving ``span.start``/``span.end`` records
        (``None`` keeps timing without events).
    registry:
        Metrics registry receiving span durations (``None`` skips).
    clock:
        Time source (default :func:`time.perf_counter`).
    """

    def __init__(
        self,
        log: Optional[EventLog] = None,
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.log = log
        self.registry = registry
        self._clock = clock if clock is not None else time.perf_counter
        self._next_id = 0
        self._stack: list[int] = []

    @property
    def depth(self) -> int:
        """Currently open spans (0 outside any span)."""
        return len(self._stack)

    def span(self, name: str, /, **fields: Any) -> Span:
        """A context manager timing one named operation."""
        return Span(self, name, fields)

    def __repr__(self) -> str:
        return f"Tracer(spans={self._next_id}, depth={self.depth})"
