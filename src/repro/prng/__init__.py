"""Pseudo-random generators and reproducible per-object sequences.

The paper models block placement with a seeded generator ``p_r(s_m)``
returning ``b``-bit values: block ``i`` of object ``m`` uses the *i*-th
iteration ``X0(i)`` of the stream (Definition 3.2).  This package provides
three from-scratch generators plus :class:`ObjectSequence`, which turns a
generator family and a seed into the paper's ``X0(i)`` accessor.

Generators
----------
:class:`SplitMix64`
    A counter-based hash generator.  Because each output is a pure function
    of ``seed + (i+1) * GAMMA``, indexed access ``at(i)`` is O(1) and equal
    to iterated access — the property the reproduction's fast path relies on.
:class:`Xorshift64Star`
    A classic xorshift with a multiplicative finalizer; iteration only.
:class:`Lcg48`
    A 48-bit linear congruential generator (the ``java.util.Random``
    constants) with O(log i) jump-ahead via affine-map exponentiation.
:class:`Pcg32`
    PCG-XSH-RR: modern output quality on an LCG core, O(log i) jumps.
"""

from repro.prng.generators import (
    Lcg48,
    Pcg32,
    PseudoRandomGenerator,
    SplitMix64,
    Xorshift64Star,
)
from repro.prng.sequence import GENERATOR_FAMILIES, ObjectSequence, make_generator

__all__ = [
    "GENERATOR_FAMILIES",
    "Lcg48",
    "ObjectSequence",
    "Pcg32",
    "PseudoRandomGenerator",
    "SplitMix64",
    "Xorshift64Star",
    "make_generator",
]
