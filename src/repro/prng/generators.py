"""From-scratch pseudo-random generators used as the paper's ``p_r(s)``.

All generators emit ``bits``-bit unsigned integers, i.e. values in
``0 ... R`` with ``R = 2**bits - 1`` exactly as Definition 3.2 requires.
The paper's analysis treats the stream as ``b`` truly-random bits; these
generators are the practical stand-ins (the paper itself assumes "a
standard pseudo-random number generator").

The implementations are deliberately dependency-free and exact-integer so
the REMAP arithmetic built on top is bit-reproducible across platforms.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

_MASK64 = (1 << 64) - 1

#: Golden-ratio increment used by SplitMix64 (Steele, Lea & Flood 2014).
SPLITMIX_GAMMA = 0x9E3779B97F4A7C15


def _mix64(z: int) -> int:
    """The SplitMix64 finalizer: a bijective avalanche mix on 64 bits."""
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
    return z ^ (z >> 31)


class PseudoRandomGenerator(ABC):
    """Common interface for the paper's ``p_r(s)``.

    Parameters
    ----------
    seed:
        The object seed ``s_m``.  Any Python integer is accepted; it is
        folded into the generator's native state width.
    bits:
        Output width ``b``; each draw is masked to ``bits`` low-order bits
        so the stream lies in ``0 ... 2**bits - 1`` (the paper's ``R``).
    """

    #: Human-readable family name, e.g. ``"splitmix64"``.
    family: str = "abstract"

    def __init__(self, seed: int, bits: int = 64):
        if not 1 <= bits <= 64:
            raise ValueError(f"bits must be in 1..64, got {bits}")
        self.seed = seed
        self.bits = bits
        self._mask = (1 << bits) - 1
        self._index = 0

    @property
    def r_max(self) -> int:
        """The paper's ``R``: the largest value the generator can return."""
        return self._mask

    @property
    def index(self) -> int:
        """How many values have been drawn so far."""
        return self._index

    def next(self) -> int:
        """Return the next ``bits``-bit value of the stream."""
        value = self._next_raw() & self._mask
        self._index += 1
        return value

    def at(self, i: int) -> int:
        """Return the *i*-th value (0-indexed) of the stream for this seed.

        The default implementation replays the stream from the seed and is
        O(i); subclasses with cheap jump-ahead override it.  ``at`` never
        disturbs the iteration state of ``self``.
        """
        if i < 0:
            raise ValueError(f"sequence index must be >= 0, got {i}")
        clone = type(self)(self.seed, self.bits)
        value = 0
        for _ in range(i + 1):
            value = clone.next()
        return value

    @abstractmethod
    def _next_raw(self) -> int:
        """Advance the state and return an unmasked 64-bit draw."""


class SplitMix64(PseudoRandomGenerator):
    """SplitMix64: state marches by a fixed gamma, output is a hash of state.

    Because output ``i`` equals ``mix64(seed + (i+1) * gamma)``, indexed
    access is O(1) — iterated and indexed access provably agree, which the
    test suite checks by property.
    """

    family = "splitmix64"

    def __init__(self, seed: int, bits: int = 64):
        super().__init__(seed, bits)
        self._state = seed & _MASK64

    def _next_raw(self) -> int:
        self._state = (self._state + SPLITMIX_GAMMA) & _MASK64
        return _mix64(self._state)

    def at(self, i: int) -> int:
        if i < 0:
            raise ValueError(f"sequence index must be >= 0, got {i}")
        state = (self.seed + (i + 1) * SPLITMIX_GAMMA) & _MASK64
        return _mix64(state) & self._mask


class Xorshift64Star(PseudoRandomGenerator):
    """Marsaglia xorshift64* — shift-register steps with a final multiply.

    A zero state would be a fixed point, so the seed is mixed through the
    SplitMix64 finalizer first (the standard seeding recipe).
    Indexed access falls back to O(i) replay.
    """

    family = "xorshift64star"

    _MULTIPLIER = 0x2545F4914F6CDD1D

    def __init__(self, seed: int, bits: int = 64):
        super().__init__(seed, bits)
        state = _mix64(seed & _MASK64)
        self._state = state if state != 0 else SPLITMIX_GAMMA

    def _next_raw(self) -> int:
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27)
        self._state = x
        return (x * self._MULTIPLIER) & _MASK64


class Pcg32(PseudoRandomGenerator):
    """PCG-XSH-RR 32: a 64-bit LCG state with a permuted 32-bit output.

    O'Neill's PCG family — modern statistical quality from an LCG core,
    which means the affine jump-ahead trick still works: ``at(i)`` is
    O(log i).  Yields at most 32 output bits.
    """

    family = "pcg32"

    _A = 6364136223846793005
    _C = 1442695040888963407

    def __init__(self, seed: int, bits: int = 32):
        if bits > 32:
            raise ValueError(f"Pcg32 yields at most 32 output bits, got {bits}")
        super().__init__(seed, bits)
        self._state = _mix64(seed & _MASK64)

    @staticmethod
    def _output(state: int) -> int:
        """XSH-RR output permutation: xorshift-high then random rotate."""
        xorshifted = (((state >> 18) ^ state) >> 27) & 0xFFFFFFFF
        rot = state >> 59
        return ((xorshifted >> rot) | (xorshifted << (32 - rot))) & 0xFFFFFFFF

    def _next_raw(self) -> int:
        value = self._output(self._state)
        self._state = (self._A * self._state + self._C) & _MASK64
        return value

    def at(self, i: int) -> int:
        if i < 0:
            raise ValueError(f"sequence index must be >= 0, got {i}")
        a, c = self._affine_power(i)
        start = _mix64(self.seed & _MASK64)
        state = (a * start + c) & _MASK64
        return self._output(state) & self._mask

    @classmethod
    def _affine_power(cls, k: int) -> tuple[int, int]:
        """Compose the 64-bit LCG step ``k`` times (square-and-multiply)."""
        a_k, c_k = 1, 0
        a_step, c_step = cls._A, cls._C
        while k > 0:
            if k & 1:
                a_k, c_k = (
                    (a_k * a_step) & _MASK64,
                    (c_k * a_step + c_step) & _MASK64,
                )
            a_step, c_step = (
                (a_step * a_step) & _MASK64,
                (c_step * a_step + c_step) & _MASK64,
            )
            k >>= 1
        return a_k, c_k


class Lcg48(PseudoRandomGenerator):
    """48-bit linear congruential generator (``java.util.Random`` constants).

    ``state' = (a * state + c) mod 2**48``; the reported value is the top
    32 bits of state, further masked to ``bits`` (so ``bits`` must be <= 32
    here).  The affine update composes algebraically, giving O(log i)
    jump-ahead: ``a_k = a**k``, ``c_k = c * (a**k - 1) / (a - 1)`` — computed
    by square-and-multiply on the affine map itself, no division needed.
    """

    family = "lcg48"

    _A = 0x5DEECE66D
    _C = 0xB
    _M = 1 << 48

    def __init__(self, seed: int, bits: int = 32):
        if bits > 32:
            raise ValueError(f"Lcg48 yields at most 32 output bits, got {bits}")
        super().__init__(seed, bits)
        self._state = (seed ^ self._A) % self._M

    def _next_raw(self) -> int:
        self._state = (self._A * self._state + self._C) % self._M
        return self._state >> 16

    def at(self, i: int) -> int:
        if i < 0:
            raise ValueError(f"sequence index must be >= 0, got {i}")
        a, c = self._affine_power(i + 1)
        start = (self.seed ^ self._A) % self._M
        state = (a * start + c) % self._M
        return (state >> 16) & self._mask

    @classmethod
    def _affine_power(cls, k: int) -> tuple[int, int]:
        """Compose ``x -> a*x + c (mod 2**48)`` with itself ``k`` times.

        Returns ``(a_k, c_k)`` such that ``k`` LCG steps equal
        ``x -> a_k * x + c_k (mod 2**48)``.
        """
        a_k, c_k = 1, 0  # identity map
        a_step, c_step = cls._A, cls._C
        while k > 0:
            if k & 1:
                a_k, c_k = (a_k * a_step) % cls._M, (c_k * a_step + c_step) % cls._M
            a_step, c_step = (
                (a_step * a_step) % cls._M,
                (c_step * a_step + c_step) % cls._M,
            )
            k >>= 1
        return a_k, c_k
