"""Per-object reproducible random sequences (the paper's ``X0(i)``).

Definition 3.2: ``X0(i)`` is the *i*-th iteration of ``p_r(s_m)``, where
``s_m`` is the unique seed of object ``m``.  :class:`ObjectSequence`
packages (generator family, seed, bit width) and exposes both the faithful
iterated access and, where the family supports it, O(1) indexed access.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.prng.generators import (
    Lcg48,
    Pcg32,
    PseudoRandomGenerator,
    SplitMix64,
    Xorshift64Star,
)

#: Registry of generator families by name.
GENERATOR_FAMILIES: dict[str, type[PseudoRandomGenerator]] = {
    SplitMix64.family: SplitMix64,
    Xorshift64Star.family: Xorshift64Star,
    Lcg48.family: Lcg48,
    Pcg32.family: Pcg32,
}


def make_generator(
    family: str, seed: int, bits: int = 64
) -> PseudoRandomGenerator:
    """Instantiate a generator by family name.

    Raises
    ------
    KeyError
        If ``family`` is not one of :data:`GENERATOR_FAMILIES`.
    """
    try:
        cls = GENERATOR_FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(GENERATOR_FAMILIES))
        raise KeyError(f"unknown generator family {family!r}; known: {known}")
    return cls(seed, bits)


class ObjectSequence:
    """The reproducible random stream of one CM object.

    Parameters
    ----------
    seed:
        The object's unique seed ``s_m``.
    bits:
        Output width ``b``; draws lie in ``0 ... 2**bits - 1``.
    family:
        Generator family name (see :data:`GENERATOR_FAMILIES`).

    Examples
    --------
    >>> seq = ObjectSequence(seed=42, bits=32)
    >>> seq.x0(0) == ObjectSequence(seed=42, bits=32).x0(0)
    True
    """

    def __init__(self, seed: int, bits: int = 64, family: str = "splitmix64"):
        self.seed = seed
        self.bits = bits
        self.family = family
        # Validate eagerly so a bad family/bits pair fails at construction.
        self._probe = make_generator(family, seed, bits)

    @property
    def r_max(self) -> int:
        """The paper's ``R = 2**b - 1``."""
        return self._probe.r_max

    def x0(self, block_index: int) -> int:
        """Return ``X0(i)``, the random number assigned to block *i*.

        Uses the generator's indexed access, which for counter-based
        families is O(1) and for stateful families replays the stream.
        """
        return self._probe.at(block_index)

    def prefix(self, num_blocks: int) -> list[int]:
        """Return ``[X0(0), ..., X0(num_blocks - 1)]`` by pure iteration.

        This is the paper-faithful path: a fresh generator is seeded with
        ``s_m`` and iterated, exactly as a CM server would regenerate the
        sequence at retrieval time.
        """
        if num_blocks < 0:
            raise ValueError(f"num_blocks must be >= 0, got {num_blocks}")
        gen = make_generator(self.family, self.seed, self.bits)
        return [gen.next() for _ in range(num_blocks)]

    def __iter__(self) -> Iterator[int]:
        """Iterate the stream indefinitely from the start."""
        gen = make_generator(self.family, self.seed, self.bits)
        while True:
            yield gen.next()

    def __repr__(self) -> str:
        return (
            f"ObjectSequence(seed={self.seed}, bits={self.bits}, "
            f"family={self.family!r})"
        )
