"""A small statistical-quality battery for the generators.

The paper's analysis *assumes* ``b`` truly random bits; these tests give
that assumption teeth for the from-scratch generators shipped here.  The
battery is a pragmatic subset of the classic suites (FIPS 140-2 /
Knuth):

* **monobit** — ones/zeros balance across the bitstream;
* **runs** — distribution of maximal same-bit runs;
* **serial correlation** — lag-1 correlation of successive values;
* **byte chi-square** — uniformity of the low byte.

:class:`Randu` (IBM's infamous ``RANDU``) is included as a negative
control: a generator with well-known lattice defects that the battery
must flag — proof the tests discriminate, not rubber-stamp.  ``Randu``
is deliberately *not* registered as a placement family.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.prng.generators import PseudoRandomGenerator


class Randu(PseudoRandomGenerator):
    """IBM RANDU: ``state' = 65539 * state mod 2**31`` — famously bad.

    Kept only as the quality battery's negative control; every triple of
    outputs lies on one of 15 planes, which the serial-correlation and
    spectral-style checks pick up.
    """

    family = "randu"

    _A = 65539
    _M = 1 << 31

    def __init__(self, seed: int, bits: int = 31):
        if bits > 31:
            raise ValueError(f"Randu yields at most 31 output bits, got {bits}")
        super().__init__(seed, bits)
        state = seed % self._M
        self._state = state if state % 2 == 1 else state + 1  # must be odd

    def _next_raw(self) -> int:
        self._state = (self._A * self._state) % self._M
        return self._state


@dataclass(frozen=True)
class QualityReport:
    """Battery outcome for one generator configuration."""

    family: str
    bits: int
    samples: int
    monobit_z: float
    runs_z: float
    serial_correlation: float
    byte_chi2_p: float

    @property
    def passes(self) -> bool:
        """Loose pass criteria: |z| < 4 on the bit tests, lag-1
        correlation within 4 standard errors (SE ~ 1/sqrt(n)), byte
        chi-square p above 1e-6."""
        correlation_bound = 4.0 / math.sqrt(self.samples)
        return (
            abs(self.monobit_z) < 4.0
            and abs(self.runs_z) < 4.0
            and abs(self.serial_correlation) < correlation_bound
            and self.byte_chi2_p > 1e-6
        )


def _monobit_z(values: list[int], bits: int) -> float:
    ones = sum(bin(v).count("1") for v in values)
    total = len(values) * bits
    # Under H0 ones ~ Binomial(total, 0.5).
    return (ones - total / 2) / math.sqrt(total / 4)


def _runs_z(values: list[int], bits: int) -> float:
    """Wald–Wolfowitz runs test over the concatenated bitstream."""
    stream = []
    for v in values:
        for position in range(bits):
            stream.append((v >> position) & 1)
    n = len(stream)
    ones = sum(stream)
    zeros = n - ones
    if ones == 0 or zeros == 0:
        return float("inf")
    runs = 1 + sum(1 for a, b in zip(stream, stream[1:]) if a != b)
    expected = 1 + 2 * ones * zeros / n
    variance = (expected - 1) * (expected - 2) / (n - 1)
    if variance <= 0:
        return float("inf")
    return (runs - expected) / math.sqrt(variance)


def _serial_correlation(values: list[int]) -> float:
    n = len(values)
    if n < 3:
        return 0.0
    mean = sum(values) / n
    num = sum(
        (a - mean) * (b - mean) for a, b in zip(values, values[1:])
    )
    den = sum((v - mean) ** 2 for v in values)
    return num / den if den else 0.0


def _byte_chi2_p(values: list[int]) -> float:
    from repro.analysis.stats import chi_square_uniform

    counts = [0] * 256
    for v in values:
        counts[v & 0xFF] += 1
    __, p = chi_square_uniform(counts)
    return p


def run_battery(
    generator: PseudoRandomGenerator, samples: int = 20_000
) -> QualityReport:
    """Run the whole battery over one generator instance."""
    if samples < 1_000:
        raise ValueError(f"need at least 1000 samples, got {samples}")
    values = [generator.next() for __ in range(samples)]
    return QualityReport(
        family=generator.family,
        bits=generator.bits,
        samples=samples,
        monobit_z=_monobit_z(values, generator.bits),
        runs_z=_runs_z(values, generator.bits),
        serial_correlation=_serial_correlation(values),
        byte_chi2_p=_byte_chi2_p(values),
    )
