"""Command-line entry point: ``scaddar <experiment>``.

Prints the report table of one experiment (or all of them).  The same
``run_*`` functions back the pytest-benchmark suite; the CLI exists so a
reader can regenerate any paper artifact with one command::

    scaddar fig1
    scaddar cov-curve
    scaddar all --quick

``--quick`` trades statistical resolution for speed (smaller block
populations, fewer seeds) — useful for smoke runs; headline shapes
still hold, only the noise floor rises.

Two observability views complement the experiments (``repro.obs``):

* ``scaddar trace`` runs the availability experiment with a live
  :class:`~repro.obs.Obs` handle attached and prints the tail of its
  structured event log (``--last N``; ``--out FILE`` writes the full
  JSONL artifact, ``--events FILE`` views a previously written one);
* ``scaddar metrics`` runs the same and dumps the metric registry in
  Prometheus text format (or ``--format json``).

Both honor ``--quick`` and ``--seed``; with a fixed seed the event
*sequence* is bit-reproducible (wall-clock durations aside).
"""

from __future__ import annotations

import argparse
import inspect
import sys
from collections.abc import Sequence

from repro.experiments import EXPERIMENTS

#: Reduced parameters per experiment for ``--quick`` runs.
QUICK_KWARGS: dict[str, dict] = {
    "fig1": {"random_population": 4_000},
    "cov-curve": {"num_objects": 8, "blocks_per_object": 600, "operations": 9},
    "rule-of-thumb": {},
    "movement": {"num_blocks": 5_000},
    "uniformity": {"num_blocks": 8_000},
    "access-cost": {
        "max_operations": 8,
        "op_stride": 4,
        "num_probe_blocks": 50,
        "state_block_counts": (1_000, 100_000),
    },
    "fault-tolerance": {"num_blocks": 5_000},
    "heterogeneous": {"num_blocks": 10_000},
    "online-scaling": {
        "utilizations": (0.3, 0.6),
        "num_objects": 4,
        "blocks_per_object": 400,
    },
    "stream-balance": {"num_streams": 24, "rounds": 120, "seeds": 4},
    "bound-tightness": {"bits": 14, "operations": 6},
    "parity-vs-mirror": {"num_blocks": 5_000},
    "group-size": {"num_blocks": 6_000},
    "removal-patterns": {"num_blocks": 6_000},
    "generator-sensitivity": {"num_blocks": 8_000, "operations": 6},
    "reshuffle-cost": {"num_blocks": 8_000, "operations": 20},
    "ingest-under-load": {
        "utilizations": (0.2, 0.6),
        "blocks_per_object": 600,
        "ingest_blocks": 200,
    },
    "modern": {"num_blocks": 3_000},
    "chaos": {"num_objects": 3, "blocks_per_object": 150},
    "cluster-chaos": {"num_objects": 9, "blocks_per_object": 60},
    "flash-crowd": {
        "num_objects": 10,
        "blocks_per_object": 40,
        "base_streams": 24,
        "flash_streams": 8,
        "warm_rounds": 6,
        "flash_rounds": 8,
        "post_rounds": 5,
    },
    "soak": {
        "ops_per_backend": 60,
        "num_objects": 3,
        "blocks_per_object": 60,
    },
    "availability": {
        "num_objects": 3,
        "blocks_per_object": 120,
        "rounds": 90,
        "kill_round": 20,
        "replace_round": 45,
        "read_fault_rates": (0.0, 0.05),
        "scrub_rate": 16,
    },
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="scaddar",
        description=(
            "Reproduce the SCADDAR paper's tables and figures. "
            "Each experiment prints the rows the paper reports."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            *EXPERIMENTS, "all", "report", "backends", "trace", "metrics",
            "budget", "cluster",
        ],
        help=(
            "which experiment to run; 'all' runs every one, 'report' "
            "emits a markdown results document to stdout, 'backends' "
            "lists the registered placement backends, 'trace' runs the "
            "availability experiment with structured tracing and prints "
            "the event log, 'metrics' dumps its metric registry, "
            "'budget' tabulates the remaining Lemma 4.3 budget over a "
            "growth scenario, 'cluster' operates a sharded cluster "
            "through its manifest (scaddar cluster --help)"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller populations / fewer seeds for a fast smoke run",
    )
    parser.add_argument(
        "--seed",
        type=lambda text: int(text, 0),
        default=None,
        help=(
            "master seed for seed-aware experiments (chaos, availability); "
            "the whole run — fault schedules included — is bit-reproducible "
            "from this one value.  Ignored by experiments without a seed "
            "parameter."
        ),
    )
    parser.add_argument(
        "--last",
        type=int,
        default=30,
        metavar="N",
        help="('trace' only) print the last N events (default 30)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="('trace' only) also write the full event log as JSON lines",
    )
    parser.add_argument(
        "--events",
        default=None,
        metavar="FILE",
        help=(
            "('trace' only) view a previously written JSONL event log "
            "instead of running the experiment"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="('metrics' only) output format (default: Prometheus text)",
    )
    parser.add_argument(
        "--eps",
        type=float,
        default=0.05,
        help="('budget' only) unfairness tolerance epsilon (default 0.05)",
    )
    parser.add_argument(
        "--bits",
        type=int,
        default=16,
        help="('budget' only) random-number width b (default 16)",
    )
    parser.add_argument(
        "--disks",
        type=int,
        default=4,
        help="('budget' only) initial disk count N0 (default 4)",
    )
    return parser


def render_backends() -> str:
    """List the placement backends the server stack can run on."""
    from repro.experiments.tables import format_table
    from repro.placement.backends import BACKENDS

    return format_table(
        ("backend", "class", "keyed by"),
        [
            (
                name,
                cls.__name__,
                "block id" if cls.requires_ids else "X0",
            )
            for name, cls in BACKENDS.items()
        ],
    )


def render_budget(eps: float = 0.05, bits: int = 16, disks: int = 4) -> str:
    """The ``scaddar budget`` view: watch Lemma 4.3's budget drain.

    Simulates single-disk additions on an (empty) server with an
    :class:`~repro.server.watchdog.ExhaustionWatchdog` attached and
    tabulates the remaining operations and escalation level after each —
    the operator's preview of when a deployment with these parameters
    must reshuffle.
    """
    from repro.experiments.tables import format_table
    from repro.core.operations import ScalingOp
    from repro.server.cmserver import CMServer
    from repro.server.objects import ObjectCatalog
    from repro.server.watchdog import ExhaustionWatchdog, WatchdogConfig
    from repro.storage.disk import DiskSpec

    server = CMServer(
        ObjectCatalog(bits=bits), [DiskSpec()] * disks, bits=bits
    )
    watchdog = ExhaustionWatchdog(server, WatchdogConfig(eps=eps))
    rows = []
    operations = 0
    status = watchdog.status()
    rows.append((operations, server.num_disks, status.remaining, status.level))
    while not status.exhausted and operations < 64:
        server.scale(ScalingOp.add(1))
        operations += 1
        status = watchdog.status()
        rows.append(
            (operations, server.num_disks, status.remaining, status.level)
        )
    table = format_table(
        ("operation", "disks", "remaining ops", "level"), rows
    )
    return (
        table
        + f"\nb={bits} bits, N0={disks}, eps={eps}: the budget above is "
        "Lemma 4.3's precondition (Pi_k <= R0*eps/(1+eps)); at level "
        "'blocked' the next scale must be preceded by a full reshuffle "
        "(scaddar reshuffle, or auto_reset=True on the watchdog)."
    )


def run_observed(quick: bool = False, seed: int | None = None):
    """Run the availability experiment with a live obs handle attached.

    Returns the :class:`~repro.obs.Obs` carrying the run's event log and
    metric registry — the data source for ``trace`` and ``metrics``.
    """
    from repro.experiments.availability import run_availability
    from repro.obs import Obs

    obs = Obs()
    kwargs = dict(QUICK_KWARGS["availability"]) if quick else {}
    if seed is not None:
        kwargs["seed"] = seed
    run_availability(obs=obs, **kwargs)
    return obs


def render_trace(
    quick: bool = False,
    seed: int | None = None,
    last: int = 30,
    out: str | None = None,
    events: str | None = None,
) -> str:
    """The ``scaddar trace`` view: event-kind profile + the log's tail."""
    from repro.obs import EventLog

    if events is not None:
        log_events = EventLog.read_jsonl(events)
        source = f"event log {events}"
    else:
        obs = run_observed(quick=quick, seed=seed)
        if out is not None:
            obs.write_events(out)
        log_events = list(obs.log.events)
        source = "availability experiment"
    kinds: dict[str, int] = {}
    for event in log_events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    lines = [f"{len(log_events)} events from the {source}", ""]
    for kind in sorted(kinds):
        lines.append(f"  {kind:24s} {kinds[kind]}")
    lines.append("")
    tail = log_events[-last:] if last > 0 else []
    lines.append(f"last {len(tail)} events:")
    lines.extend(event.to_json().rstrip() for event in tail)
    if out is not None and events is None:
        lines.append("")
        lines.append(f"full event log written to {out}")
    return "\n".join(lines)


def render_metrics(
    quick: bool = False, seed: int | None = None, fmt: str = "prom"
) -> str:
    """The ``scaddar metrics`` view: the run's metric registry."""
    import json as _json

    obs = run_observed(quick=quick, seed=seed)
    if fmt == "json":
        return _json.dumps(obs.json_snapshot(), indent=2)
    return obs.prometheus().rstrip("\n")


def _run_one(name: str, quick: bool, seed: int | None = None) -> str:
    module = EXPERIMENTS[name]
    kwargs = dict(QUICK_KWARGS.get(name, {})) if quick else {}
    if seed is not None and "seed" in inspect.signature(module.run).parameters:
        kwargs["seed"] = seed
    if not kwargs and not quick:
        return module.report()
    return module.report(module.run(**kwargs))


def render_markdown_report(quick: bool = False) -> str:
    """Run every experiment and emit a markdown results document.

    This regenerates the data behind EXPERIMENTS.md in one command, so a
    reviewer can diff fresh measurements against the committed record.
    """
    lines = [
        "# SCADDAR reproduction — measured results",
        "",
        "Generated by `scaddar report"
        + (" --quick`." if quick else "`."),
        "Every section is one experiment; see DESIGN.md for the mapping to"
        " the paper's tables and figures.",
        "",
    ]
    for name in EXPERIMENTS:
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```text")
        lines.append(_run_one(name, quick))
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Run the selected experiment(s); returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "cluster":
        # The cluster verbs carry their own argument surface; dispatch
        # before the experiment parser sees (and rejects) it.
        from repro.cluster.cli import cluster_main

        return cluster_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "report":
        print(render_markdown_report(quick=args.quick))
        return 0
    if args.experiment == "backends":
        print(render_backends())
        return 0
    if args.experiment == "trace":
        print(
            render_trace(
                quick=args.quick,
                seed=args.seed,
                last=args.last,
                out=args.out,
                events=args.events,
            )
        )
        return 0
    if args.experiment == "metrics":
        print(render_metrics(quick=args.quick, seed=args.seed, fmt=args.format))
        return 0
    if args.experiment == "budget":
        print(render_budget(eps=args.eps, bits=args.bits, disks=args.disks))
        return 0
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"=== {name} ===")
        print(_run_one(name, args.quick, seed=args.seed))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
