"""The CM server facade: catalog + placement backend + disk array.

Ties the pieces together the way the paper's system would run:

* loading an object places its blocks where the placement backend says
  (for SCADDAR: ``X0 mod N0`` plus any recorded REMAPs);
* ``scale()`` performs one scaling operation — backend first (its log is
  the source of truth), then the RF() plan, then the physical moves, then
  the topology change;
* lookups go through the backend only; the array's inventory is the
  simulated "ground truth" the integration tests check lookups against;
* when the Lemma 4.3 budget is spent, ``reshuffle()`` performs the full
  redistribution the paper prescribes: fresh seeds, fresh mapper, blocks
  moved to their new homes (SCADDAR backend only).

The placement layer is pluggable: any policy implementing the backend
API of :class:`~repro.placement.base.PlacementPolicy` (see
:mod:`repro.placement.backends`) drives the same scaling, migration,
journaling, and recovery machinery.  The default backend is
:class:`~repro.placement.backends.ScaddarBackend`, bit-identical to the
engine-direct code it replaced (``tests/test_backend_parity.py``).

Scaling can also be *begun* (plan computed, topology prepared) and
executed lazily by the online scaler (:mod:`repro.server.online`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Optional, Union

import numpy as np

from repro.analysis.movement import optimal_move_fraction
from repro.core.engine import PlacementEngine
from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.placement.backends import ScaddarBackend, make_backend
from repro.placement.base import PlacementPolicy
from repro.server.journal import LogicalMove, ReshuffleOp, ScalingJournal
from repro.server.objects import MediaObject, ObjectCatalog
from repro.storage.array import DiskArray
from repro.storage.block import Block, BlockId
from repro.storage.disk import DiskSpec
from repro.storage.migration import (
    MigrationPlan,
    MigrationSession,
    plan_physical_moves,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs import ObsHandle
    from repro.server.faults import MirroredPlacement
    from repro.server.locate import BackendBatchLocator
    from repro.server.watchdog import ExhaustionWatchdog


@dataclass
class ScaleReport:
    """Outcome of one completed scaling operation."""

    op: ScalingOp
    n_before: int
    n_after: int
    blocks_moved: int
    total_blocks: int
    optimal_fraction: Fraction

    @property
    def moved_fraction(self) -> float:
        """Observed fraction of all blocks moved."""
        return self.blocks_moved / self.total_blocks if self.total_blocks else 0.0

    @property
    def efficiency(self) -> float:
        """Movement efficiency: optimal over observed moved fraction.

        1.0 means RO1-optimal; below 1.0 the operation moved more blocks
        than the minimum.  Zero-move operations score 1.0 when nothing
        needed to move and 0.0 when the optimum says something did.
        """
        moved = self.moved_fraction
        if moved == 0.0:
            return 1.0 if self.optimal_fraction == 0 else 0.0
        return float(self.optimal_fraction) / moved


class OperationInFlightError(RuntimeError):
    """Raised when an operation cannot start because another scaling
    operation or reshuffle is still in flight on this server."""


@dataclass
class PendingScale:
    """A begun-but-not-finished scaling operation.

    The backend already reflects the new epoch and added disks are
    already attached; the caller owns executing ``plan`` (at whatever
    pace) and then calling :meth:`CMServer.finish_scale`.
    """

    op: ScalingOp
    n_before: int
    n_after: int
    plan: MigrationPlan
    removed_physicals: tuple[int, ...] = ()
    #: 1-based position of the operation in the backend's log — the
    #: correlation key between journal records and the operation.
    op_seq: int = 0
    #: Backend state captured before the operation (abort restores it).
    rollback_payload: Optional[dict] = field(default=None, repr=False)
    _finished: bool = field(default=False, repr=False)


@dataclass
class PendingReshuffle:
    """A begun-but-not-finished full redistribution.

    The backend and catalog already reflect the fresh-seeds era; the
    caller owns executing ``plan`` (at whatever pace — the online path
    interleaves it with serving rounds) and then calling
    :meth:`CMServer.finish_reshuffle`.
    """

    #: 1-based reshuffle count once this reset commits.
    epoch: int
    #: Disk count (unchanged by a reshuffle).
    n_disks: int
    plan: MigrationPlan
    #: Journal correlation key — reshuffle seqs are their own space.
    op_seq: int = 0
    _finished: bool = field(default=False, repr=False)

    @property
    def op(self) -> ReshuffleOp:
        """The journal-facing operation record."""
        return ReshuffleOp(epoch=self.epoch)


class CMServer:
    """A scalable continuous-media server with pluggable placement.

    Parameters
    ----------
    catalog:
        The object catalog (may be empty; objects can be loaded later).
    initial_specs:
        Disk specs of the initial group.
    bits:
        Random-number width ``b`` (bounds SCADDAR's operation budget).
    default_spec:
        Spec used for added disks when ``scale`` is not given explicit
        specs.
    backend:
        Placement backend: a registry name (``"scaddar"``,
        ``"jump_hash"``, ``"consistent_hash"``, ``"directory"``) or a
        ready :class:`~repro.placement.base.PlacementPolicy` instance
        whose disk count matches ``initial_specs``.
    obs:
        Optional observability handle (:class:`repro.obs.Obs`; default
        no-op).  Scaling operations run under ``scale.plan`` /
        ``scale.apply`` / ``scale.commit`` spans with ``scale.begin`` /
        ``scale.commit`` / ``scale.abort`` events, bulk lookups are
        timed into ``backend.locate.seconds`` (labelled by backend), and
        the handle is forwarded to the backend (engine cache counters).

    Examples
    --------
    >>> server = CMServer(ObjectCatalog(bits=32), [DiskSpec()] * 4, bits=32)
    >>> server.num_disks
    4
    """

    def __init__(
        self,
        catalog: ObjectCatalog,
        initial_specs: list[DiskSpec],
        bits: int = 64,
        default_spec: Optional[DiskSpec] = None,
        journal: Optional[ScalingJournal] = None,
        backend: Union[str, PlacementPolicy] = "scaddar",
        obs: Optional["ObsHandle"] = None,
    ):
        from repro.obs import NULL_OBS

        if catalog.bits != bits:
            raise ValueError(
                f"catalog bit width {catalog.bits} != server bit width {bits}; "
                "the backend and the sequences must agree on R"
            )
        if isinstance(backend, str):
            backend = make_backend(backend, n0=len(initial_specs), bits=bits)
        if backend.current_disks != len(initial_specs):
            raise ValueError(
                f"backend expects {backend.current_disks} disks but "
                f"{len(initial_specs)} specs were given"
            )
        self.catalog = catalog
        self.array = DiskArray(initial_specs)
        self.backend = backend
        self.default_spec = default_spec or initial_specs[0]
        self.journal = journal
        self.obs = obs if obs is not None else NULL_OBS
        self.backend.attach_obs(self.obs)
        if journal is not None:
            journal.attach_obs(self.obs)
        self._x0: dict[BlockId, int] = {}
        self.reshuffles = 0
        self._in_flight: Union[PendingScale, PendingReshuffle, None] = None
        self.watchdog: Optional["ExhaustionWatchdog"] = None
        for media in catalog:
            self._load_blocks(media)

    @classmethod
    def from_backend(
        cls,
        catalog: ObjectCatalog,
        backend: PlacementPolicy,
        current_specs: list[DiskSpec],
        default_spec: Optional[DiskSpec] = None,
    ) -> "CMServer":
        """Rebuild a server from a restored backend.

        ``current_specs`` describes the disks of the *current* epoch (one
        per logical index, ``len == backend.current_disks``); blocks are
        placed where the backend's restored state says they belong — the
        paper's claim that the persistent placement state fully
        determines the layout, generalized to every backend.
        """
        if len(current_specs) != backend.current_disks:
            raise ValueError(
                f"backend expects {backend.current_disks} disks but "
                f"{len(current_specs)} specs were given"
            )
        from repro.obs import NULL_OBS

        server = cls.__new__(cls)
        server.catalog = catalog
        server.array = DiskArray(current_specs)
        server.backend = backend
        server.default_spec = default_spec or current_specs[0]
        server.journal = None
        server.obs = NULL_OBS
        server._x0 = {}
        server.reshuffles = 0
        server._in_flight = None
        server.watchdog = None
        for media in catalog:
            server._load_blocks(media)
        return server

    @classmethod
    def from_state(
        cls,
        catalog: ObjectCatalog,
        mapper: ScaddarMapper,
        current_specs: list[DiskSpec],
        default_spec: Optional[DiskSpec] = None,
    ) -> "CMServer":
        """Rebuild a SCADDAR server from restored state (seeds + op log)."""
        return cls.from_backend(
            catalog,
            ScaddarBackend.from_mapper(mapper),
            current_specs,
            default_spec=default_spec,
        )

    def attach_journal(self, journal: ScalingJournal) -> None:
        """Route subsequent scaling operations through a journal."""
        self.journal = journal
        journal.attach_obs(self.obs)

    def attach_obs(self, obs: "ObsHandle") -> None:
        """Attach an observability handle after construction.

        Forwards it to the backend (engine counters) and any attached
        journal, so one handle sees the whole server.
        """
        self.obs = obs
        self.backend.attach_obs(obs)
        if self.journal is not None:
            self.journal.attach_obs(obs)

    # ------------------------------------------------------------------
    # SCADDAR-specific views (raise for other backends)
    # ------------------------------------------------------------------
    @property
    def mapper(self) -> ScaddarMapper:
        """The SCADDAR mapper (budget queries, mirroring, bit-exact
        scalar reference).  Raises for backends without one."""
        mapper = getattr(self.backend, "mapper", None)
        if not isinstance(mapper, ScaddarMapper):
            raise AttributeError(
                f"backend {self.backend.name!r} has no SCADDAR mapper"
            )
        return mapper

    @property
    def engine(self) -> PlacementEngine:
        """The SCADDAR batched engine.  Raises for other backends."""
        engine = getattr(self.backend, "engine", None)
        if engine is None:
            raise AttributeError(
                f"backend {self.backend.name!r} has no placement engine"
            )
        return engine

    def mirrored(self) -> "MirroredPlacement":
        """Section 6 offset mirroring over the live mapper.

        The degraded-serving stack's failover source; raises
        ``AttributeError`` for backends without a SCADDAR mapper (the
        offset scheme is a function of the mapper's arithmetic).
        """
        from repro.server.faults import MirroredPlacement

        return MirroredPlacement(self.mapper)

    # ------------------------------------------------------------------
    # Catalog / placement
    # ------------------------------------------------------------------
    @property
    def num_disks(self) -> int:
        """Current disk count ``Nj``."""
        return self.array.num_disks

    @property
    def total_blocks(self) -> int:
        """Blocks resident on the array."""
        return self.array.total_blocks

    def add_object(
        self, name: str, num_blocks: int, blocks_per_round: int = 1
    ) -> MediaObject:
        """Register a new object and place all its blocks."""
        media = self.catalog.add_object(name, num_blocks, blocks_per_round)
        self._load_blocks(media)
        return media

    def remove_object(self, object_id: int) -> None:
        """Drop an object and free its blocks."""
        media = self.catalog.remove_object(object_id)
        dropped = []
        for index in range(media.num_blocks):
            block_id = BlockId(object_id, index)
            self.array.drop(block_id)
            del self._x0[block_id]
            dropped.append(block_id)
        self.backend.unregister(dropped)

    def block_location(self, object_id: int, index: int) -> int:
        """Physical disk of a block, computed (not looked up).

        This is the retrieval path — for SCADDAR a chain of mod/div steps
        over the block's ``X0`` plus one logical->physical translation;
        the block inventory is never consulted.
        """
        block_id = BlockId(object_id, index)
        x0 = self._x0_of(object_id, index)
        return self.array.physical_at(self.backend.locate_one(block_id, x0))

    def block_locations(self, object_id: int) -> list[int]:
        """Whole-object lookup: physical disk of every block, in index
        order, computed in one batched pass.

        This is the bulk retrieval path for the scheduler/streams layer
        (a stream touches an object's blocks in playback order) and the
        audit path (``fsck`` checks objects wholesale): one
        :meth:`~repro.placement.base.PlacementPolicy.locate_batch` call
        instead of ``num_blocks`` scalar chains.
        """
        media = self.catalog.get(object_id)
        x0s = np.fromiter(
            (self._x0_of(object_id, index) for index in range(media.num_blocks)),
            dtype=np.uint64,
            count=media.num_blocks,
        )
        ids = (
            [BlockId(object_id, index) for index in range(media.num_blocks)]
            if self.backend.requires_ids
            else None
        )
        table = self.array.physical_ids
        with self.obs.timer("backend.locate.seconds", backend=self.backend.name):
            disks = self.backend.locate_batch(ids, x0s).tolist()
        return [table[disk] for disk in disks]

    def computed_locator(self) -> "Callable[[BlockId], int]":
        """A scalar ``BlockId -> physical`` locator that *computes*
        placement through the backend (:meth:`block_location`), never
        consulting the inventory — the serving-path contract the paper
        argues for.  Pair with :meth:`computed_batch_locator` so the
        scalar and batched paths resolve identically.
        """

        def locate(block_id: BlockId) -> int:
            return self.block_location(block_id.object_id, block_id.index)

        return locate

    def computed_batch_locator(self) -> "BackendBatchLocator":
        """A :class:`~repro.server.locate.BackendBatchLocator` resolving
        whole rounds through the backend's vectorized kernel.

        Assumes the inventory agrees with the computed placement (no
        scaling operation mid-flight), exactly like
        :meth:`block_location`.
        """
        from repro.server.locate import BackendBatchLocator

        return BackendBatchLocator(self)

    def locate_blocks(self, blocks: list[Block]) -> list[int]:
        """Current *logical* disk of each block, batched.

        The write path's lookup (ingest writes blocks to wherever the
        backend currently places them); blocks must already be
        registered with the backend (:meth:`register_media`).
        """
        x0s = np.fromiter(
            (block.x0 for block in blocks), dtype=np.uint64, count=len(blocks)
        )
        ids = (
            [block.block_id for block in blocks]
            if self.backend.requires_ids
            else None
        )
        with self.obs.timer("backend.locate.seconds", backend=self.backend.name):
            return self.backend.locate_batch(ids, x0s).tolist()

    def register_media(self, media: MediaObject) -> None:
        """Introduce an object's blocks to the backend without placing
        them (the incremental-ingest path writes them over rounds)."""
        self.backend.register(media.blocks())

    def load_vector(self) -> list[int]:
        """Blocks per disk in logical order (the evaluation's raw data)."""
        return self.array.load_vector()

    # ------------------------------------------------------------------
    # Scaling
    # ------------------------------------------------------------------
    def scale(
        self,
        op: ScalingOp,
        specs: Optional[list[DiskSpec]] = None,
        eps: Optional[float] = None,
    ) -> ScaleReport:
        """Perform one scaling operation, moving blocks immediately.

        ``eps`` (when given) enforces the backend's fairness budget
        (SCADDAR's Lemma 4.3): the operation raises
        :class:`~repro.core.errors.RandomnessExhaustedError` instead of
        degrading fairness past the tolerance.
        """
        pending = self.begin_scale(op, specs=specs, eps=eps)
        session = MigrationSession(
            self.array,
            pending.plan,
            journal=self.journal,
            op_seq=pending.op_seq,
            obs=self.obs,
        )
        with self.obs.span(
            "scale.apply", seq=pending.op_seq, moves=len(pending.plan)
        ):
            while not session.done:
                # Unthrottled execution: a budget covering every endpoint.
                session.step(len(pending.plan))
        self.finish_scale(pending)
        return ScaleReport(
            op=op,
            n_before=pending.n_before,
            n_after=pending.n_after,
            blocks_moved=len(pending.plan),
            total_blocks=self.total_blocks,
            optimal_fraction=optimal_move_fraction(op, pending.n_before),
        )

    def begin_scale(
        self,
        op: ScalingOp,
        specs: Optional[list[DiskSpec]] = None,
        eps: Optional[float] = None,
    ) -> PendingScale:
        """Start a scaling operation: update the backend, attach any new
        disks, and compute the RF() migration plan — without moving data.

        For removals the doomed disks stay attached (and readable) until
        :meth:`finish_scale`; their blocks drain via the plan.

        When an exhaustion watchdog is attached
        (:meth:`attach_watchdog`), it vets the operation first — warning,
        refusing, or auto-reshuffling per its thresholds.
        """
        if isinstance(self._in_flight, PendingReshuffle):
            raise OperationInFlightError(
                f"reshuffle epoch={self._in_flight.epoch} is still in "
                "flight; finish it before scaling"
            )
        if self.watchdog is not None:
            self.watchdog.before_scale(op)
        with self.obs.span("scale.plan", kind=op.kind, count=op.count):
            pending = self._begin_scale(op, specs, eps)
        if self.obs.enabled:
            self.obs.event(
                "scale.begin",
                seq=pending.op_seq,
                kind=op.kind,
                count=op.count,
                n_before=pending.n_before,
                n_after=pending.n_after,
                moves=len(pending.plan),
            )
        return pending

    def _begin_scale(
        self,
        op: ScalingOp,
        specs: Optional[list[DiskSpec]],
        eps: Optional[float],
    ) -> PendingScale:
        n_before = self.num_disks
        if op.kind == "add":
            group = specs if specs is not None else [self.default_spec] * op.count
            if len(group) != op.count:
                raise ValueError(
                    f"operation adds {op.count} disks but {len(group)} specs given"
                )
            removed_physicals: tuple[int, ...] = ()
        else:
            if specs is not None:
                raise ValueError("specs are only meaningful for additions")
            removed_physicals = tuple(
                self.array.physical_at(logical) for logical in op.removed
            )

        rollback_payload = self.backend.state_payload()
        block_ids = list(self._x0)
        x0s = np.fromiter(
            self._x0.values(), dtype=np.uint64, count=len(block_ids)
        )
        indices, targets = self.backend.plan_moves(op, block_ids, x0s, eps=eps)

        if op.kind == "add":
            self.array.add_group(group)
            target_table = list(self.array.physical_ids)
        else:
            target_table = self.array.survivors_after_removal(op.removed)

        plan = plan_physical_moves(
            self.array,
            (
                (block_ids[i], target)
                for i, target in zip(indices.tolist(), targets.tolist())
            ),
            target_table,
        )
        pending = PendingScale(
            op=op,
            n_before=n_before,
            n_after=self.backend.current_disks,
            plan=plan,
            removed_physicals=removed_physicals,
            op_seq=self.backend.num_operations,
            rollback_payload=rollback_payload,
        )
        self._in_flight = pending
        if self.journal is not None:
            # Logical endpoints (pre-detach indexing) — physical ids are
            # process-local and would not survive a restart.
            logical = {pid: i for i, pid in enumerate(self.array.physical_ids)}
            self.journal.record_begin(
                seq=pending.op_seq,
                op=op,
                n_before=n_before,
                n_after=pending.n_after,
                moves=[
                    LogicalMove(
                        block_id=m.block_id,
                        source_logical=logical[m.source_physical],
                        target_logical=logical[m.target_physical],
                    )
                    for m in plan.moves
                ],
            )
        return pending

    def finish_scale(self, pending: PendingScale) -> None:
        """Complete a begun operation (detach drained disks, if any)."""
        if pending._finished:
            raise ValueError("this scaling operation was already finished")
        with self.obs.span("scale.commit", seq=pending.op_seq):
            if pending.op.kind == "remove":
                self.array.remove_group(pending.op.removed)
            pending._finished = True
            if self._in_flight is pending:
                self._in_flight = None
            if self.journal is not None:
                self.journal.record_commit(pending.op_seq)
        if self.obs.enabled:
            self.obs.event(
                "scale.commit", seq=pending.op_seq, n_after=pending.n_after
            )

    def abort_scale(
        self,
        pending: PendingScale,
        session: Optional[MigrationSession] = None,
    ) -> int:
        """Roll back a begun-but-unfinished scaling operation.

        Moves already executed (tracked by the session) are reversed,
        disks attached by an addition are detached, and the backend is
        restored to its pre-operation state — afterwards the server is
        bit-identical to its pre-``begin_scale`` state.  Returns the
        number of moves rolled back.

        Raises
        ------
        ValueError
            If the operation was already finished, or the backend's last
            logged operation is not ``pending.op`` (something else ran in
            between — rollback would corrupt the log).
        """
        if pending._finished:
            raise ValueError("this scaling operation was already finished")
        ops = self.backend.log.operations
        if pending.op_seq != len(ops) or ops[-1] != pending.op:
            raise ValueError(
                f"cannot abort operation seq={pending.op_seq}: the log has "
                f"{len(ops)} operations and ends with {ops[-1] if ops else None}"
            )
        if pending.rollback_payload is None:
            raise ValueError(
                "pending operation carries no rollback state (was it "
                "rebuilt by hand?)"
            )
        with self.obs.span("scale.abort", seq=pending.op_seq):
            executed = list(session.executed) if session is not None else []
            for move in reversed(executed):
                self.array.move(move.block_id, move.source_physical)
            if pending.op.kind == "add":
                added = list(range(pending.n_before, self.array.num_disks))
                self.array.remove_group(added)
            self.backend = type(self.backend).from_payload(
                pending.rollback_payload
            )
            self.backend.attach_obs(self.obs)
            pending._finished = True
            if self._in_flight is pending:
                self._in_flight = None
            if self.journal is not None:
                self.journal.record_abort(pending.op_seq)
        if self.obs.enabled:
            self.obs.event(
                "scale.abort", seq=pending.op_seq, rolled_back=len(executed)
            )
        return len(executed)

    def replace_disk(
        self,
        logical: int,
        spec: Optional[DiskSpec] = None,
        eps: Optional[float] = None,
    ) -> tuple[ScaleReport, ScaleReport]:
        """Swap the disk at a logical index for a new one.

        The paper's upgrade scenario ("these existing disks may
        eventually need to be replaced", Section 1) as one call: add the
        replacement (blocks rebalance onto it), then remove the old disk
        (its blocks drain to survivors) — two scaling operations, so two
        entries of the Lemma 4.3 budget.

        Returns the (addition, removal) reports.
        """
        self.array.physical_at(logical)  # bounds check before mutating
        add_report = self.scale(
            ScalingOp.add(1), specs=[spec or self.default_spec], eps=eps
        )
        remove_report = self.scale(ScalingOp.remove([logical]), eps=eps)
        return add_report, remove_report

    def reshuffle(self) -> int:
        """Full redistribution: fresh seeds, fresh backend state, all
        blocks replaced by their new placement.  Returns blocks moved.

        This is the paper's recommended action once Lemma 4.3's budget is
        exhausted; afterwards the operation budget is reset.  Routed
        through the journaled path (:meth:`begin_reshuffle` /
        :meth:`finish_reshuffle`), so with a journal attached a crash at
        any move index resumes cleanly; the moves themselves execute
        immediately (the offline path).  Raises
        :class:`~repro.core.errors.UnsupportedOperationError` for
        backends without a reshuffle lifecycle and
        :class:`OperationInFlightError` when a migration is in flight
        (the historical bug: resetting seeds mid-migration corrupted the
        half-moved layout).
        """
        pending = self.begin_reshuffle()
        session = MigrationSession(
            self.array,
            pending.plan,
            journal=self.journal,
            op_seq=pending.op_seq,
            obs=self.obs,
        )
        with self.obs.span(
            "reshuffle.apply", epoch=pending.epoch, moves=len(pending.plan)
        ):
            while not session.done:
                session.step(len(pending.plan))
        self.finish_reshuffle(pending)
        return len(pending.plan)

    def begin_reshuffle(self) -> PendingReshuffle:
        """Start a full redistribution without moving data.

        Resets the backend and re-seeds every object (the fresh-seeds
        era), computes the complete move plan to the new placement, and
        journals the intent — the caller executes the plan (at whatever
        pace) and calls :meth:`finish_reshuffle`.  Serving continues
        throughout: the array inventory still answers old locations for
        blocks whose move has not landed, exactly as mid-migration.

        Raises
        ------
        OperationInFlightError
            When a scaling operation or another reshuffle is in flight —
            the reset would re-seed objects whose blocks are half-moved.
        UnsupportedOperationError
            For backends without a reshuffle lifecycle (raised before
            any state is touched).
        """
        if self._in_flight is not None:
            raise OperationInFlightError(
                f"cannot reshuffle: {type(self._in_flight).__name__} "
                "is still in flight; finish or abort it first"
            )
        # Backend first: refuses (pre-mutation) for non-reshufflable
        # policies, so catalog seeds are never touched on the error path.
        self.backend.reshuffle()
        self.catalog.reseed_all()
        self._x0.clear()
        blocks = [
            block for media in self.catalog for block in media.blocks()
        ]
        self.backend.register(blocks)
        x0s = np.fromiter(
            (block.x0 for block in blocks), dtype=np.uint64, count=len(blocks)
        )
        ids = (
            [block.block_id for block in blocks]
            if self.backend.requires_ids
            else None
        )
        disks = self.backend.locate_batch(ids, x0s).tolist()
        for block in blocks:
            self._x0[block.block_id] = block.x0
        table = list(self.array.physical_ids)
        plan = plan_physical_moves(
            self.array,
            (
                (block.block_id, disk)
                for block, disk in zip(blocks, disks)
            ),
            table,
        )
        pending = PendingReshuffle(
            epoch=self.reshuffles + 1,
            n_disks=self.num_disks,
            plan=plan,
            op_seq=self.reshuffles + 1,
        )
        self._in_flight = pending
        if self.journal is not None:
            logical = {pid: i for i, pid in enumerate(table)}
            self.journal.record_begin(
                seq=pending.op_seq,
                op=pending.op,
                n_before=self.num_disks,
                n_after=self.num_disks,
                moves=[
                    LogicalMove(
                        block_id=m.block_id,
                        source_logical=logical[m.source_physical],
                        target_logical=logical[m.target_physical],
                    )
                    for m in plan.moves
                ],
            )
        if self.obs.enabled:
            self.obs.event(
                "reshuffle.begin",
                epoch=pending.epoch,
                disks=self.num_disks,
                moves=len(plan),
            )
        return pending

    def finish_reshuffle(self, pending: PendingReshuffle) -> None:
        """Complete a begun reshuffle: bump the epoch and journal commit."""
        if pending._finished:
            raise ValueError("this reshuffle was already finished")
        pending._finished = True
        self.reshuffles += 1
        if self._in_flight is pending:
            self._in_flight = None
        if self.journal is not None:
            self.journal.record_commit(pending.op_seq)
        if self.obs.enabled:
            self.obs.event("reshuffle.commit", epoch=pending.epoch)

    def attach_watchdog(self, watchdog: "ExhaustionWatchdog") -> None:
        """Vet every future :meth:`begin_scale` through a budget watchdog
        (:mod:`repro.server.watchdog`)."""
        self.watchdog = watchdog

    def needs_reshuffle(self, eps: float) -> bool:
        """Whether the recorded operations already exceed tolerance."""
        return self.backend.needs_reshuffle(eps)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _load_blocks(self, media: MediaObject) -> None:
        """Place a whole object with one batched placement pass."""
        blocks = media.blocks()
        self.backend.register(blocks)
        x0s = np.fromiter(
            (block.x0 for block in blocks), dtype=np.uint64, count=len(blocks)
        )
        ids = (
            [block.block_id for block in blocks]
            if self.backend.requires_ids
            else None
        )
        disks = self.backend.locate_batch(ids, x0s).tolist()
        for block, disk in zip(blocks, disks):
            self._x0[block.block_id] = block.x0
            self.array.place(block, disk)

    def block_x0(self, object_id: int, index: int) -> int:
        """A block's placement number ``X0`` (public read-path accessor).

        The degraded read planner computes mirror/parity locations from
        it; cached placements are preferred, falling back to the
        catalog's seeded sequence.
        """
        return self._x0_of(object_id, index)

    def _x0_of(self, object_id: int, index: int) -> int:
        block_id = BlockId(object_id, index)
        try:
            return self._x0[block_id]
        except KeyError:
            # Not cached (e.g. after external churn): recompute from seed.
            return self.catalog.get(object_id).block(index).x0

    def __repr__(self) -> str:
        return (
            f"CMServer(backend={self.backend.name!r}, disks={self.num_disks}, "
            f"objects={len(self.catalog)}, blocks={self.total_blocks}, "
            f"operations={self.backend.num_operations})"
        )
