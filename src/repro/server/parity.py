"""Parity-group fault tolerance (Section 6 future work).

The paper: "We also plan to investigate using data parity bits to handle
faults with less required storage space."  This module implements the
natural design: blocks are gathered into parity groups of ``k`` data
blocks plus one XOR parity block, with the constraint that all ``k + 1``
blocks of a group live on *distinct* disks — otherwise one disk failure
could take two group members and the XOR could not recover.

Under random placement the grouping cannot be positional (same-stripe)
like RAID-5; instead groups are formed greedily over the block
population: each block joins an open group that has no member on the
block's disk yet, and the parity block lands on a disk the group does
not already use, chosen by the same SCADDAR arithmetic (the group id is
hashed into a placement number, so parity locations are computable, not
stored).

Compared with Section 6's mirroring:

* storage overhead drops from 100 % to ``1/k``;
* a failed block's reconstruction reads ``k`` surviving blocks instead
  of one — the classic parity trade-off the benches quantify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import PlacementEngine
from repro.core.scaddar import ScaddarMapper
from repro.prng.generators import _mix64

_PARITY_SALT = 0x9A417


class ParityPlacementError(Exception):
    """Raised when a parity group cannot satisfy the distinct-disk rule."""


@dataclass(frozen=True)
class ParityGroup:
    """One parity group: data block keys, their disks, parity disk."""

    group_id: int
    members: tuple[int, ...]  # indices into the x0 population
    member_disks: tuple[int, ...]
    parity_disk: int


@dataclass(frozen=True)
class ParityLayout:
    """The complete grouping of a block population."""

    k: int
    num_disks: int
    groups: tuple[ParityGroup, ...]
    #: blocks that could not be grouped (population tail); callers either
    #: mirror these few or keep them unprotected
    ungrouped: tuple[int, ...]

    @property
    def storage_overhead(self) -> float:
        """Parity blocks per data block (mirroring would be 1.0)."""
        data_blocks = sum(len(g.members) for g in self.groups)
        if data_blocks == 0:
            return 0.0
        return len(self.groups) / data_blocks

    def membership(self) -> dict[int, int]:
        """Map each grouped member index to its group id.

        Ungrouped indices (the population tail) are absent — callers
        (e.g. the degraded read planner) give those blocks a different
        recovery path, typically mirroring.
        """
        return {
            member: group.group_id
            for group in self.groups
            for member in group.members
        }


class ParityPlacement:
    """Greedy parity grouping over SCADDAR-placed blocks.

    Parameters
    ----------
    mapper:
        The SCADDAR mapper providing data-block locations.
    k:
        Data blocks per parity group.  Needs ``k + 1 <= N`` so a group
        can occupy distinct disks.
    """

    def __init__(self, mapper: ScaddarMapper, k: int = 4):
        if k < 2:
            raise ValueError(f"parity groups need k >= 2 data blocks, got {k}")
        self.mapper = mapper
        self.k = k
        self._engine = PlacementEngine(mapper.log)

    @property
    def num_disks(self) -> int:
        """Current disk count."""
        return self.mapper.current_disks

    def build_layout(self, x0s: list[int]) -> ParityLayout:
        """Group the population into distinct-disk parity groups.

        Greedy first-fit: each block joins the first open group without a
        member on its disk; full groups are sealed with a parity disk.
        """
        n = self.num_disks
        if self.k + 1 > n:
            raise ParityPlacementError(
                f"k + 1 = {self.k + 1} exceeds the {n} disks available"
            )
        if self._engine.log is not self.mapper.log:
            # The mapper was swapped (e.g. after a reshuffle): re-wrap.
            self._engine = PlacementEngine(self.mapper.log)
        disks = self._engine.locate_batch(
            np.asarray(x0s, dtype=np.uint64)
        ).tolist()
        open_groups: list[tuple[list[int], set[int]]] = []
        sealed: list[ParityGroup] = []
        for index, disk in enumerate(disks):
            placed = False
            for members, used in open_groups:
                if disk not in used:
                    members.append(index)
                    used.add(disk)
                    placed = True
                    if len(members) == self.k:
                        sealed.append(
                            self._seal(len(sealed), members, used, disks)
                        )
                        open_groups.remove((members, used))
                    break
            if not placed:
                open_groups.append(([index], {disk}))
        ungrouped = tuple(
            index for members, __ in open_groups for index in members
        )
        return ParityLayout(
            k=self.k,
            num_disks=n,
            groups=tuple(sealed),
            ungrouped=ungrouped,
        )

    def parity_disk_of(self, group_id: int, used_disks: frozenset[int]) -> int:
        """Computable parity location: hash the group id and walk the
        free disks — no parity directory needed."""
        n = self.num_disks
        free = [d for d in range(n) if d not in used_disks]
        if not free:
            raise ParityPlacementError(
                f"group {group_id} already spans all {n} disks"
            )
        return free[_mix64(group_id ^ _PARITY_SALT) % len(free)]

    def _seal(
        self,
        group_id: int,
        members: list[int],
        used: set[int],
        disks: list[int],
    ) -> ParityGroup:
        member_disks = tuple(disks[i] for i in members)
        parity = self.parity_disk_of(group_id, frozenset(used))
        return ParityGroup(
            group_id=group_id,
            members=tuple(members),
            member_disks=member_disks,
            parity_disk=parity,
        )


def recovery_reads(layout: ParityLayout, failed_disk: int) -> dict[int, int]:
    """Reads per surviving disk to reconstruct everything lost with the
    failed disk (each lost data or parity block needs its k survivors)."""
    reads: dict[int, int] = {
        d: 0 for d in range(layout.num_disks) if d != failed_disk
    }
    for group in layout.groups:
        all_disks = [*group.member_disks, group.parity_disk]
        lost = [d for d in all_disks if d == failed_disk]
        if not lost:
            continue
        for disk in all_disks:
            if disk != failed_disk:
                reads[disk] += 1
    return reads


def survives_single_failure(layout: ParityLayout) -> bool:
    """True when every group has at most one block per disk (so any one
    disk failure loses at most one block per group — recoverable)."""
    for group in layout.groups:
        all_disks = [*group.member_disks, group.parity_disk]
        if len(set(all_disks)) != len(all_disks):
            return False
    return True
