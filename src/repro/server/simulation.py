"""Long-horizon server simulation with arrivals, departures and scaling.

Drives a :class:`~repro.server.cmserver.CMServer` through many rounds of
Poisson viewer arrivals (admission-controlled), natural departures, and
optional mid-run scaling triggered by rejection pressure — the
operational loop the paper's introduction describes: capacity fills up,
disks are added online, service never stops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.operations import ScalingOp
from repro.server.cmserver import CMServer
from repro.server.metrics import MetricsCollector
from repro.server.online import OnlineScaler
from repro.server.scheduler import RoundScheduler
from repro.server.streams import Stream, StreamState
from repro.workloads.arrivals import ArrivalProcess


@dataclass
class DaySummary:
    """Aggregate outcome of one simulated horizon."""

    rounds: int = 0
    arrivals: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    hiccups: int = 0
    scale_events: int = 0
    peak_active_streams: int = 0
    active_per_round: list[int] = field(default_factory=list)

    @property
    def rejection_rate(self) -> float:
        """Fraction of arrivals turned away."""
        return self.rejected / self.arrivals if self.arrivals else 0.0


class ServerSimulation:
    """Round loop: admit -> serve -> depart, with optional auto-scaling.

    Parameters
    ----------
    server:
        The CM server under test.
    arrivals:
        The arrival process generating viewers.
    autoscale_rejections:
        When set, a single-disk addition is performed online after this
        many cumulative rejections (then the counter resets).  ``None``
        disables autoscaling.
    """

    def __init__(
        self,
        server: CMServer,
        arrivals: ArrivalProcess,
        autoscale_rejections: Optional[int] = None,
        metrics: "MetricsCollector | None" = None,
    ):
        self.server = server
        self.arrivals = arrivals
        self.scheduler = RoundScheduler(server.array)
        self.autoscale_rejections = autoscale_rejections
        self.metrics = metrics
        self._next_stream_id = 0
        self._rejections_since_scale = 0

    def run(self, rounds: int) -> DaySummary:
        """Simulate ``rounds`` scheduling rounds."""
        if rounds < 0:
            raise ValueError(f"rounds must be >= 0, got {rounds}")
        summary = DaySummary()
        for __ in range(rounds):
            self._admit_new_viewers(summary)
            report = self.scheduler.run_round()
            if self.metrics is not None:
                self.metrics.record(report, self.server.load_vector())
            summary.hiccups += report.hiccups
            summary.rounds += 1
            active = self.scheduler.active_streams
            summary.active_per_round.append(active)
            summary.peak_active_streams = max(summary.peak_active_streams, active)
            summary.completed += self._retire_finished()
            if self._should_scale():
                self._scale_online(summary)
        return summary

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _admit_new_viewers(self, summary: DaySummary) -> None:
        for arrival in self.arrivals.next_round():
            summary.arrivals += 1
            media = self.server.catalog.get(arrival.object_id)
            stream = Stream(
                self._next_stream_id, media, start_block=arrival.start_block
            )
            self._next_stream_id += 1
            try:
                self.scheduler.admit(stream)
            except ValueError:
                summary.rejected += 1
                self._rejections_since_scale += 1
            else:
                summary.admitted += 1

    def _retire_finished(self) -> int:
        finished = [
            s.stream_id
            for s in self.scheduler.streams
            if s.state is StreamState.DONE
        ]
        for stream_id in finished:
            self.scheduler.depart(stream_id)
        return len(finished)

    def _should_scale(self) -> bool:
        return (
            self.autoscale_rejections is not None
            and self._rejections_since_scale >= self.autoscale_rejections
        )

    def _scale_online(self, summary: DaySummary) -> None:
        scaler = OnlineScaler(self.server, self.scheduler)
        report = scaler.scale_online(ScalingOp.add(1))
        summary.hiccups += report.hiccups
        summary.rounds += report.rounds
        summary.scale_events += 1
        self._rejections_since_scale = 0
