"""The exhaustion watchdog: track Lemma 4.3's budget before it bites.

SCADDAR's fairness guarantee is a *consumable*: Lemma 4.3 bounds the
product of disk counts (``Pi_k <= R_0 * eps / (1 + eps)``), so every
scaling operation spends budget and nothing short of a full reshuffle
earns it back.  The paper leaves the operational question open — who
notices the budget running out, and what do they do about it?

This module is that operator.  :class:`ExhaustionWatchdog` wraps a
:class:`~repro.server.cmserver.CMServer` and

* **measures** — :meth:`status` asks the backend how many more
  operations fit (:meth:`~repro.placement.base.PlacementPolicy.
  budget_remaining`), publishes the number as the
  ``budget.remaining_operations`` gauge (labelled by backend), and
  classifies it into an escalation level;
* **warns** — at or below ``warn_threshold`` remaining operations a
  ``budget.warn`` event fires (once per level change, not per probe);
* **blocks** — attached to a server (:meth:`CMServer.attach_watchdog`),
  :meth:`before_scale` refuses to start an operation once the level
  reaches ``blocked``, raising :class:`BudgetExhaustedError` instead of
  letting fairness degrade past the tolerance;
* **resets** — with ``auto_reset=True`` the refusal becomes a remedy:
  the watchdog runs the full reshuffle the paper prescribes (through
  the journaled online path) and then admits the operation.

Backends that never degrade (directory, jump hash, sequential
checking — ``budget_remaining() is None``) report ``unlimited`` and are
never warned or blocked.

Examples
--------
>>> from repro.server.cmserver import CMServer
>>> from repro.server.objects import ObjectCatalog
>>> from repro.storage.disk import DiskSpec
>>> server = CMServer(ObjectCatalog(bits=16), [DiskSpec()] * 4, bits=16)
>>> dog = ExhaustionWatchdog(server, WatchdogConfig(eps=0.1))
>>> dog.status().level in {"ok", "warn", "blocked"}
True
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ScaddarError
from repro.core.operations import ScalingOp

from repro.server.cmserver import CMServer

#: Escalation levels, least to most severe.
LEVELS = ("unlimited", "ok", "warn", "blocked")


class BudgetExhaustedError(ScaddarError):
    """Raised by :meth:`ExhaustionWatchdog.before_scale` when the
    remaining Lemma 4.3 budget is at or below the block threshold and
    auto-reset is off.  The remedy is :meth:`CMServer.reshuffle`."""


@dataclass(frozen=True)
class WatchdogConfig:
    """Thresholds for the escalation ladder.

    Attributes
    ----------
    eps:
        The unfairness tolerance the budget is measured against
        (Lemma 4.3's epsilon).
    warn_threshold:
        Remaining operations at or below which the level is ``warn``.
    block_threshold:
        Remaining operations at or below which new scaling operations
        are refused (``blocked``).  Must not exceed ``warn_threshold``.
    auto_reset:
        When True, a blocked operation triggers a full reshuffle
        (budget reset) instead of raising, then proceeds.
    group_size:
        Disks per future operation assumed when counting how many more
        operations fit (matches
        :meth:`~repro.core.scaddar.ScaddarMapper.remaining_operations`).
    """

    eps: float
    warn_threshold: int = 2
    block_threshold: int = 0
    auto_reset: bool = False
    group_size: int = 1

    def __post_init__(self) -> None:
        if self.eps <= 0:
            raise ValueError(f"eps must be positive, got {self.eps}")
        if self.block_threshold < 0 or self.warn_threshold < 0:
            raise ValueError("thresholds must be non-negative")
        if self.block_threshold > self.warn_threshold:
            raise ValueError(
                f"block_threshold {self.block_threshold} exceeds "
                f"warn_threshold {self.warn_threshold}"
            )


@dataclass(frozen=True)
class BudgetStatus:
    """One probe of the budget: how much is left and how bad that is."""

    backend: str
    #: Remaining operations; ``None`` means the backend never degrades.
    remaining: int | None
    #: One of :data:`LEVELS`.
    level: str

    @property
    def exhausted(self) -> bool:
        """Whether new scaling operations would be refused."""
        return self.level == "blocked"


class ExhaustionWatchdog:
    """Budget monitor + admission controller for one server.

    Construct with the server and a :class:`WatchdogConfig`; attach via
    :meth:`CMServer.attach_watchdog` so every
    :meth:`~repro.server.cmserver.CMServer.begin_scale` is vetted.
    Metrics and events go to the server's observability handle.
    """

    def __init__(self, server: CMServer, config: WatchdogConfig):
        self.server = server
        self.config = config
        #: Reshuffles this watchdog triggered (auto-reset mode).
        self.auto_resets = 0
        self._last_level: str | None = None

    def status(self) -> BudgetStatus:
        """Probe the remaining budget, publish the gauge, classify.

        Emits a ``budget.warn`` / ``budget.blocked`` event when the
        escalation level *changes* (so repeated probes don't spam), and
        a ``budget.recovered`` event when it de-escalates.
        """
        remaining = self.server.backend.budget_remaining(
            self.config.eps, group_size=self.config.group_size
        )
        level = self._classify(remaining)
        obs = self.server.obs
        if obs.enabled:
            obs.set_gauge(
                "budget.remaining_operations",
                -1 if remaining is None else remaining,
                backend=self.server.backend.name,
            )
            if level != self._last_level:
                if level in ("warn", "blocked"):
                    obs.event(
                        f"budget.{level}",
                        backend=self.server.backend.name,
                        remaining=remaining,
                    )
                elif self._last_level in ("warn", "blocked"):
                    obs.event(
                        "budget.recovered",
                        backend=self.server.backend.name,
                        remaining=remaining,
                    )
        self._last_level = level
        return BudgetStatus(
            backend=self.server.backend.name, remaining=remaining, level=level
        )

    def before_scale(self, op: ScalingOp) -> None:
        """Admission check run by :meth:`CMServer.begin_scale`.

        Blocked + ``auto_reset`` runs the full reshuffle first (resetting
        the budget) and admits the operation; blocked without it raises
        :class:`BudgetExhaustedError`.  ``warn`` admits but events.
        """
        status = self.status()
        if not status.exhausted:
            return
        if not self.config.auto_reset:
            raise BudgetExhaustedError(
                f"backend {status.backend!r} has "
                f"{status.remaining} scaling operations left for "
                f"eps={self.config.eps}; reshuffle to reset the budget "
                f"(or construct the watchdog with auto_reset=True)"
            )
        if self.server.obs.enabled:
            self.server.obs.event(
                "budget.auto_reset",
                backend=status.backend,
                remaining=status.remaining,
                op=op.kind,
            )
        self.server.reshuffle()
        self.auto_resets += 1
        self.status()  # republish the post-reset gauge

    def _classify(self, remaining: int | None) -> str:
        if remaining is None:
            return "unlimited"
        if remaining <= self.config.block_threshold:
            return "blocked"
        if remaining <= self.config.warn_threshold:
            return "warn"
        return "ok"

    def __repr__(self) -> str:
        return (
            f"ExhaustionWatchdog(backend={self.server.backend.name!r}, "
            f"eps={self.config.eps}, auto_resets={self.auto_resets})"
        )
