"""Round-level metrics collection for server simulations.

Long-horizon runs need observability: per-round demand, hiccups, disk
load balance and utilization — and, in degraded mode, the availability
ledger: failover reads, reconstruction reads, queued (slow) reads,
per-disk health, and scrubber activity — with summaries and a CSV
export so results can leave Python.  The collector is pull-based — feed
it each :class:`~repro.server.scheduler.RoundReport` (and optionally
the load vector) as the simulation produces them.

Availability is computed over **unique demand**: a read queued in round
*r* is re-requested (and counted in ``requested`` again) in round
*r+1*, so dividing served by raw requested double-counts every queued
read's demand while crediting its serve only once — understating the
SLO precisely when the system is degraded.  The scheduler reports those
re-requests in :attr:`~repro.server.scheduler.RoundReport.retried`;
``availability = served / (requested - retried)``.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.analysis.stats import coefficient_of_variation
from repro.server.scheduler import RoundReport


@dataclass(frozen=True)
class RoundSample:
    """One round's recorded metrics."""

    round_index: int
    requested: int
    served: int
    hiccups: int
    queued: int
    failover_reads: int
    reconstructed_reads: int
    scrub_repaired: int
    degraded_disks: int
    peak_disk_queue: int
    spare_bandwidth: int
    load_cov: Optional[float]
    #: Re-requests of reads queued the previous round (0 on old reports).
    retried: int = 0


@dataclass(frozen=True)
class MetricsSummary:
    """Aggregates over the collected horizon."""

    rounds: int
    total_requested: int
    total_served: int
    total_hiccups: int
    total_queued: int
    total_failover_reads: int
    total_reconstructed_reads: int
    total_scrub_repaired: int
    hiccup_rate: float
    #: Served / unique demand over the horizon — the availability SLO
    #: metric.  Unique demand is ``total_requested - total_retried``: a
    #: queued read's re-request the next round is the *same* demand, not
    #: new demand, so counting it twice would understate availability.
    availability: float
    mean_peak_queue: float
    p99_peak_queue: float
    mean_spare_bandwidth: float
    #: Re-requests of previously-queued reads over the horizon.
    total_retried: int = 0

    @property
    def unique_requested(self) -> int:
        """Demand with queued-read re-requests counted once."""
        return self.total_requested - self.total_retried

    def meets_slo(self, target: float = 0.999) -> bool:
        """Whether availability met the target over the horizon."""
        return self.availability >= target


class MetricsCollector:
    """Accumulates per-round samples and produces summaries/CSV."""

    def __init__(self):
        self._samples: list[RoundSample] = []

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> tuple[RoundSample, ...]:
        """All recorded samples in round order."""
        return tuple(self._samples)

    def record(
        self, report: RoundReport, load_vector: Optional[list[int]] = None
    ) -> None:
        """Record one round (optionally with the blocks-per-disk vector)."""
        self._samples.append(
            RoundSample(
                round_index=report.round_index,
                requested=report.requested,
                served=report.served,
                hiccups=report.hiccups,
                queued=report.queued,
                retried=report.retried,
                failover_reads=report.failover_reads,
                reconstructed_reads=report.reconstructed_reads,
                scrub_repaired=report.scrub_repaired,
                degraded_disks=sum(
                    1
                    for state in report.health_by_physical.values()
                    if state != "healthy"
                ),
                peak_disk_queue=max(report.load_by_physical.values(), default=0),
                spare_bandwidth=sum(report.spare_by_physical.values()),
                load_cov=(
                    coefficient_of_variation(load_vector)
                    if load_vector is not None
                    else None
                ),
            )
        )

    def summary(self) -> MetricsSummary:
        """Aggregate the horizon so far."""
        if not self._samples:
            raise ValueError("no rounds recorded yet")
        requested = sum(s.requested for s in self._samples)
        served = sum(s.served for s in self._samples)
        hiccups = sum(s.hiccups for s in self._samples)
        retried = sum(s.retried for s in self._samples)
        unique = requested - retried
        peaks = np.asarray([s.peak_disk_queue for s in self._samples], dtype=float)
        return MetricsSummary(
            rounds=len(self._samples),
            total_requested=requested,
            total_served=served,
            total_hiccups=hiccups,
            total_queued=sum(s.queued for s in self._samples),
            total_retried=retried,
            total_failover_reads=sum(s.failover_reads for s in self._samples),
            total_reconstructed_reads=sum(
                s.reconstructed_reads for s in self._samples
            ),
            total_scrub_repaired=sum(s.scrub_repaired for s in self._samples),
            hiccup_rate=hiccups / unique if unique else 0.0,
            availability=served / unique if unique else 1.0,
            mean_peak_queue=float(peaks.mean()),
            p99_peak_queue=float(np.percentile(peaks, 99)),
            mean_spare_bandwidth=float(
                np.mean([s.spare_bandwidth for s in self._samples])
            ),
        )

    def to_csv(self, path: Optional[str | Path] = None) -> str:
        """Export samples as CSV; writes to ``path`` when given, and
        always returns the CSV text."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(
            [
                "round",
                "requested",
                "served",
                "hiccups",
                "queued",
                "retried",
                "failover_reads",
                "reconstructed_reads",
                "scrub_repaired",
                "degraded_disks",
                "peak_disk_queue",
                "spare_bandwidth",
                "load_cov",
            ]
        )
        for s in self._samples:
            writer.writerow(
                [
                    s.round_index,
                    s.requested,
                    s.served,
                    s.hiccups,
                    s.queued,
                    s.retried,
                    s.failover_reads,
                    s.reconstructed_reads,
                    s.scrub_repaired,
                    s.degraded_disks,
                    s.peak_disk_queue,
                    s.spare_bandwidth,
                    "" if s.load_cov is None else f"{s.load_cov:.6f}",
                ]
            )
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text
