"""Server state persistence and crash recovery.

The paper's storage argument (Section 1): SCADDAR needs "only a storage
structure for recording scaling operations" plus the per-object seeds.
This module makes that literal — a snapshot is a small JSON document
(object seeds + operation log + disk specs), independent of the number
of blocks, and restoring it reproduces every block location bit-exactly
(``tests/test_persistence.py``).

Snapshots capture *quiescent* state.  The mid-migration gap is covered
by the scaling journal (:mod:`repro.server.journal`):
:func:`resume_server` combines a snapshot with the journal written since
it was taken and reconstructs the exact moment of the crash — committed
operations are replayed wholesale, aborted ones skipped, and an open one
is rebuilt into a live :class:`~repro.storage.migration.MigrationSession`
holding precisely the moves that had not yet landed.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.operations import OperationLog
from repro.core.scaddar import ScaddarMapper
from repro.server.cmserver import CMServer, PendingScale
from repro.server.journal import JournalError, OpJournalRecord, ScalingJournal
from repro.server.objects import MediaObject, ObjectCatalog
from repro.storage.disk import DiskSpec
from repro.storage.migration import MigrationPlan, MigrationSession

#: Snapshot format version, bumped on incompatible layout changes.
#: Version 2 adds the explicit operation-count stamp and the journal
#: pointer; version 1 snapshots are still read.
SNAPSHOT_VERSION = 2


def snapshot_server(server: CMServer) -> dict:
    """Serialize a server to a JSON-compatible dict.

    The snapshot is O(objects + operations + disks) — never O(blocks).
    """
    journal = getattr(server, "journal", None)
    return {
        "version": SNAPSHOT_VERSION,
        "bits": server.mapper.bits,
        "reshuffles": server.reshuffles,
        # v2: explicit op-count stamp (cross-checked on restore) and the
        # journal pointer, so an operator can find the records written
        # after this snapshot.
        "snapshot_ops": server.mapper.num_operations,
        "journal_path": (
            str(journal.path)
            if journal is not None and journal.path is not None
            else None
        ),
        "catalog": {
            "master_seed": server.catalog.master_seed,
            "bits": server.catalog.bits,
            "family": server.catalog.family,
            "objects": [
                {
                    "object_id": media.object_id,
                    "name": media.name,
                    "num_blocks": media.num_blocks,
                    "seed": media.seed,
                    "blocks_per_round": media.blocks_per_round,
                }
                for media in server.catalog
            ],
        },
        "operation_log": json.loads(server.mapper.log.to_json()),
        "disks": [
            {
                "capacity_blocks": disk.capacity_blocks,
                "bandwidth_blocks_per_round": disk.bandwidth_blocks_per_round,
                "model": disk.model,
            }
            for disk in (
                server.array.disk(pid) for pid in server.array.physical_ids
            )
        ],
        "default_spec": {
            "capacity_blocks": server.default_spec.capacity_blocks,
            "bandwidth_blocks_per_round": (
                server.default_spec.bandwidth_blocks_per_round
            ),
            "model": server.default_spec.model,
        },
    }


def server_to_json(server: CMServer) -> str:
    """Snapshot a server to a JSON string."""
    return json.dumps(snapshot_server(server))


def restore_server(snapshot: dict | str) -> CMServer:
    """Rebuild a server from a snapshot; block layout is bit-identical.

    Raises
    ------
    ValueError
        On unknown snapshot versions, or when the snapshot is internally
        inconsistent (the operation log's final disk count must equal
        the number of recorded disk specs — a mismatch would silently
        build a server whose AF() disagrees with its disks).
    """
    data = json.loads(snapshot) if isinstance(snapshot, str) else snapshot
    version = data.get("version")
    if version not in (1, SNAPSHOT_VERSION):
        raise ValueError(
            f"unsupported snapshot version {version!r}; "
            f"this build reads versions 1..{SNAPSHOT_VERSION}"
        )

    catalog_data = data["catalog"]
    objects = {
        entry["object_id"]: MediaObject(
            object_id=entry["object_id"],
            name=entry["name"],
            num_blocks=entry["num_blocks"],
            seed=entry["seed"],
            bits=catalog_data["bits"],
            family=catalog_data["family"],
            blocks_per_round=entry["blocks_per_round"],
        )
        for entry in catalog_data["objects"]
    }
    catalog = ObjectCatalog(
        master_seed=catalog_data["master_seed"],
        bits=catalog_data["bits"],
        family=catalog_data["family"],
        _objects=objects,
        _next_id=max(objects, default=-1) + 1,
    )

    log = OperationLog.from_json(json.dumps(data["operation_log"]))
    if len(data["disks"]) != log.current_disks:
        raise ValueError(
            f"snapshot inconsistent: operation log ends at "
            f"{log.current_disks} disks but {len(data['disks'])} disk "
            "specs are recorded"
        )
    if version >= 2 and data.get("snapshot_ops") != log.num_operations:
        raise ValueError(
            f"snapshot inconsistent: stamped with {data.get('snapshot_ops')} "
            f"operations but the log holds {log.num_operations}"
        )
    mapper = ScaddarMapper(n0=log.n0, bits=data["bits"])
    for op in log:
        mapper.apply(op)

    specs = [
        DiskSpec(
            capacity_blocks=entry["capacity_blocks"],
            bandwidth_blocks_per_round=entry["bandwidth_blocks_per_round"],
            model=entry["model"],
        )
        for entry in data["disks"]
    ]
    default = data["default_spec"]
    server = CMServer.from_state(
        catalog,
        mapper,
        specs,
        default_spec=DiskSpec(
            capacity_blocks=default["capacity_blocks"],
            bandwidth_blocks_per_round=default["bandwidth_blocks_per_round"],
            model=default["model"],
        ),
    )
    server.reshuffles = data["reshuffles"]
    return server


def resume_server(
    snapshot: dict | str,
    journal: ScalingJournal | str,
) -> tuple[CMServer, Optional[PendingScale], Optional[MigrationSession]]:
    """Rebuild the exact mid-migration state after a crash.

    The snapshot provides the last quiescent state; the journal provides
    every scaling record written since.  Replay walks the journal in
    order:

    * operations already in the snapshot's log are verified and skipped;
    * **committed** operations are re-begun and their whole plan
      executed (block moves are deterministic, so this lands every block
      exactly where the crashed process had put it);
    * **aborted** operations contributed nothing and are skipped;
    * an **open** operation (crash mid-migration) is re-begun, its
      journaled ``apply`` records re-executed, and the remainder handed
      back as a live session.

    Returns ``(server, pending, session)`` — ``pending``/``session`` are
    ``None`` when the journal ends quiescent, otherwise the in-flight
    operation and a session holding exactly the not-yet-landed moves
    (execute it and call ``server.finish_scale(pending)`` to complete
    the interrupted operation).  The journal is re-attached to the
    returned server, so completion is journaled like any other scale.

    Raises
    ------
    JournalError
        When the journal disagrees with the snapshot (wrong op at a
        sequence number, or a re-derived plan that does not match the
        journaled one) — a sign of mixed-up files, not a crash artifact.
    """
    if isinstance(journal, str):
        journal = ScalingJournal(journal)
    server = restore_server(snapshot)
    base_ops = server.mapper.num_operations
    base_log = server.mapper.log.operations

    open_state: tuple[PendingScale, MigrationSession] | None = None
    for record in journal.replay():
        if record.aborted:
            continue  # begin + rollback = net nothing
        if record.seq <= base_ops:
            if base_log[record.seq - 1] != record.op:
                raise JournalError(
                    f"journal op seq={record.seq} is {record.op} but the "
                    f"snapshot log holds {base_log[record.seq - 1]}"
                )
            continue  # already reflected in the snapshot
        if open_state is not None:
            raise JournalError(
                "journal has records after an uncommitted operation"
            )
        if record.seq != server.mapper.num_operations + 1:
            raise JournalError(
                f"journal op seq={record.seq} does not follow the "
                f"{server.mapper.num_operations} operations restored so far"
            )
        pending = server.begin_scale(record.op)
        by_block = {m.block_id: m for m in pending.plan.moves}
        _verify_replayed_plan(server, record, by_block)
        if record.committed:
            for move in pending.plan.moves:
                server.array.move(move.block_id, move.target_physical)
            server.finish_scale(pending)
            continue
        # Crash mid-migration: re-execute exactly the journaled moves.
        applied = set()
        for block_id in record.applied:
            server.array.move(block_id, by_block[block_id].target_physical)
            applied.add(block_id)
        remaining = [
            m for m in pending.plan.moves if m.block_id not in applied
        ]
        session = MigrationSession(
            server.array,
            MigrationPlan(moves=tuple(remaining)),
            journal=journal,
            op_seq=pending.op_seq,
        )
        open_state = (pending, session)

    server.attach_journal(journal)
    if open_state is None:
        return server, None, None
    return server, open_state[0], open_state[1]


def _verify_replayed_plan(
    server: CMServer,
    record: OpJournalRecord,
    by_block: dict,
) -> None:
    """Check the re-derived plan matches the journaled intent record."""
    if {m.block_id for m in record.plan} != set(by_block):
        raise JournalError(
            f"op seq={record.seq}: re-derived plan moves "
            f"{len(by_block)} blocks but the journal recorded "
            f"{len(record.plan)} different ones"
        )
    logical = {
        pid: i for i, pid in enumerate(server.array.physical_ids)
    }
    for journaled in record.plan:
        move = by_block[journaled.block_id]
        if (
            logical[move.source_physical] != journaled.source_logical
            or logical[move.target_physical] != journaled.target_logical
        ):
            raise JournalError(
                f"op seq={record.seq}: move of {journaled.block_id} "
                "re-derived with different endpoints than journaled"
            )
