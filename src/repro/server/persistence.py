"""Server state persistence.

The paper's storage argument (Section 1): SCADDAR needs "only a storage
structure for recording scaling operations" plus the per-object seeds.
This module makes that literal — a snapshot is a small JSON document
(object seeds + operation log + disk specs), independent of the number
of blocks, and restoring it reproduces every block location bit-exactly
(``tests/test_persistence.py``).
"""

from __future__ import annotations

import json

from repro.core.operations import OperationLog
from repro.core.scaddar import ScaddarMapper
from repro.server.cmserver import CMServer
from repro.server.objects import MediaObject, ObjectCatalog
from repro.storage.disk import DiskSpec

#: Snapshot format version, bumped on incompatible layout changes.
SNAPSHOT_VERSION = 1


def snapshot_server(server: CMServer) -> dict:
    """Serialize a server to a JSON-compatible dict.

    The snapshot is O(objects + operations + disks) — never O(blocks).
    """
    return {
        "version": SNAPSHOT_VERSION,
        "bits": server.mapper.bits,
        "reshuffles": server.reshuffles,
        "catalog": {
            "master_seed": server.catalog.master_seed,
            "bits": server.catalog.bits,
            "family": server.catalog.family,
            "objects": [
                {
                    "object_id": media.object_id,
                    "name": media.name,
                    "num_blocks": media.num_blocks,
                    "seed": media.seed,
                    "blocks_per_round": media.blocks_per_round,
                }
                for media in server.catalog
            ],
        },
        "operation_log": json.loads(server.mapper.log.to_json()),
        "disks": [
            {
                "capacity_blocks": disk.capacity_blocks,
                "bandwidth_blocks_per_round": disk.bandwidth_blocks_per_round,
                "model": disk.model,
            }
            for disk in (
                server.array.disk(pid) for pid in server.array.physical_ids
            )
        ],
        "default_spec": {
            "capacity_blocks": server.default_spec.capacity_blocks,
            "bandwidth_blocks_per_round": (
                server.default_spec.bandwidth_blocks_per_round
            ),
            "model": server.default_spec.model,
        },
    }


def server_to_json(server: CMServer) -> str:
    """Snapshot a server to a JSON string."""
    return json.dumps(snapshot_server(server))


def restore_server(snapshot: dict | str) -> CMServer:
    """Rebuild a server from a snapshot; block layout is bit-identical.

    Raises
    ------
    ValueError
        On unknown snapshot versions.
    """
    data = json.loads(snapshot) if isinstance(snapshot, str) else snapshot
    version = data.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {version!r}; "
            f"this build reads version {SNAPSHOT_VERSION}"
        )

    catalog_data = data["catalog"]
    objects = {
        entry["object_id"]: MediaObject(
            object_id=entry["object_id"],
            name=entry["name"],
            num_blocks=entry["num_blocks"],
            seed=entry["seed"],
            bits=catalog_data["bits"],
            family=catalog_data["family"],
            blocks_per_round=entry["blocks_per_round"],
        )
        for entry in catalog_data["objects"]
    }
    catalog = ObjectCatalog(
        master_seed=catalog_data["master_seed"],
        bits=catalog_data["bits"],
        family=catalog_data["family"],
        _objects=objects,
        _next_id=max(objects, default=-1) + 1,
    )

    log = OperationLog.from_json(json.dumps(data["operation_log"]))
    mapper = ScaddarMapper(n0=log.n0, bits=data["bits"])
    for op in log:
        mapper.apply(op)

    specs = [
        DiskSpec(
            capacity_blocks=entry["capacity_blocks"],
            bandwidth_blocks_per_round=entry["bandwidth_blocks_per_round"],
            model=entry["model"],
        )
        for entry in data["disks"]
    ]
    default = data["default_spec"]
    server = CMServer.from_state(
        catalog,
        mapper,
        specs,
        default_spec=DiskSpec(
            capacity_blocks=default["capacity_blocks"],
            bandwidth_blocks_per_round=default["bandwidth_blocks_per_round"],
            model=default["model"],
        ),
    )
    server.reshuffles = data["reshuffles"]
    return server
