"""Server state persistence and crash recovery.

The paper's storage argument (Section 1): SCADDAR needs "only a storage
structure for recording scaling operations" plus the per-object seeds.
This module makes that literal — a snapshot is a small JSON document
(object seeds + placement-backend state + disk specs) and restoring it
reproduces every block location bit-exactly
(``tests/test_persistence.py``).

Since version 3 a snapshot records its placement backend explicitly —
``{"backend": {"name": ..., "payload": ...}}`` — so any registered
backend (:data:`repro.placement.backends.BACKENDS`) round-trips through
the same machinery.  For SCADDAR the payload is the operation log plus
the bit width, keeping the snapshot O(objects + operations + disks); the
directory baseline's payload is O(blocks), which is exactly the Appendix
A storage complaint made measurable.  Version 1/2 snapshots predate the
backend field and are still read (always as SCADDAR).

Snapshots capture *quiescent* state.  The mid-migration gap is covered
by the scaling journal (:mod:`repro.server.journal`):
:func:`resume_server` combines a snapshot with the journal written since
it was taken and reconstructs the exact moment of the crash — committed
operations are replayed wholesale, aborted ones skipped, and an open one
is rebuilt into a live :class:`~repro.storage.migration.MigrationSession`
holding precisely the moves that had not yet landed.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.operations import OperationLog
from repro.core.scaddar import ScaddarMapper
from repro.placement.backends import (
    ScaddarBackend,
    UnknownBackendError,
    backend_from_payload,
)
from repro.server.cmserver import CMServer, PendingReshuffle, PendingScale
from repro.server.journal import (
    JournalError,
    OpJournalRecord,
    ReshuffleOp,
    ScalingJournal,
)
from repro.server.objects import MediaObject, ObjectCatalog
from repro.storage.disk import DiskSpec
from repro.storage.migration import MigrationPlan, MigrationSession

#: Snapshot format version, bumped on incompatible layout changes.
#: Version 4 records the catalog's seed epoch (so a restored server's
#: *next* reshuffle derives the same seeds the crashed one would have);
#: version 3 records the placement backend (name + payload); version 2
#: added the explicit operation-count stamp and the journal pointer.
#: Versions 1..3 are still read (1/2 always as SCADDAR; 3 infers the
#: seed epoch from the reshuffle count, which is how it advanced).
SNAPSHOT_VERSION = 4


class SnapshotError(ValueError):
    """Raised when a snapshot cannot be restored.

    Unknown versions, unregistered backends, internal inconsistencies —
    anything that means "this document does not describe a server this
    build can rebuild" (as opposed to a crash artifact, which is the
    journal's domain and raises :class:`JournalError`).
    """


def snapshot_server(server: CMServer) -> dict:
    """Serialize a server to a JSON-compatible dict.

    O(backend payload): for SCADDAR that is O(objects + operations +
    disks) — never O(blocks); the directory backend's payload is the
    directory itself.
    """
    journal = getattr(server, "journal", None)
    return {
        "version": SNAPSHOT_VERSION,
        "bits": server.catalog.bits,
        "reshuffles": server.reshuffles,
        # v4: the seed-derivation epoch — replaying a journaled reshuffle
        # after restore must re-derive the exact seeds the crashed
        # process derived.
        "seed_epoch": server.catalog._seed_epoch,
        # Explicit op-count stamp (cross-checked on restore) and the
        # journal pointer, so an operator can find the records written
        # after this snapshot.
        "snapshot_ops": server.backend.num_operations,
        "journal_path": (
            str(journal.path)
            if journal is not None and journal.path is not None
            else None
        ),
        # v3: the placement backend's identity — name keys the registry,
        # payload is whatever that backend needs to restore bit-exactly.
        "backend": {
            "name": server.backend.name,
            "payload": server.backend.state_payload(),
        },
        "catalog": {
            "master_seed": server.catalog.master_seed,
            "bits": server.catalog.bits,
            "family": server.catalog.family,
            "objects": [
                {
                    "object_id": media.object_id,
                    "name": media.name,
                    "num_blocks": media.num_blocks,
                    "seed": media.seed,
                    "blocks_per_round": media.blocks_per_round,
                }
                for media in server.catalog
            ],
        },
        "operation_log": json.loads(server.backend.log.to_json()),
        "disks": [
            {
                "capacity_blocks": disk.capacity_blocks,
                "bandwidth_blocks_per_round": disk.bandwidth_blocks_per_round,
                "model": disk.model,
            }
            for disk in (
                server.array.disk(pid) for pid in server.array.physical_ids
            )
        ],
        "default_spec": {
            "capacity_blocks": server.default_spec.capacity_blocks,
            "bandwidth_blocks_per_round": (
                server.default_spec.bandwidth_blocks_per_round
            ),
            "model": server.default_spec.model,
        },
    }


def server_to_json(server: CMServer) -> str:
    """Snapshot a server to a JSON string."""
    return json.dumps(snapshot_server(server))


def restore_server(snapshot: dict | str) -> CMServer:
    """Rebuild a server from a snapshot; block layout is bit-identical.

    Raises
    ------
    SnapshotError
        On unknown snapshot versions, backends this build does not
        register, or an internally inconsistent snapshot (the backend's
        final disk count must equal the number of recorded disk specs —
        a mismatch would silently build a server whose lookups disagree
        with its disks).
    """
    data = json.loads(snapshot) if isinstance(snapshot, str) else snapshot
    version = data.get("version")
    if version not in (1, 2, 3, SNAPSHOT_VERSION):
        raise SnapshotError(
            f"unsupported snapshot version {version!r}; "
            f"this build reads versions 1..{SNAPSHOT_VERSION}"
        )

    catalog_data = data["catalog"]
    objects = {
        entry["object_id"]: MediaObject(
            object_id=entry["object_id"],
            name=entry["name"],
            num_blocks=entry["num_blocks"],
            seed=entry["seed"],
            bits=catalog_data["bits"],
            family=catalog_data["family"],
            blocks_per_round=entry["blocks_per_round"],
        )
        for entry in catalog_data["objects"]
    }
    catalog = ObjectCatalog(
        master_seed=catalog_data["master_seed"],
        bits=catalog_data["bits"],
        family=catalog_data["family"],
        _objects=objects,
        _next_id=max(objects, default=-1) + 1,
        # Pre-v4 snapshots: the epoch advanced exactly once per
        # reshuffle (reseed_all's only caller), so the count infers it.
        _seed_epoch=data.get("seed_epoch", data["reshuffles"]),
    )

    backend = _restore_backend(data, version)
    if len(data["disks"]) != backend.current_disks:
        raise SnapshotError(
            "snapshot inconsistent: backend state ends at "
            f"{backend.current_disks} disks but {len(data['disks'])} disk "
            "specs are recorded"
        )
    if version >= 2 and data.get("snapshot_ops") != backend.num_operations:
        raise SnapshotError(
            f"snapshot inconsistent: stamped with {data.get('snapshot_ops')} "
            f"operations but the backend state holds {backend.num_operations}"
        )

    specs = [
        DiskSpec(
            capacity_blocks=entry["capacity_blocks"],
            bandwidth_blocks_per_round=entry["bandwidth_blocks_per_round"],
            model=entry["model"],
        )
        for entry in data["disks"]
    ]
    default = data["default_spec"]
    server = CMServer.from_backend(
        catalog,
        backend,
        specs,
        default_spec=DiskSpec(
            capacity_blocks=default["capacity_blocks"],
            bandwidth_blocks_per_round=default["bandwidth_blocks_per_round"],
            model=default["model"],
        ),
    )
    server.reshuffles = data["reshuffles"]
    return server


def _restore_backend(data: dict, version: int):
    """Build the placement backend a snapshot describes.

    Version 1/2 snapshots predate the backend field: they are SCADDAR by
    construction, restored by replaying the recorded operation log.
    """
    if version < 3:
        log = OperationLog.from_json(json.dumps(data["operation_log"]))
        mapper = ScaddarMapper(n0=log.n0, bits=data["bits"])
        for op in log:
            mapper.apply(op)
        return ScaddarBackend.from_mapper(mapper)
    entry = data["backend"]
    try:
        return backend_from_payload(entry["name"], entry["payload"])
    except UnknownBackendError as exc:
        raise SnapshotError(
            f"snapshot needs placement backend {entry['name']!r}, which "
            "this build does not register"
        ) from exc


def resume_server(
    snapshot: dict | str,
    journal: ScalingJournal | str,
) -> tuple[
    CMServer,
    Optional[PendingScale | PendingReshuffle],
    Optional[MigrationSession],
]:
    """Rebuild the exact mid-migration state after a crash.

    The snapshot provides the last quiescent state; the journal provides
    every scaling record written since.  Replay walks the journal in
    order:

    * operations already in the snapshot's log are verified and skipped;
    * **committed** operations are re-begun and their whole plan
      executed (block moves are deterministic per backend — the directory
      baseline's RNG state rides in its payload — so this lands every
      block exactly where the crashed process had put it);
    * **aborted** operations contributed nothing and are skipped;
    * an **open** operation (crash mid-migration) is re-begun, its
      journaled ``apply`` records re-executed, and the remainder handed
      back as a live session.

    Full redistributions (``reshuffle`` records) replay the same way:
    seed derivation is a pure function of ``(master_seed, object_id,
    seed_epoch)`` and the epoch rides in the snapshot, so re-beginning
    the reshuffle re-derives the crashed process's exact plan — which is
    then verified against the journaled one.  A committed reshuffle
    resets the scaling seq space (the backend log restarts), so journal
    records *older* than the snapshot's reshuffle count are skipped
    wholesale.

    Returns ``(server, pending, session)`` — ``pending``/``session`` are
    ``None`` when the journal ends quiescent, otherwise the in-flight
    operation (a :class:`PendingScale` or :class:`PendingReshuffle`) and
    a session holding exactly the not-yet-landed moves (execute it and
    call ``server.finish_scale(pending)`` /
    ``server.finish_reshuffle(pending)`` to complete the interrupted
    operation).  The journal is re-attached to the returned server, so
    completion is journaled like any other operation.

    Raises
    ------
    JournalError
        When the journal disagrees with the snapshot (wrong op at a
        sequence number, or a re-derived plan that does not match the
        journaled one) — a sign of mixed-up files, not a crash artifact.
    """
    if isinstance(journal, str):
        journal = ScalingJournal(journal)
    server = restore_server(snapshot)
    base_ops = server.backend.num_operations
    base_log = server.backend.log.operations

    records = journal.replay()
    # Everything up to and including the last reshuffle the snapshot
    # already reflects is baked into the restored state (the scaling seq
    # space restarted there): skip it wholesale.
    start = 0
    for i, record in enumerate(records):
        if (
            isinstance(record.op, ReshuffleOp)
            and not record.aborted
            and record.op.epoch <= server.reshuffles
        ):
            start = i + 1

    open_state: (
        tuple[PendingScale | PendingReshuffle, MigrationSession] | None
    ) = None
    for record in records[start:]:
        if record.aborted:
            continue  # begin + rollback = net nothing
        if isinstance(record.op, ReshuffleOp):
            if open_state is not None:
                raise JournalError(
                    "journal has records after an uncommitted operation"
                )
            if record.op.epoch != server.reshuffles + 1:
                raise JournalError(
                    f"journal reshuffle epoch={record.op.epoch} does not "
                    f"follow the {server.reshuffles} reshuffles restored "
                    "so far"
                )
            pending_r = server.begin_reshuffle()
            by_block = {m.block_id: m for m in pending_r.plan.moves}
            _verify_replayed_plan(server, record, by_block)
            if record.committed:
                for move in pending_r.plan.moves:
                    server.array.move(move.block_id, move.target_physical)
                server.finish_reshuffle(pending_r)
                # The reset restarted the scaling seq space: subsequent
                # scaling records replay against the fresh log.
                base_ops = 0
                base_log = server.backend.log.operations
                continue
            open_state = (
                pending_r,
                _session_for_remainder(server, journal, record, pending_r),
            )
            continue
        if record.seq <= base_ops:
            if base_log[record.seq - 1] != record.op:
                raise JournalError(
                    f"journal op seq={record.seq} is {record.op} but the "
                    f"snapshot log holds {base_log[record.seq - 1]}"
                )
            continue  # already reflected in the snapshot
        if open_state is not None:
            raise JournalError(
                "journal has records after an uncommitted operation"
            )
        if record.seq != server.backend.num_operations + 1:
            raise JournalError(
                f"journal op seq={record.seq} does not follow the "
                f"{server.backend.num_operations} operations restored so far"
            )
        pending = server.begin_scale(record.op)
        by_block = {m.block_id: m for m in pending.plan.moves}
        _verify_replayed_plan(server, record, by_block)
        if record.committed:
            for move in pending.plan.moves:
                server.array.move(move.block_id, move.target_physical)
            server.finish_scale(pending)
            continue
        # Crash mid-migration: re-execute exactly the journaled moves.
        open_state = (
            pending,
            _session_for_remainder(server, journal, record, pending),
        )

    server.attach_journal(journal)
    if open_state is None:
        return server, None, None
    return server, open_state[0], open_state[1]


def _session_for_remainder(
    server: CMServer,
    journal: ScalingJournal,
    record: OpJournalRecord,
    pending: PendingScale | PendingReshuffle,
) -> MigrationSession:
    """Re-execute the journaled ``apply`` records of an open operation
    and build a live session over exactly the moves that never landed."""
    by_block = {m.block_id: m for m in pending.plan.moves}
    applied = set()
    for block_id in record.applied:
        server.array.move(block_id, by_block[block_id].target_physical)
        applied.add(block_id)
    remaining = [m for m in pending.plan.moves if m.block_id not in applied]
    return MigrationSession(
        server.array,
        MigrationPlan(moves=tuple(remaining)),
        journal=journal,
        op_seq=pending.op_seq,
    )


def _verify_replayed_plan(
    server: CMServer,
    record: OpJournalRecord,
    by_block: dict,
) -> None:
    """Check the re-derived plan matches the journaled intent record."""
    if {m.block_id for m in record.plan} != set(by_block):
        raise JournalError(
            f"op seq={record.seq}: re-derived plan moves "
            f"{len(by_block)} blocks but the journal recorded "
            f"{len(record.plan)} different ones"
        )
    logical = {
        pid: i for i, pid in enumerate(server.array.physical_ids)
    }
    for journaled in record.plan:
        move = by_block[journaled.block_id]
        if (
            logical[move.source_physical] != journaled.source_logical
            or logical[move.target_physical] != journaled.target_logical
        ):
            raise JournalError(
                f"op seq={record.seq}: move of {journaled.block_id} "
                "re-derived with different endpoints than journaled"
            )
