"""Online scaling: redistribute while streams keep playing.

The paper's motivating requirement (Section 1): a CM service "cannot
afford to stop services to its customers in order to add, remove, or
upgrade the CM server disks".  :class:`OnlineScaler` interleaves the RF()
migration with the round scheduler — each round, migration only spends
the bandwidth streams left over on both endpoints of each move — and
reports whether any stream hiccupped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.operations import ScalingOp
from repro.server.cmserver import CMServer
from repro.server.faults import DiskDeathError
from repro.server.scheduler import RoundScheduler
from repro.storage.disk import DiskSpec
from repro.storage.migration import MigrationSession


@dataclass
class OnlineScaleReport:
    """Outcome of one online scaling operation.

    Attributes
    ----------
    op:
        The scaling operation performed.
    rounds:
        Scheduling rounds from begin to finish of the migration.
    blocks_moved:
        Physical transfers performed.
    hiccups:
        Stream reads that missed their round during the migration
        (0 = true zero-downtime scaling).
    moves_per_round:
        Migration progress per round.
    """

    op: ScalingOp
    rounds: int = 0
    blocks_moved: int = 0
    hiccups: int = 0
    moves_per_round: list[int] = field(default_factory=list)
    #: Injected transfer faults survived (0 without a fault injector).
    transient_faults: int = 0
    slow_transfers: int = 0


class StalledMigrationError(Exception):
    """Raised when streams saturate the disks so migration cannot finish."""


class OnlineScaler:
    """Drives a scaling operation concurrently with stream service.

    Parameters
    ----------
    server:
        The CM server to scale.
    scheduler:
        The round scheduler serving the server's streams (must target the
        same disk array).
    """

    def __init__(self, server: CMServer, scheduler: RoundScheduler):
        if scheduler.array is not server.array:
            raise ValueError("scheduler and server must share one disk array")
        self.server = server
        self.scheduler = scheduler

    def scale_online(
        self,
        op: ScalingOp,
        specs: Optional[list[DiskSpec]] = None,
        eps: Optional[float] = None,
        max_rounds: int = 100_000,
        stall_rounds: int = 1_000,
        injector=None,
    ) -> OnlineScaleReport:
        """Run one scaling operation to completion without stopping streams.

        Every round: serve all streams first, then spend each disk's
        leftover bandwidth on migration moves.  Raises
        :class:`StalledMigrationError` if ``stall_rounds`` consecutive
        rounds make no migration progress.

        When the server has a journal attached, every move is journaled
        (crash-resumable via ``resume_server``).  ``injector`` threads a
        :class:`~repro.server.faults.FaultInjector` into the migration:
        transient faults retry with backoff, slow disks stretch rounds,
        and a disk death propagates as
        :class:`~repro.server.faults.DiskDeathError` for the caller to
        escalate (``repro.server.recovery.escalate_disk_death``).
        """
        pending = self.server.begin_scale(op, specs=specs, eps=eps)
        session = MigrationSession(
            self.server.array,
            pending.plan,
            journal=self.server.journal,
            op_seq=pending.op_seq,
            injector=injector,
            obs=self.server.obs,
        )
        report = OnlineScaleReport(op=op)
        stalled = 0
        while not session.done:
            if report.rounds >= max_rounds:
                raise StalledMigrationError(
                    f"migration incomplete after {max_rounds} rounds; "
                    f"{session.remaining} moves remain"
                )
            round_report = self.scheduler.run_round()
            try:
                executed = session.step(round_report.spare_by_physical)
            except DiskDeathError as death:
                # Hand the caller everything escalation needs: the dead
                # disk, the interrupted operation, and the live session.
                death.pending = pending
                death.session = session
                raise
            report.rounds += 1
            report.hiccups += round_report.hiccups
            report.blocks_moved += len(executed)
            report.moves_per_round.append(len(executed))
            if executed:
                stalled = 0
            else:
                stalled += 1
                if stalled >= stall_rounds:
                    raise StalledMigrationError(
                        f"no migration progress for {stall_rounds} rounds; "
                        f"{session.remaining} moves remain (streams saturate "
                        "the endpoints)"
                    )
        self.server.finish_scale(pending)
        if injector is not None:
            report.transient_faults = injector.stats.transient_faults
            report.slow_transfers = injector.stats.slow_transfers
        return report
