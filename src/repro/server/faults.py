"""Fault tolerance: mirroring (Section 6) and deterministic fault injection.

The paper sketches a simple scheme: mirror every block "at a fixed offset
determined by a function f(Nj)", suggesting ``f(Nj) = Nj / 2``.  The
mirror of a block on logical disk ``D`` lives on
``(D + f(Nj)) mod Nj`` — a pure function of the primary location, so the
mirror needs no directory either, and the offset guarantees primary and
mirror sit on different disks whenever ``Nj >= 2``.

The second half of this module is the other side of the robustness coin:
:class:`FaultInjector`, a seeded, fully deterministic source of the
failures a real migration meets — transient transfer errors, disks that
respond a round late, and whole-disk death mid-migration.
:meth:`MigrationSession.step <repro.storage.migration.MigrationSession.step>`
consults it before every transfer; the chaos experiment
(``scaddar chaos``) drives scaling operations through it and checks that
no block is ever lost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.core.scaddar import ScaddarMapper
from repro.prng.generators import _mix64


class DataLossError(Exception):
    """Raised when both replicas of a block are on failed disks."""


class MirrorDegenerateError(DataLossError):
    """Raised when a mirror read would land on the primary's own disk.

    With ``Nj == 1`` the offset ``f(1) = 0`` collapses the replica pair
    onto a single disk; a "mirror read" would silently re-read the very
    disk being failed over.  Helpers raise this instead, so callers can
    tell *no redundancy exists* apart from *both replicas failed*.
    """


class TransientTransferError(Exception):
    """A transfer attempt failed but may succeed on retry."""


class TransferRetryExhaustedError(Exception):
    """A move kept failing past the bounded retry budget."""


class DiskDeathError(Exception):
    """A disk died mid-migration; carries the physical id."""

    def __init__(self, physical_id: int, message: str | None = None):
        self.physical_id = physical_id
        super().__init__(
            message or f"physical disk {physical_id} died mid-migration"
        )


def mirror_offset(num_disks: int) -> int:
    """The paper's suggested ``f(Nj) = Nj / 2`` (integer division).

    For ``num_disks >= 2`` the offset is >= 1, so the mirror never lands
    on the primary's disk.
    """
    if num_disks <= 0:
        raise ValueError(f"disk count must be >= 1, got {num_disks}")
    return num_disks // 2


@dataclass(frozen=True)
class ReplicaPair:
    """Primary and mirror logical disks of one block."""

    primary: int
    mirror: int


class MirroredPlacement:
    """SCADDAR placement with offset mirroring on top.

    Parameters
    ----------
    mapper:
        The SCADDAR mapper computing primary locations.

    Notes
    -----
    With ``Nj = 1`` there is nowhere else to put a mirror; the pair
    degenerates to the primary disk and single-failure tolerance is lost
    (as it must be).
    """

    def __init__(self, mapper: ScaddarMapper):
        self.mapper = mapper

    @property
    def num_disks(self) -> int:
        """Current logical disk count."""
        return self.mapper.current_disks

    def replica_pair(self, x0: int) -> ReplicaPair:
        """Primary and mirror logical disks for a block."""
        n = self.num_disks
        primary = self.mapper.disk_of(x0)
        return ReplicaPair(
            primary=primary, mirror=(primary + mirror_offset(n)) % n
        )

    def mirror_disk(self, x0: int) -> int:
        """The mirror's logical disk, for a failover read.

        Raises
        ------
        MirrorDegenerateError
            When the pair is degenerate (``Nj == 1``): there is no second
            copy, and "reading the mirror" would silently re-read the
            primary's own disk.
        """
        pair = self.replica_pair(x0)
        if pair.mirror == pair.primary:
            raise MirrorDegenerateError(
                f"block (x0={x0}) has no distinct mirror: f({self.num_disks})"
                f" = {mirror_offset(self.num_disks)} lands the mirror on the"
                f" primary disk {pair.primary}"
            )
        return pair.mirror

    def read_disk(self, x0: int, failed: frozenset[int] | set[int] = frozenset()) -> int:
        """Disk to read the block from, failing over to the mirror.

        Raises
        ------
        MirrorDegenerateError
            If the primary failed and the "mirror" is the primary's own
            disk (``Nj == 1`` — no redundancy ever existed).
        DataLossError
            If both replicas are on failed disks.
        """
        pair = self.replica_pair(x0)
        if pair.primary not in failed:
            return pair.primary
        if pair.mirror == pair.primary:
            raise MirrorDegenerateError(
                f"block (x0={x0}) lost disk {pair.primary} and has no "
                f"distinct mirror (single-disk array)"
            )
        if pair.mirror not in failed:
            return pair.mirror
        raise DataLossError(
            f"both replicas of block (x0={x0}) are on failed disks "
            f"{sorted(failed)}"
        )

    def tolerates_failure(self, x0: int, disk: int) -> bool:
        """Whether the block survives the failure of one given disk."""
        pair = self.replica_pair(x0)
        return not (pair.primary == disk and pair.mirror == disk)

    def failover_load(
        self, x0s: list[int], failed_disk: int
    ) -> dict[int, int]:
        """Read load per logical disk when one disk has failed.

        Every block whose primary is the failed disk is served by its
        mirror; all other blocks read from their primary.  The interesting
        property (checked by the bench): the failed disk's load lands on a
        *single* partner disk under the fixed-offset scheme — the
        simplicity/skew trade-off the paper's future-work paragraph
        gestures at.
        """
        loads: dict[int, int] = {d: 0 for d in range(self.num_disks)}
        for x0 in x0s:
            loads[self.read_disk(x0, failed={failed_disk})] += 1
        return loads


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------

#: Transfer/read outcomes the injector can decide.
OUTCOME_OK = "ok"
OUTCOME_TRANSIENT = "transient"
OUTCOME_SLOW = "slow"
OUTCOME_DEAD = "dead"


def derive_seed(master: int, salt: int) -> int:
    """Derive an independent child seed from one master seed.

    Every injector (and every independent RNG stream inside one) in an
    experiment should be seeded through this, so a single ``--seed`` flag
    reproduces the whole run bit-for-bit while the streams stay
    decorrelated (adding read faults never perturbs the transfer-fault
    schedule, and vice versa).
    """
    return _mix64((master & _MASK64) ^ _mix64((salt & _MASK64) ^ 0x5EED_CAB1E))


_MASK64 = (1 << 64) - 1


@dataclass
class FaultStats:
    """Everything the injector did, for deterministic chaos reports."""

    attempts: int = 0
    transient_faults: int = 0
    slow_transfers: int = 0
    mirror_reads: int = 0
    deaths: list[int] = field(default_factory=list)
    #: Read-path counters (serve-time faults; transfers count above).
    read_attempts: int = 0
    read_faults: int = 0
    slow_reads: int = 0
    dead_reads: int = 0
    scrub_divergences: int = 0


class FaultInjector:
    """Seeded, deterministic fault source for migration transfers.

    Parameters
    ----------
    seed:
        RNG seed; identical seeds produce identical fault schedules,
        making every chaos run exactly reproducible.
    transient_rate:
        Per-attempt probability of a :class:`TransientTransferError`
        (the transfer consumed bandwidth but the block did not land).
    slow_rate:
        Per-attempt probability the transfer stretches past the round
        boundary: budget is consumed, the move retries next round at no
        penalty (a slow disk, not a failure).
    death_at_transfer:
        When set, the N-th transfer attempt (1-based) kills one endpoint
        of that move — ``death_victim`` picks which — modelling a disk
        dying under migration load.
    death_victim:
        ``"source"`` or ``"target"``.
    read_error_rate:
        Per-read probability of a transient read error at *serve* time
        (the read consumed bandwidth but returned garbage; the failover
        planner retries or falls back to a replica).
    read_slow_rate:
        Per-read probability the read stretches past the round boundary:
        bandwidth is consumed, the data arrives next round, and the
        scheduler counts the read as *queued* (deferred, not a hiccup).
    death_at_read:
        When set, the N-th read attempt (1-based) kills the disk being
        read — a disk dying under serving load.
    scrub_divergence_rate:
        Per-scrub-check probability that a block's primary and mirror
        copies disagree (bit rot); the scrubber read-repairs it.

    The read path and the scrub path draw from RNG streams derived from
    the seed via :func:`derive_seed`, independent of the transfer stream
    — turning read faults on never perturbs a migration's fault
    schedule, so chaos runs stay bit-reproducible as features compose.

    Notes
    -----
    Once a disk is dead, any move *targeting* it raises
    :class:`DiskDeathError`.  Moves *sourced* from it also raise, unless
    :meth:`enable_mirror_reads` was called — the failure-as-removal
    escalation (:func:`repro.server.recovery.escalate_disk_death`) turns
    that on after proving a surviving replica exists, and each such
    transfer is counted in ``stats.mirror_reads``.
    """

    def __init__(
        self,
        seed: int = 0,
        transient_rate: float = 0.0,
        slow_rate: float = 0.0,
        death_at_transfer: Optional[int] = None,
        death_victim: str = "source",
        read_error_rate: float = 0.0,
        read_slow_rate: float = 0.0,
        death_at_read: Optional[int] = None,
        scrub_divergence_rate: float = 0.0,
    ):
        if not 0.0 <= transient_rate < 1.0:
            raise ValueError(f"transient_rate must be in [0, 1), got {transient_rate}")
        if not 0.0 <= slow_rate < 1.0:
            raise ValueError(f"slow_rate must be in [0, 1), got {slow_rate}")
        if death_victim not in ("source", "target"):
            raise ValueError(f"death_victim must be 'source' or 'target', got {death_victim!r}")
        if death_at_transfer is not None and death_at_transfer <= 0:
            raise ValueError(f"death_at_transfer must be >= 1, got {death_at_transfer}")
        if not 0.0 <= read_error_rate < 1.0:
            raise ValueError(f"read_error_rate must be in [0, 1), got {read_error_rate}")
        if not 0.0 <= read_slow_rate < 1.0:
            raise ValueError(f"read_slow_rate must be in [0, 1), got {read_slow_rate}")
        if death_at_read is not None and death_at_read <= 0:
            raise ValueError(f"death_at_read must be >= 1, got {death_at_read}")
        if not 0.0 <= scrub_divergence_rate < 1.0:
            raise ValueError(
                f"scrub_divergence_rate must be in [0, 1), got {scrub_divergence_rate}"
            )
        self._rng = random.Random(seed)
        self._read_rng = random.Random(derive_seed(seed, 1))
        self._scrub_rng = random.Random(derive_seed(seed, 2))
        self.transient_rate = transient_rate
        self.slow_rate = slow_rate
        self.death_at_transfer = death_at_transfer
        self.death_victim = death_victim
        self.read_error_rate = read_error_rate
        self.read_slow_rate = read_slow_rate
        self.death_at_read = death_at_read
        self.scrub_divergence_rate = scrub_divergence_rate
        self.dead: set[int] = set()
        self.stats = FaultStats()
        self._mirror_reads_allowed = False

    def enable_mirror_reads(self) -> None:
        """Allow transfers sourced from dead disks (replica-served)."""
        self._mirror_reads_allowed = True

    def kill(self, physical_id: int) -> None:
        """Kill a disk outright (scheduled serve-time death)."""
        if physical_id not in self.dead:
            self.dead.add(physical_id)
            self.stats.deaths.append(physical_id)

    def revive(self, physical_id: int) -> None:
        """Install a replacement drive in a dead disk's slot.

        The slot answers reads again, but callers must keep routing
        around it until the scrubber has re-verified its contents
        (``rebuilding`` -> ``healthy`` in the health monitor).
        """
        self.dead.discard(physical_id)

    def read_attempt(self, physical_id: int) -> str:
        """Decide one serve-time read attempt's fate.

        Returns ``"ok"`` / ``"transient"`` / ``"slow"`` / ``"dead"``; may
        kill the disk when this attempt is the scheduled read death.
        Unlike :meth:`attempt`, a dead disk is reported as an outcome,
        not an exception — the serving path degrades, it does not abort.
        """
        self.stats.read_attempts += 1
        if (
            self.death_at_read is not None
            and self.stats.read_attempts == self.death_at_read
            and physical_id not in self.dead
        ):
            self.kill(physical_id)
        if physical_id in self.dead:
            self.stats.dead_reads += 1
            return OUTCOME_DEAD
        draw = self._read_rng.random()
        if draw < self.read_error_rate:
            self.stats.read_faults += 1
            return OUTCOME_TRANSIENT
        if draw < self.read_error_rate + self.read_slow_rate:
            self.stats.slow_reads += 1
            return OUTCOME_SLOW
        return OUTCOME_OK

    def scrub_check(self) -> bool:
        """One scrub verification: True = the replicas diverged."""
        if self._scrub_rng.random() < self.scrub_divergence_rate:
            self.stats.scrub_divergences += 1
            return True
        return False

    def check_alive(self, source_physical: int, target_physical: int) -> None:
        """Raise :class:`DiskDeathError` if the move touches a dead disk.

        Called before budget is consumed, so a blocked move costs
        nothing.  Mirror-read mode exempts dead *sources* only — nothing
        can ever be written to a dead disk.
        """
        if target_physical in self.dead:
            raise DiskDeathError(target_physical)
        if source_physical in self.dead:
            if self._mirror_reads_allowed:
                self.stats.mirror_reads += 1
                return
            raise DiskDeathError(source_physical)

    def attempt(self, source_physical: int, target_physical: int) -> str:
        """Decide one transfer attempt's fate; may kill a disk.

        Returns one of ``"ok"`` / ``"transient"`` / ``"slow"``, or raises
        :class:`DiskDeathError` when this attempt is the scheduled death.
        """
        self.stats.attempts += 1
        if (
            self.death_at_transfer is not None
            and self.stats.attempts == self.death_at_transfer
        ):
            victim = (
                source_physical if self.death_victim == "source" else target_physical
            )
            self.dead.add(victim)
            self.stats.deaths.append(victim)
            raise DiskDeathError(victim)
        draw = self._rng.random()
        if draw < self.transient_rate:
            self.stats.transient_faults += 1
            return OUTCOME_TRANSIENT
        if draw < self.transient_rate + self.slow_rate:
            self.stats.slow_transfers += 1
            return OUTCOME_SLOW
        return OUTCOME_OK
