"""Fault tolerance by mirroring (Section 6).

The paper sketches a simple scheme: mirror every block "at a fixed offset
determined by a function f(Nj)", suggesting ``f(Nj) = Nj / 2``.  The
mirror of a block on logical disk ``D`` lives on
``(D + f(Nj)) mod Nj`` — a pure function of the primary location, so the
mirror needs no directory either, and the offset guarantees primary and
mirror sit on different disks whenever ``Nj >= 2``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scaddar import ScaddarMapper


class DataLossError(Exception):
    """Raised when both replicas of a block are on failed disks."""


def mirror_offset(num_disks: int) -> int:
    """The paper's suggested ``f(Nj) = Nj / 2`` (integer division).

    For ``num_disks >= 2`` the offset is >= 1, so the mirror never lands
    on the primary's disk.
    """
    if num_disks <= 0:
        raise ValueError(f"disk count must be >= 1, got {num_disks}")
    return num_disks // 2


@dataclass(frozen=True)
class ReplicaPair:
    """Primary and mirror logical disks of one block."""

    primary: int
    mirror: int


class MirroredPlacement:
    """SCADDAR placement with offset mirroring on top.

    Parameters
    ----------
    mapper:
        The SCADDAR mapper computing primary locations.

    Notes
    -----
    With ``Nj = 1`` there is nowhere else to put a mirror; the pair
    degenerates to the primary disk and single-failure tolerance is lost
    (as it must be).
    """

    def __init__(self, mapper: ScaddarMapper):
        self.mapper = mapper

    @property
    def num_disks(self) -> int:
        """Current logical disk count."""
        return self.mapper.current_disks

    def replica_pair(self, x0: int) -> ReplicaPair:
        """Primary and mirror logical disks for a block."""
        n = self.num_disks
        primary = self.mapper.disk_of(x0)
        return ReplicaPair(
            primary=primary, mirror=(primary + mirror_offset(n)) % n
        )

    def read_disk(self, x0: int, failed: frozenset[int] | set[int] = frozenset()) -> int:
        """Disk to read the block from, failing over to the mirror.

        Raises
        ------
        DataLossError
            If both replicas are on failed disks.
        """
        pair = self.replica_pair(x0)
        if pair.primary not in failed:
            return pair.primary
        if pair.mirror not in failed:
            return pair.mirror
        raise DataLossError(
            f"both replicas of block (x0={x0}) are on failed disks "
            f"{sorted(failed)}"
        )

    def tolerates_failure(self, x0: int, disk: int) -> bool:
        """Whether the block survives the failure of one given disk."""
        pair = self.replica_pair(x0)
        return not (pair.primary == disk and pair.mirror == disk)

    def failover_load(
        self, x0s: list[int], failed_disk: int
    ) -> dict[int, int]:
        """Read load per logical disk when one disk has failed.

        Every block whose primary is the failed disk is served by its
        mirror; all other blocks read from their primary.  The interesting
        property (checked by the bench): the failed disk's load lands on a
        *single* partner disk under the fixed-offset scheme — the
        simplicity/skew trade-off the paper's future-work paragraph
        gestures at.
        """
        loads: dict[int, int] = {d: 0 for d in range(self.num_disks)}
        for x0 in x0s:
            loads[self.read_disk(x0, failed={failed_disk})] += 1
        return loads
