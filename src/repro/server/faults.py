"""Fault tolerance: mirroring (Section 6) and deterministic fault injection.

The paper sketches a simple scheme: mirror every block "at a fixed offset
determined by a function f(Nj)", suggesting ``f(Nj) = Nj / 2``.  The
mirror of a block on logical disk ``D`` lives on
``(D + f(Nj)) mod Nj`` — a pure function of the primary location, so the
mirror needs no directory either, and the offset guarantees primary and
mirror sit on different disks whenever ``Nj >= 2``.

The second half of this module is the other side of the robustness coin:
:class:`FaultInjector`, a seeded, fully deterministic source of the
failures a real migration meets — transient transfer errors, disks that
respond a round late, and whole-disk death mid-migration.
:meth:`MigrationSession.step <repro.storage.migration.MigrationSession.step>`
consults it before every transfer; the chaos experiment
(``scaddar chaos``) drives scaling operations through it and checks that
no block is ever lost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.core.scaddar import ScaddarMapper


class DataLossError(Exception):
    """Raised when both replicas of a block are on failed disks."""


class TransientTransferError(Exception):
    """A transfer attempt failed but may succeed on retry."""


class TransferRetryExhaustedError(Exception):
    """A move kept failing past the bounded retry budget."""


class DiskDeathError(Exception):
    """A disk died mid-migration; carries the physical id."""

    def __init__(self, physical_id: int, message: str | None = None):
        self.physical_id = physical_id
        super().__init__(
            message or f"physical disk {physical_id} died mid-migration"
        )


def mirror_offset(num_disks: int) -> int:
    """The paper's suggested ``f(Nj) = Nj / 2`` (integer division).

    For ``num_disks >= 2`` the offset is >= 1, so the mirror never lands
    on the primary's disk.
    """
    if num_disks <= 0:
        raise ValueError(f"disk count must be >= 1, got {num_disks}")
    return num_disks // 2


@dataclass(frozen=True)
class ReplicaPair:
    """Primary and mirror logical disks of one block."""

    primary: int
    mirror: int


class MirroredPlacement:
    """SCADDAR placement with offset mirroring on top.

    Parameters
    ----------
    mapper:
        The SCADDAR mapper computing primary locations.

    Notes
    -----
    With ``Nj = 1`` there is nowhere else to put a mirror; the pair
    degenerates to the primary disk and single-failure tolerance is lost
    (as it must be).
    """

    def __init__(self, mapper: ScaddarMapper):
        self.mapper = mapper

    @property
    def num_disks(self) -> int:
        """Current logical disk count."""
        return self.mapper.current_disks

    def replica_pair(self, x0: int) -> ReplicaPair:
        """Primary and mirror logical disks for a block."""
        n = self.num_disks
        primary = self.mapper.disk_of(x0)
        return ReplicaPair(
            primary=primary, mirror=(primary + mirror_offset(n)) % n
        )

    def read_disk(self, x0: int, failed: frozenset[int] | set[int] = frozenset()) -> int:
        """Disk to read the block from, failing over to the mirror.

        Raises
        ------
        DataLossError
            If both replicas are on failed disks.
        """
        pair = self.replica_pair(x0)
        if pair.primary not in failed:
            return pair.primary
        if pair.mirror not in failed:
            return pair.mirror
        raise DataLossError(
            f"both replicas of block (x0={x0}) are on failed disks "
            f"{sorted(failed)}"
        )

    def tolerates_failure(self, x0: int, disk: int) -> bool:
        """Whether the block survives the failure of one given disk."""
        pair = self.replica_pair(x0)
        return not (pair.primary == disk and pair.mirror == disk)

    def failover_load(
        self, x0s: list[int], failed_disk: int
    ) -> dict[int, int]:
        """Read load per logical disk when one disk has failed.

        Every block whose primary is the failed disk is served by its
        mirror; all other blocks read from their primary.  The interesting
        property (checked by the bench): the failed disk's load lands on a
        *single* partner disk under the fixed-offset scheme — the
        simplicity/skew trade-off the paper's future-work paragraph
        gestures at.
        """
        loads: dict[int, int] = {d: 0 for d in range(self.num_disks)}
        for x0 in x0s:
            loads[self.read_disk(x0, failed={failed_disk})] += 1
        return loads


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------

#: Transfer outcomes the injector can decide.
OUTCOME_OK = "ok"
OUTCOME_TRANSIENT = "transient"
OUTCOME_SLOW = "slow"


@dataclass
class FaultStats:
    """Everything the injector did, for deterministic chaos reports."""

    attempts: int = 0
    transient_faults: int = 0
    slow_transfers: int = 0
    mirror_reads: int = 0
    deaths: list[int] = field(default_factory=list)


class FaultInjector:
    """Seeded, deterministic fault source for migration transfers.

    Parameters
    ----------
    seed:
        RNG seed; identical seeds produce identical fault schedules,
        making every chaos run exactly reproducible.
    transient_rate:
        Per-attempt probability of a :class:`TransientTransferError`
        (the transfer consumed bandwidth but the block did not land).
    slow_rate:
        Per-attempt probability the transfer stretches past the round
        boundary: budget is consumed, the move retries next round at no
        penalty (a slow disk, not a failure).
    death_at_transfer:
        When set, the N-th transfer attempt (1-based) kills one endpoint
        of that move — ``death_victim`` picks which — modelling a disk
        dying under migration load.
    death_victim:
        ``"source"`` or ``"target"``.

    Notes
    -----
    Once a disk is dead, any move *targeting* it raises
    :class:`DiskDeathError`.  Moves *sourced* from it also raise, unless
    :meth:`enable_mirror_reads` was called — the failure-as-removal
    escalation (:func:`repro.server.recovery.escalate_disk_death`) turns
    that on after proving a surviving replica exists, and each such
    transfer is counted in ``stats.mirror_reads``.
    """

    def __init__(
        self,
        seed: int = 0,
        transient_rate: float = 0.0,
        slow_rate: float = 0.0,
        death_at_transfer: Optional[int] = None,
        death_victim: str = "source",
    ):
        if not 0.0 <= transient_rate < 1.0:
            raise ValueError(f"transient_rate must be in [0, 1), got {transient_rate}")
        if not 0.0 <= slow_rate < 1.0:
            raise ValueError(f"slow_rate must be in [0, 1), got {slow_rate}")
        if death_victim not in ("source", "target"):
            raise ValueError(f"death_victim must be 'source' or 'target', got {death_victim!r}")
        if death_at_transfer is not None and death_at_transfer <= 0:
            raise ValueError(f"death_at_transfer must be >= 1, got {death_at_transfer}")
        self._rng = random.Random(seed)
        self.transient_rate = transient_rate
        self.slow_rate = slow_rate
        self.death_at_transfer = death_at_transfer
        self.death_victim = death_victim
        self.dead: set[int] = set()
        self.stats = FaultStats()
        self._mirror_reads_allowed = False

    def enable_mirror_reads(self) -> None:
        """Allow transfers sourced from dead disks (replica-served)."""
        self._mirror_reads_allowed = True

    def check_alive(self, source_physical: int, target_physical: int) -> None:
        """Raise :class:`DiskDeathError` if the move touches a dead disk.

        Called before budget is consumed, so a blocked move costs
        nothing.  Mirror-read mode exempts dead *sources* only — nothing
        can ever be written to a dead disk.
        """
        if target_physical in self.dead:
            raise DiskDeathError(target_physical)
        if source_physical in self.dead:
            if self._mirror_reads_allowed:
                self.stats.mirror_reads += 1
                return
            raise DiskDeathError(source_physical)

    def attempt(self, source_physical: int, target_physical: int) -> str:
        """Decide one transfer attempt's fate; may kill a disk.

        Returns one of ``"ok"`` / ``"transient"`` / ``"slow"``, or raises
        :class:`DiskDeathError` when this attempt is the scheduled death.
        """
        self.stats.attempts += 1
        if (
            self.death_at_transfer is not None
            and self.stats.attempts == self.death_at_transfer
        ):
            victim = (
                source_physical if self.death_victim == "source" else target_physical
            )
            self.dead.add(victim)
            self.stats.deaths.append(victim)
            raise DiskDeathError(victim)
        draw = self._rng.random()
        if draw < self.transient_rate:
            self.stats.transient_faults += 1
            return OUTCOME_TRANSIENT
        if draw < self.transient_rate + self.slow_rate:
            self.stats.slow_transfers += 1
            return OUTCOME_SLOW
        return OUTCOME_OK
