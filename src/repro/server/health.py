"""Per-disk health: state machine, circuit breakers, and the scrubber.

The serving path's view of the array's disks.  Each physical disk walks
a four-state machine::

    healthy --breaker trips--> suspect --probe succeeds--> healthy
    healthy/suspect --death--> dead --replacement installed--> rebuilding
    rebuilding --scrub completes--> healthy

*Suspect* is reversible (a flaky cable, a firmware stall): a per-disk
circuit breaker trips after ``trip_after`` consecutive read failures,
blocks further reads for a cooldown that doubles on every re-trip
(capped exponential backoff), then lets exactly one *half-open* probe
through; success closes the breaker, failure re-opens it.  *Dead* is
not: only installing a replacement (``begin_rebuild``) leaves it, and
the replacement serves no reads until the :class:`Scrubber` has
re-verified every resident block and promoted it back to *healthy*.

The scrubber also runs in steady state: it walks the whole block
population at a bounded rate per round, verifies primary/mirror
agreement (divergence is injected by
:meth:`~repro.server.faults.FaultInjector.scrub_check`), and
read-repairs what it finds — the background repair loop that keeps
"degraded" a transient condition instead of a ratchet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, Optional

from repro.storage.array import DiskArray
from repro.storage.block import BlockId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import ObsHandle
    from repro.server.faults import FaultInjector


class DiskHealth(Enum):
    """Serving-path health of one physical disk."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DEAD = "dead"
    REBUILDING = "rebuilding"


class CircuitBreaker:
    """Trip-after-K breaker with capped exponential cooldown.

    Parameters
    ----------
    trip_after:
        Consecutive failures that open the breaker.
    cooldown_rounds:
        Rounds the breaker stays open before allowing one half-open
        probe.  Doubles on every consecutive re-trip, capped at
        ``max_cooldown_rounds`` — the read path's exponential backoff.
    max_cooldown_rounds:
        Cooldown growth cap.
    """

    def __init__(
        self,
        trip_after: int = 3,
        cooldown_rounds: int = 4,
        max_cooldown_rounds: int = 64,
    ):
        if trip_after < 1:
            raise ValueError(f"trip_after must be >= 1, got {trip_after}")
        if cooldown_rounds < 1:
            raise ValueError(
                f"cooldown_rounds must be >= 1, got {cooldown_rounds}"
            )
        if max_cooldown_rounds < cooldown_rounds:
            raise ValueError(
                f"max_cooldown_rounds {max_cooldown_rounds} < "
                f"cooldown_rounds {cooldown_rounds}"
            )
        self.trip_after = trip_after
        self.base_cooldown = cooldown_rounds
        self.max_cooldown = max_cooldown_rounds
        self.consecutive_failures = 0
        self.trips = 0
        self._open_since: Optional[int] = None
        self._cooldown = cooldown_rounds
        self._probing = False

    @property
    def is_open(self) -> bool:
        """Whether the breaker currently blocks reads."""
        return self._open_since is not None

    @property
    def is_quiescent(self) -> bool:
        """Closed, with no partial failure streak and the base cooldown.

        On a quiescent breaker ``allows()`` is True and
        ``record_success()`` changes no state — the property the
        vectorized degraded path relies on to serve a disk's reads
        wholesale without touching its breaker per read.
        """
        return (
            self._open_since is None
            and self.consecutive_failures == 0
            and self._cooldown == self.base_cooldown
            and not self._probing
        )

    @property
    def current_cooldown(self) -> int:
        """Rounds the breaker waits before its next half-open probe.

        Starts at ``base_cooldown``, doubles on every failed half-open
        probe, caps at ``max_cooldown``, and resets to the base on any
        success — the property the backoff Hypothesis test pins.
        """
        return self._cooldown

    def allows(self, round_index: int) -> bool:
        """Whether a read may be attempted this round.

        Open breakers admit exactly one probe per round once the
        cooldown has elapsed (the half-open state).
        """
        if self._open_since is None:
            return True
        if round_index - self._open_since < self._cooldown:
            return False
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        """A read succeeded: close the breaker, reset the backoff."""
        self.consecutive_failures = 0
        self._open_since = None
        self._cooldown = self.base_cooldown
        self._probing = False

    def record_failure(self, round_index: int) -> bool:
        """A read failed; returns True when this failure trips the
        breaker (closed -> open, or a half-open probe re-opening it)."""
        self.consecutive_failures += 1
        if self._open_since is not None:
            # A failed half-open probe: re-open with doubled cooldown.
            self.trips += 1
            self._open_since = round_index
            self._cooldown = min(self._cooldown * 2, self.max_cooldown)
            self._probing = False
            return True
        if self.consecutive_failures >= self.trip_after:
            self.trips += 1
            self._open_since = round_index
            self._probing = False
            return True
        return False

    def new_round(self) -> None:
        """Reset the one-probe-per-round latch."""
        self._probing = False


class HealthTransitionError(Exception):
    """Raised on an illegal health-state transition."""


class DiskHealthMonitor:
    """Tracks every disk's health state and circuit breaker.

    Parameters
    ----------
    array:
        The disk array being monitored (new disks are picked up lazily).
    trip_after / cooldown_rounds / max_cooldown_rounds:
        Breaker tuning, applied to every disk.
    obs:
        Optional observability handle; state transitions emit
        ``health.transition`` events, breaker trips ``breaker.trip``
        (with the post-trip cooldown) and closing probes
        ``breaker.probe``.
    """

    def __init__(
        self,
        array: DiskArray,
        trip_after: int = 3,
        cooldown_rounds: int = 4,
        max_cooldown_rounds: int = 64,
        obs: Optional["ObsHandle"] = None,
    ):
        from repro.obs import NULL_OBS

        self.array = array
        self._trip_after = trip_after
        self._cooldown = cooldown_rounds
        self._max_cooldown = max_cooldown_rounds
        self.obs = obs if obs is not None else NULL_OBS
        self._states: dict[int, DiskHealth] = {}
        self._breakers: dict[int, CircuitBreaker] = {}
        #: Cumulative state-transition log: (physical, from, to).
        self.transitions: list[tuple[int, DiskHealth, DiskHealth]] = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def state(self, physical_id: int) -> DiskHealth:
        """Current health state of a disk (healthy until told otherwise)."""
        return self._states.get(physical_id, DiskHealth.HEALTHY)

    def breaker(self, physical_id: int) -> CircuitBreaker:
        """The disk's circuit breaker (created on first touch)."""
        breaker = self._breakers.get(physical_id)
        if breaker is None:
            breaker = CircuitBreaker(
                self._trip_after, self._cooldown, self._max_cooldown
            )
            self._breakers[physical_id] = breaker
        return breaker

    def is_readable(self, physical_id: int, round_index: int) -> bool:
        """Whether the serving path may read this disk this round.

        Dead and rebuilding disks never serve; suspect disks serve only
        the breaker's half-open probe.
        """
        state = self.state(physical_id)
        if state in (DiskHealth.DEAD, DiskHealth.REBUILDING):
            return False
        return self.breaker(physical_id).allows(round_index)

    def serves_unimpeded(self, physical_id: int) -> bool:
        """Whether a successful read from this disk needs no per-read
        health machinery this round.

        True when the disk is healthy and its breaker (if one was ever
        created) is quiescent: ``is_readable`` would be True and
        ``observe_success`` would be a state no-op, so the vectorized
        degraded path can serve all of the disk's primary reads in one
        batch.  Deliberately does *not* create a breaker.
        """
        if self.state(physical_id) is not DiskHealth.HEALTHY:
            return False
        breaker = self._breakers.get(physical_id)
        return breaker is None or breaker.is_quiescent

    def snapshot(self) -> dict[int, str]:
        """Health state of every disk currently in the array."""
        return {
            pid: self.state(pid).value for pid in self.array.physical_ids
        }

    def disks_in(self, state: DiskHealth) -> list[int]:
        """Physical ids currently in the given state, sorted."""
        return sorted(
            pid
            for pid in self.array.physical_ids
            if self.state(pid) is state
        )

    # ------------------------------------------------------------------
    # Observations / transitions
    # ------------------------------------------------------------------
    def observe_success(self, physical_id: int) -> None:
        """A read from the disk succeeded (closes the breaker; a suspect
        disk whose probe succeeded returns to healthy)."""
        breaker = self.breaker(physical_id)
        was_open = breaker.is_open
        breaker.record_success()
        if was_open and self.obs.enabled:
            self.obs.event(
                "breaker.probe", disk=self._disk_label(physical_id), ok=True
            )
        if self.state(physical_id) is DiskHealth.SUSPECT:
            self._transition(physical_id, DiskHealth.HEALTHY)

    def observe_failure(self, physical_id: int, round_index: int) -> None:
        """A read from the disk failed; trips the breaker after K in a
        row, demoting the disk to suspect."""
        breaker = self.breaker(physical_id)
        tripped = breaker.record_failure(round_index)
        if tripped and self.obs.enabled:
            self.obs.event(
                "breaker.trip",
                disk=self._disk_label(physical_id),
                round=round_index,
                trips=breaker.trips,
                cooldown=breaker.current_cooldown,
            )
        if tripped and self.state(physical_id) is DiskHealth.HEALTHY:
            self._transition(physical_id, DiskHealth.SUSPECT)

    def mark_dead(self, physical_id: int) -> None:
        """The disk died (whole-disk failure at serve time)."""
        if self.state(physical_id) is not DiskHealth.DEAD:
            self._transition(physical_id, DiskHealth.DEAD)

    def begin_rebuild(self, physical_id: int) -> None:
        """A replacement drive was installed in a dead disk's slot; the
        scrubber now owns driving it back to healthy."""
        if self.state(physical_id) is not DiskHealth.DEAD:
            raise HealthTransitionError(
                f"disk {physical_id} is {self.state(physical_id).value}, "
                "not dead; only dead disks can begin rebuilding"
            )
        self._transition(physical_id, DiskHealth.REBUILDING)

    def mark_healthy(self, physical_id: int) -> None:
        """Scrub complete: the rebuilding (or suspect) disk is whole."""
        state = self.state(physical_id)
        if state is DiskHealth.DEAD:
            raise HealthTransitionError(
                f"disk {physical_id} is dead; install a replacement "
                "(begin_rebuild) before marking it healthy"
            )
        breaker = self.breaker(physical_id)
        breaker.record_success()
        if state is not DiskHealth.HEALTHY:
            self._transition(physical_id, DiskHealth.HEALTHY)

    def new_round(self) -> None:
        """Advance per-round breaker state (one half-open probe each)."""
        for breaker in self._breakers.values():
            breaker.new_round()

    def _disk_label(self, physical_id: int) -> int:
        """The disk's logical position, for event payloads.

        Physical ids come from a process-global counter, so two seeded
        runs in one process get different raw ids; the logical position
        is seed-stable, keeping ``deterministic_view`` comparisons exact.
        Falls back to -1 for a disk no longer in the array.
        """
        try:
            return self.array.logical_of(physical_id)
        except KeyError:
            return -1

    def _transition(self, physical_id: int, to: DiskHealth) -> None:
        state = self.state(physical_id)
        self.transitions.append((physical_id, state, to))
        self._states[physical_id] = to
        if self.obs.enabled:
            self.obs.event(
                "health.transition",
                disk=self._disk_label(physical_id),
                old=state.value,
                new=to.value,
            )


@dataclass
class ScrubReport:
    """What one scrub round did."""

    round_index: int
    #: Background verifications performed (primary/mirror comparisons).
    checked: int = 0
    #: Divergent blocks read-repaired.
    repaired: int = 0
    #: Blocks copied onto rebuilding disks this round.
    rebuilt_blocks: int = 0
    #: Disks promoted rebuilding -> healthy this round.
    completed_disks: list[int] = field(default_factory=list)


class Scrubber:
    """Background verify/repair loop, bounded blocks per round.

    Two jobs, rebuild first:

    1. **Rebuild** — for every ``rebuilding`` disk, re-copy up to the
       round's budget of its resident blocks from their surviving
       replicas; when the whole inventory is re-verified the disk is
       promoted to ``healthy``.
    2. **Patrol** — spend any leftover budget walking the global block
       population in block-id order, comparing primary and mirror copies
       (the injector decides divergence) and read-repairing mismatches.

    Parameters
    ----------
    array:
        The disk array being scrubbed.
    monitor:
        The health monitor (the scrubber drives its
        ``rebuilding -> healthy`` edge).
    rate_per_round:
        Max blocks touched per round (rebuild copies + patrol checks) —
        the knob that keeps scrubbing from starving stream service.
    injector:
        Optional fault injector supplying deterministic divergence.
    on_repair:
        Optional callback ``(block_id) -> None`` invoked per repair
        (metrics hooks).
    """

    def __init__(
        self,
        array: DiskArray,
        monitor: DiskHealthMonitor,
        rate_per_round: int = 8,
        injector: Optional["FaultInjector"] = None,
        on_repair: Optional[Callable[[BlockId], None]] = None,
    ):
        if rate_per_round < 1:
            raise ValueError(
                f"rate_per_round must be >= 1, got {rate_per_round}"
            )
        self.array = array
        self.monitor = monitor
        self.rate_per_round = rate_per_round
        self.injector = injector
        self.on_repair = on_repair
        self.total_checked = 0
        self.total_repaired = 0
        self.total_rebuilt = 0
        self._rebuild_done: dict[int, int] = {}
        self._patrol_cursor = 0
        self._population_cache: list[BlockId] = []
        self._population_version = -1

    def rebuild_progress(self, physical_id: int) -> float:
        """Fraction of a rebuilding disk's inventory re-verified so far
        (1.0 for any disk not currently rebuilding)."""
        if self.monitor.state(physical_id) is not DiskHealth.REBUILDING:
            return 1.0
        resident = len(self.array.blocks_on_physical(physical_id))
        if resident == 0:
            return 1.0
        return min(1.0, self._rebuild_done.get(physical_id, 0) / resident)

    def run_round(self, round_index: int) -> ScrubReport:
        """One scrub round under the configured rate budget."""
        report = ScrubReport(round_index=round_index)
        budget = self.rate_per_round

        for pid in self.monitor.disks_in(DiskHealth.REBUILDING):
            if budget <= 0:
                break
            resident = len(self.array.blocks_on_physical(pid))
            done = self._rebuild_done.get(pid, 0)
            step = min(budget, resident - done)
            if step > 0:
                done += step
                budget -= step
                self._rebuild_done[pid] = done
                report.rebuilt_blocks += step
                self.total_rebuilt += step
            if done >= resident:
                self.monitor.mark_healthy(pid)
                self._rebuild_done.pop(pid, None)
                report.completed_disks.append(pid)

        if budget > 0:
            population = self._population()
            while budget > 0 and population:
                self._patrol_cursor %= len(population)
                block_id = population[self._patrol_cursor]
                self._patrol_cursor += 1
                budget -= 1
                report.checked += 1
                self.total_checked += 1
                if self.injector is not None and self.injector.scrub_check():
                    report.repaired += 1
                    self.total_repaired += 1
                    if self.on_repair is not None:
                        self.on_repair(block_id)
        return report

    def _population(self) -> list[BlockId]:
        """All resident blocks in deterministic (block-id) order.

        The scan is O(total blocks) so the result is cached against the
        array's :attr:`~repro.storage.array.DiskArray.inventory_version`;
        block moves keep the membership (and thus this list) unchanged,
        so only place/drop invalidate it.  The sorted order is identical
        to an uncached rebuild — patrol semantics do not change.
        """
        version = self.array.inventory_version
        if version != self._population_version:
            blocks: list[BlockId] = []
            for pid in self.array.physical_ids:
                blocks.extend(
                    b.block_id for b in self.array.blocks_on_physical(pid)
                )
            blocks.sort(key=lambda b: (b.object_id, b.index))
            self._population_cache = blocks
            self._population_version = version
        return self._population_cache
