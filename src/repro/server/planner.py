"""Capacity planning: Section 4.3 as an API.

Given a growth forecast (how many scaling events, of what group size,
over what fleet), the planner answers the questions an operator asks
before deploying SCADDAR:

* how many random bits do the object sequences need so the whole
  forecast fits in one Lemma 4.3 budget?
* if the bit width is fixed, how many reshuffles will the forecast cost,
  and roughly how much block traffic (incremental + reshuffles)?

All arithmetic is exact (`Fraction`), matching the mapper's own
pre-checks — a plan that says "no reshuffle" is a guarantee, not an
estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.bounds import lemma_43_allows


@dataclass(frozen=True)
class GrowthForecast:
    """A planned scaling history.

    Attributes
    ----------
    n0:
        Starting disk count.
    operations:
        Number of scaling events forecast.
    group_size:
        Disks added per event (all additions; removals consume the
        budget identically, multiplying ``Pi`` by the post-op count).
    """

    n0: int
    operations: int
    group_size: int = 1

    def __post_init__(self):
        if self.n0 <= 0:
            raise ValueError(f"n0 must be >= 1, got {self.n0}")
        if self.operations < 0:
            raise ValueError(f"operations must be >= 0, got {self.operations}")
        if self.group_size <= 0:
            raise ValueError(f"group_size must be >= 1, got {self.group_size}")

    def disk_counts(self) -> list[int]:
        """The trajectory ``[N0, N1, ..., Nk]``."""
        return [
            self.n0 + j * self.group_size for j in range(self.operations + 1)
        ]


@dataclass(frozen=True)
class CapacityPlan:
    """The planner's verdict for one (forecast, bits, eps) configuration."""

    forecast: GrowthForecast
    bits: int
    eps: float
    reshuffles_needed: int
    #: operations completed before each reshuffle (cycle lengths)
    cycle_lengths: tuple[int, ...]
    #: expected moved fraction summed over the forecast, reshuffles billed
    expected_traffic: float

    @property
    def fits_without_reshuffle(self) -> bool:
        """True when the whole forecast fits one budget."""
        return self.reshuffles_needed == 0


def plan_capacity(
    forecast: GrowthForecast, bits: int, eps: float = 0.05
) -> CapacityPlan:
    """Simulate the forecast against the Lemma 4.3 budget.

    Walks the trajectory exactly as the mapper would: each operation
    multiplies ``Pi`` by the post-operation disk count; when the next
    operation would violate the budget, a reshuffle resets ``Pi`` to the
    current disk count and is billed ``(N-1)/N`` of the population in
    traffic.
    """
    if not 1 <= bits <= 64:
        raise ValueError(f"bits must be in 1..64, got {bits}")
    if eps <= 0:
        raise ValueError(f"eps must be > 0, got {eps}")
    r0 = 1 << bits
    tolerance = Fraction(eps).limit_denominator(10**9)

    counts = forecast.disk_counts()
    pi = counts[0]
    reshuffles = 0
    cycles: list[int] = []
    current_cycle = 0
    traffic = Fraction(0)
    for j in range(1, len(counts)):
        n_next = counts[j]
        if not lemma_43_allows(r0, pi * n_next, tolerance):
            # Reshuffle on the pre-op fleet, then retry the operation.
            reshuffles += 1
            cycles.append(current_cycle)
            current_cycle = 0
            n_now = counts[j - 1]
            traffic += Fraction(n_now - 1, n_now)
            pi = n_now
            if not lemma_43_allows(r0, pi * n_next, tolerance):
                raise ValueError(
                    f"even a fresh {bits}-bit budget cannot absorb one "
                    f"operation at N={n_next}; increase bits"
                )
        pi *= n_next
        current_cycle += 1
        traffic += Fraction(n_next - counts[j - 1], n_next)
    cycles.append(current_cycle)
    return CapacityPlan(
        forecast=forecast,
        bits=bits,
        eps=eps,
        reshuffles_needed=reshuffles,
        cycle_lengths=tuple(cycles),
        expected_traffic=float(traffic),
    )


def minimum_bits(forecast: GrowthForecast, eps: float = 0.05) -> int:
    """Smallest bit width whose budget absorbs the whole forecast.

    Returns 65 when even 64 bits cannot (then plan reshuffles instead).
    """
    for bits in range(1, 65):
        try:
            plan = plan_capacity(forecast, bits, eps)
        except ValueError:
            continue
        if plan.fits_without_reshuffle:
            return bits
    return 65
