"""Continuous-media server simulation.

The substrate the paper's claims live in: a catalog of CM objects with
per-object seeds, a round-based retrieval scheduler serving concurrent
streams, online scaling that interleaves redistribution with playback,
and the Section 6 mirroring extension for fault tolerance.
"""

from repro.server.admission import (
    AggregateAdmission,
    StatisticalAdmission,
    UtilizationAdmission,
)
from repro.server.cmserver import (
    CMServer,
    OperationInFlightError,
    PendingReshuffle,
    PendingScale,
    ScaleReport,
)
from repro.server.faults import (
    DataLossError,
    DiskDeathError,
    FaultInjector,
    MirrorDegenerateError,
    MirroredPlacement,
    TransientTransferError,
    derive_seed,
    mirror_offset,
)
from repro.server.health import (
    CircuitBreaker,
    DiskHealth,
    DiskHealthMonitor,
    ScrubReport,
    Scrubber,
)
from repro.server.reads import (
    DegradedStack,
    FailoverReadPlanner,
    MirrorProtection,
    ParityProtection,
    ReadStats,
    build_degraded_stack,
)
from repro.server.fsck import LayoutReport, check_layout, repair_layout
from repro.server.ingest import IngestReport, IngestSession
from repro.server.journal import (
    JournalError,
    OpJournalRecord,
    ReshuffleOp,
    ScalingJournal,
)
from repro.server.metrics import MetricsCollector, MetricsSummary
from repro.server.objects import MediaObject, ObjectCatalog
from repro.server.parity import ParityLayout, ParityPlacement
from repro.server.online import OnlineScaler, OnlineScaleReport
from repro.server.recovery import (
    DeathEscalationReport,
    RecoveryReport,
    escalate_disk_death,
    simulate_failure_recovery,
)
from repro.server.planner import CapacityPlan, GrowthForecast, minimum_bits, plan_capacity
from repro.server.persistence import (
    restore_server,
    resume_server,
    server_to_json,
    snapshot_server,
)
from repro.server.protocol import ServerProtocol
from repro.server.scheduler import RoundReport, RoundScheduler
from repro.server.simulation import DaySummary, ServerSimulation
from repro.server.streams import Stream, StreamState
from repro.server.watchdog import (
    BudgetExhaustedError,
    BudgetStatus,
    ExhaustionWatchdog,
    WatchdogConfig,
)

__all__ = [
    "AggregateAdmission",
    "BudgetExhaustedError",
    "BudgetStatus",
    "CMServer",
    "CapacityPlan",
    "CircuitBreaker",
    "DataLossError",
    "DeathEscalationReport",
    "DegradedStack",
    "DiskDeathError",
    "DiskHealth",
    "DiskHealthMonitor",
    "FailoverReadPlanner",
    "MirrorDegenerateError",
    "MirrorProtection",
    "ParityProtection",
    "ReadStats",
    "ScrubReport",
    "Scrubber",
    "build_degraded_stack",
    "derive_seed",
    "GrowthForecast",
    "DaySummary",
    "ExhaustionWatchdog",
    "FaultInjector",
    "IngestReport",
    "JournalError",
    "LayoutReport",
    "MetricsCollector",
    "MetricsSummary",
    "IngestSession",
    "MediaObject",
    "MirroredPlacement",
    "ObjectCatalog",
    "OnlineScaleReport",
    "OnlineScaler",
    "OpJournalRecord",
    "OperationInFlightError",
    "ParityLayout",
    "ParityPlacement",
    "PendingReshuffle",
    "PendingScale",
    "RecoveryReport",
    "ReshuffleOp",
    "RoundReport",
    "RoundScheduler",
    "ScaleReport",
    "ScalingJournal",
    "ServerProtocol",
    "ServerSimulation",
    "StatisticalAdmission",
    "Stream",
    "StreamState",
    "TransientTransferError",
    "UtilizationAdmission",
    "WatchdogConfig",
    "check_layout",
    "escalate_disk_death",
    "minimum_bits",
    "mirror_offset",
    "plan_capacity",
    "repair_layout",
    "restore_server",
    "resume_server",
    "simulate_failure_recovery",
    "server_to_json",
    "snapshot_server",
]
