"""Continuous-media server simulation.

The substrate the paper's claims live in: a catalog of CM objects with
per-object seeds, a round-based retrieval scheduler serving concurrent
streams, online scaling that interleaves redistribution with playback,
and the Section 6 mirroring extension for fault tolerance.
"""

from repro.server.admission import (
    AggregateAdmission,
    StatisticalAdmission,
    UtilizationAdmission,
)
from repro.server.cmserver import CMServer, ScaleReport
from repro.server.faults import MirroredPlacement, mirror_offset
from repro.server.fsck import LayoutReport, check_layout, repair_layout
from repro.server.ingest import IngestReport, IngestSession
from repro.server.metrics import MetricsCollector, MetricsSummary
from repro.server.objects import MediaObject, ObjectCatalog
from repro.server.parity import ParityLayout, ParityPlacement
from repro.server.online import OnlineScaler, OnlineScaleReport
from repro.server.recovery import RecoveryReport, simulate_failure_recovery
from repro.server.planner import CapacityPlan, GrowthForecast, minimum_bits, plan_capacity
from repro.server.persistence import (
    restore_server,
    server_to_json,
    snapshot_server,
)
from repro.server.scheduler import RoundReport, RoundScheduler
from repro.server.simulation import DaySummary, ServerSimulation
from repro.server.streams import Stream, StreamState

__all__ = [
    "AggregateAdmission",
    "CMServer",
    "CapacityPlan",
    "GrowthForecast",
    "DaySummary",
    "IngestReport",
    "LayoutReport",
    "MetricsCollector",
    "MetricsSummary",
    "IngestSession",
    "MediaObject",
    "MirroredPlacement",
    "ObjectCatalog",
    "OnlineScaleReport",
    "OnlineScaler",
    "ParityLayout",
    "ParityPlacement",
    "RecoveryReport",
    "RoundReport",
    "RoundScheduler",
    "ScaleReport",
    "ServerSimulation",
    "StatisticalAdmission",
    "Stream",
    "StreamState",
    "UtilizationAdmission",
    "check_layout",
    "minimum_bits",
    "mirror_offset",
    "plan_capacity",
    "repair_layout",
    "restore_server",
    "simulate_failure_recovery",
    "server_to_json",
    "snapshot_server",
]
