"""Incremental object ingest (writing new media onto a live server).

Section 2 notes that writing continuous media to a server (Aref et al.
[1]) is "orthogonal to our approach since we also need a similar
technique to write blocks during the redistribution".  The migration
engine already throttles redistribution writes; :class:`IngestSession`
applies the same discipline to loading a *new* object: each round it
writes as many of the object's blocks as the target disks' spare
bandwidth allows, to the disks ``AF()`` assigns — so a finished ingest
is indistinguishable from an initial placement.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.server.cmserver import CMServer
from repro.server.objects import MediaObject
from repro.storage.block import Block


@dataclass
class IngestReport:
    """Outcome of one completed ingest."""

    object_id: int
    blocks_written: int = 0
    rounds: int = 0
    writes_per_round: list[int] = field(default_factory=list)


class IngestStalledError(Exception):
    """Raised when rounds pass with zero spare bandwidth to write with."""


class IngestSession:
    """Writes one new object onto the server, round by round.

    Parameters
    ----------
    server:
        The target server; the object is registered in its catalog at
        construction but its blocks arrive incrementally.
    name / num_blocks / blocks_per_round:
        The new object's parameters (as in ``ObjectCatalog.add_object``).

    Notes
    -----
    Blocks are written in playback order, so a stream may be admitted on
    the partially loaded object and chase the write frontier (classic
    "watch while ingesting"); :attr:`frontier` tells how far it may go.
    """

    def __init__(
        self,
        server: CMServer,
        name: str,
        num_blocks: int,
        blocks_per_round: int = 1,
    ):
        self.server = server
        self.media: MediaObject = server.catalog.add_object(
            name, num_blocks, blocks_per_round
        )
        # The backend learns the whole object up front (stateful backends
        # assign placements at registration); bytes still arrive per round.
        server.register_media(self.media)
        self._pending: list[Block] = self.media.blocks()
        self._written = 0

    @property
    def object_id(self) -> int:
        """Catalog id of the object being ingested."""
        return self.media.object_id

    @property
    def frontier(self) -> int:
        """Blocks written so far (playback may proceed up to here)."""
        return self._written

    @property
    def done(self) -> bool:
        """Whether every block has landed."""
        return not self._pending

    def step(self, budget: Mapping[int, int] | int) -> int:
        """Write up to the spare per-disk budget this round.

        ``budget`` follows the migration convention: an int applies to
        every disk, a mapping gives per-physical-disk budgets (e.g. the
        scheduler's ``spare_by_physical``).  Each write costs one unit on
        its target disk.  Returns blocks written this round.
        """
        spent: dict[int, int] = {}
        written = 0
        still_pending: list[Block] = []
        # Batch the placement lookups for every pending block up front —
        # the targets may shift between rounds (mid-ingest scaling), so
        # they are recomputed per round, but in one vectorized pass.
        logicals = self.server.locate_blocks(self._pending)
        for block, target_logical in zip(self._pending, logicals):
            if still_pending:
                # Keep playback order: once one block waits, later ones do.
                still_pending.append(block)
                continue
            target = self.server.array.physical_at(target_logical)
            allowance = (
                budget if isinstance(budget, int) else budget.get(target, 0)
            )
            if spent.get(target, 0) >= allowance:
                still_pending.append(block)
                continue
            self.server.array.place_physical(block, target)
            self.server._x0[block.block_id] = block.x0
            spent[target] = spent.get(target, 0) + 1
            written += 1
        self._pending = still_pending
        self._written += written
        return written

    def run(
        self, budget: Mapping[int, int] | int, max_rounds: int = 100_000
    ) -> IngestReport:
        """Write rounds until the object is fully loaded."""
        report = IngestReport(object_id=self.object_id)
        while not self.done:
            if report.rounds >= max_rounds:
                raise IngestStalledError(
                    f"ingest incomplete after {max_rounds} rounds; "
                    f"{len(self._pending)} blocks remain"
                )
            written = self.step(budget)
            if written == 0:
                raise IngestStalledError(
                    "round wrote zero blocks; the next target disk has no "
                    "spare bandwidth"
                )
            report.rounds += 1
            report.blocks_written += written
            report.writes_per_round.append(written)
        return report
