"""Admission-control policies for the round scheduler.

CM servers guarantee continuous delivery by refusing streams they cannot
serve.  With constrained placement the check is deterministic; with
random placement it is statistical — the paper's "load balancing by the
law of large numbers" needs an admission rule that keeps per-disk
overflow probability low.  Three policies:

* :class:`AggregateAdmission` — total demand <= total bandwidth (the
  scheduler's historical default; necessary but not sufficient);
* :class:`UtilizationAdmission` — total demand <= ``threshold`` x total
  bandwidth, leaving explicit headroom (e.g. for migration);
* :class:`StatisticalAdmission` — bounds the per-round probability that
  *some* disk's random demand exceeds its bandwidth, using the normal
  approximation to Binomial(S, 1/N) plus a union bound.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.storage.array import DiskArray


class AdmissionPolicy(ABC):
    """Decides whether one more stream of a given rate may be admitted."""

    @abstractmethod
    def admits(
        self, array: DiskArray, active_demand: int, new_rate: int
    ) -> bool:
        """Whether a stream of ``new_rate`` blocks/round fits.

        ``active_demand`` is the aggregate blocks/round of currently
        active streams.
        """

    @staticmethod
    def _total_bandwidth(array: DiskArray) -> int:
        return sum(
            array.disk(pid).bandwidth_blocks_per_round
            for pid in array.physical_ids
        )


class AggregateAdmission(AdmissionPolicy):
    """Admit while total demand fits total bandwidth."""

    def admits(self, array: DiskArray, active_demand: int, new_rate: int) -> bool:
        return active_demand + new_rate <= self._total_bandwidth(array)


class UtilizationAdmission(AdmissionPolicy):
    """Admit while demand stays under ``threshold`` of total bandwidth.

    Parameters
    ----------
    threshold:
        Target utilization in (0, 1]; the rest is headroom for migration
        and demand variance.
    """

    def __init__(self, threshold: float = 0.7):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold

    def admits(self, array: DiskArray, active_demand: int, new_rate: int) -> bool:
        budget = self.threshold * self._total_bandwidth(array)
        return active_demand + new_rate <= budget


class StatisticalAdmission(AdmissionPolicy):
    """Admit while P(any disk overflows in a round) stays under a target.

    With ``S`` block requests spread uniformly over ``N`` disks, one
    disk's demand is Binomial(S, 1/N); a disk of bandwidth ``c``
    overflows with probability about ``Q((c + 0.5 - S/N) / sigma)`` where
    ``sigma = sqrt(S (1/N)(1 - 1/N))``.  A union bound over disks gives
    the round's overflow probability.  This is exactly the statistical
    service model Section 2 attributes to randomized placement.

    Parameters
    ----------
    overflow_probability:
        Acceptable per-round probability that at least one disk is
        oversubscribed.
    """

    def __init__(self, overflow_probability: float = 0.05):
        if not 0.0 < overflow_probability < 1.0:
            raise ValueError(
                f"overflow probability must be in (0, 1), got {overflow_probability}"
            )
        self.overflow_probability = overflow_probability

    def admits(self, array: DiskArray, active_demand: int, new_rate: int) -> bool:
        demand = active_demand + new_rate
        return self.round_overflow_probability(array, demand) <= (
            self.overflow_probability
        )

    @staticmethod
    def round_overflow_probability(array: DiskArray, demand: int) -> float:
        """Union-bound probability that some disk exceeds its bandwidth."""
        n = array.num_disks
        if demand <= 0 or n == 0:
            return 0.0
        p = 1.0 / n
        mean = demand * p
        sigma = math.sqrt(demand * p * (1.0 - p))
        total = 0.0
        for pid in array.physical_ids:
            capacity = array.disk(pid).bandwidth_blocks_per_round
            if sigma == 0.0:
                overflow = 0.0 if mean <= capacity else 1.0
            else:
                z = (capacity + 0.5 - mean) / sigma
                overflow = 0.5 * math.erfc(z / math.sqrt(2.0))
            total += overflow
        return min(total, 1.0)

    def max_admissible_demand(self, array: DiskArray) -> int:
        """Largest aggregate demand the policy would accept (by scan)."""
        demand = 0
        while self.round_overflow_probability(array, demand + 1) <= (
            self.overflow_probability
        ):
            demand += 1
            if demand > 10 * self._total_bandwidth(array):
                break  # safety valve; capacity-bound long before this
        return demand
