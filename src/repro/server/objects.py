"""CM objects and the object catalog.

Each object is split into fixed-size blocks and owns a unique seed
``s_m``; its block random numbers ``X0(i)`` come from the seeded sequence
(Definition 3.2).  The catalog derives per-object seeds from one master
seed, so an entire server is reproducible from a single integer — and a
*reshuffle* (the paper's full redistribution after the operation budget
is spent) is modeled by bumping the catalog's seed epoch, which gives
every object a fresh sequence.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.prng.generators import _mix64
from repro.prng.sequence import ObjectSequence
from repro.storage.block import Block


@dataclass(frozen=True)
class MediaObject:
    """One continuous-media object.

    Attributes
    ----------
    object_id:
        Catalog-assigned id.
    name:
        Human-readable title.
    num_blocks:
        Number of fixed-size blocks the object is split into.
    seed:
        The object's unique seed ``s_m``.
    bits:
        Random-number width ``b`` of the object's sequence.
    family:
        Generator family of the sequence.
    blocks_per_round:
        Playback consumption rate — how many blocks one stream of this
        object needs per scheduling round (1 for ordinary video).
    """

    object_id: int
    name: str
    num_blocks: int
    seed: int
    bits: int = 64
    family: str = "splitmix64"
    blocks_per_round: int = 1

    def __post_init__(self):
        if self.num_blocks <= 0:
            raise ValueError(f"object needs >= 1 block, got {self.num_blocks}")
        if self.blocks_per_round <= 0:
            raise ValueError(
                f"blocks_per_round must be >= 1, got {self.blocks_per_round}"
            )

    def sequence(self) -> ObjectSequence:
        """The object's reproducible random sequence ``p_r(s_m)``."""
        return ObjectSequence(seed=self.seed, bits=self.bits, family=self.family)

    def blocks(self) -> list[Block]:
        """All blocks with their ``X0`` values, by faithful iteration."""
        x0s = self.sequence().prefix(self.num_blocks)
        return [
            Block(object_id=self.object_id, index=i, x0=x0)
            for i, x0 in enumerate(x0s)
        ]

    def block(self, index: int) -> Block:
        """One block with its ``X0`` (O(1) for counter-based families)."""
        if not 0 <= index < self.num_blocks:
            raise IndexError(
                f"block {index} out of 0..{self.num_blocks - 1} "
                f"for object {self.object_id}"
            )
        return Block(
            object_id=self.object_id,
            index=index,
            x0=self.sequence().x0(index),
        )


@dataclass
class ObjectCatalog:
    """All objects of a CM server, reproducible from one master seed.

    Attributes
    ----------
    master_seed:
        Root of all per-object seeds.
    bits:
        Random-number width shared by all objects.
    family:
        Generator family shared by all objects.
    """

    master_seed: int = 0xCADDA
    bits: int = 64
    family: str = "splitmix64"
    _objects: dict[int, MediaObject] = field(default_factory=dict)
    _next_id: int = 0
    _seed_epoch: int = 0

    def add_object(
        self, name: str, num_blocks: int, blocks_per_round: int = 1
    ) -> MediaObject:
        """Create and register a new object with a derived unique seed."""
        object_id = self._next_id
        self._next_id += 1
        obj = MediaObject(
            object_id=object_id,
            name=name,
            num_blocks=num_blocks,
            seed=self._derive_seed(object_id),
            bits=self.bits,
            family=self.family,
            blocks_per_round=blocks_per_round,
        )
        self._objects[object_id] = obj
        return obj

    def remove_object(self, object_id: int) -> MediaObject:
        """Deregister an object (its blocks are the caller's to drop)."""
        try:
            return self._objects.pop(object_id)
        except KeyError:
            raise KeyError(f"object {object_id} is not in the catalog")

    def get(self, object_id: int) -> MediaObject:
        """Look up an object by id."""
        try:
            return self._objects[object_id]
        except KeyError:
            raise KeyError(f"object {object_id} is not in the catalog")

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[MediaObject]:
        return iter(self._objects.values())

    @property
    def total_blocks(self) -> int:
        """Sum of block counts over all objects."""
        return sum(obj.num_blocks for obj in self._objects.values())

    def all_blocks(self) -> list[Block]:
        """Every block of every object (ordered by object id, then index)."""
        blocks: list[Block] = []
        for object_id in sorted(self._objects):
            blocks.extend(self._objects[object_id].blocks())
        return blocks

    def reseed_all(self) -> None:
        """Give every object a fresh sequence (the full-reshuffle step).

        Bumps the seed epoch and rebuilds each object with a new derived
        seed; ids, names and sizes are preserved.
        """
        self._seed_epoch += 1
        for object_id, obj in list(self._objects.items()):
            self._objects[object_id] = MediaObject(
                object_id=obj.object_id,
                name=obj.name,
                num_blocks=obj.num_blocks,
                seed=self._derive_seed(object_id),
                bits=obj.bits,
                family=obj.family,
                blocks_per_round=obj.blocks_per_round,
            )

    def _derive_seed(self, object_id: int) -> int:
        """Unique per-object seed: a mix of master seed, epoch and id."""
        return _mix64(
            _mix64(self.master_seed ^ _mix64(object_id + 1))
            + self._seed_epoch
        )
