"""Batched block location for the vectorized serving path.

The scalar scheduler resolves one ``BlockId -> physical disk`` per read;
the vectorized round loop resolves a whole round at once through a
*batch locator*: arrays of ``(object_id, block_index)`` in, an ``int64``
array of physical disk ids out.

Two implementations:

* :class:`SequentialBatchLocator` wraps any scalar locator (the array
  inventory by default).  It is always semantics-preserving — including
  mid-migration, when a block's bytes are not yet where the backend says
  they belong — but loops per block, so it only removes the per-call
  dispatch overhead of the scalar path.
* :class:`BackendBatchLocator` computes placements wholesale through the
  backend's ``locate_batch`` kernel over cached per-object ``X0``
  arrays.  This is the millions-of-reads/sec path; it assumes the
  inventory agrees with the computed placement (no scaling operation in
  flight), exactly like :meth:`CMServer.block_location`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol

import numpy as np

from repro.storage.block import BlockId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.server.cmserver import CMServer


class BatchLocator(Protocol):
    """Resolves a batch of blocks to physical disk ids."""

    def locate_physical(
        self, object_ids: np.ndarray, block_indices: np.ndarray
    ) -> np.ndarray:
        """Physical disk id per ``(object_ids[i], block_indices[i])``."""
        ...


class SequentialBatchLocator:
    """Batch adapter over a scalar ``BlockId -> physical`` locator.

    The semantic oracle: whatever the scalar path would have resolved,
    block by block, this returns as one array.
    """

    def __init__(self, locate: Callable[[BlockId], int]):
        self._locate = locate

    def locate_physical(
        self, object_ids: np.ndarray, block_indices: np.ndarray
    ) -> np.ndarray:
        locate = self._locate
        return np.fromiter(
            (
                locate(BlockId(oid, index))
                for oid, index in zip(object_ids.tolist(), block_indices.tolist())
            ),
            dtype=np.int64,
            count=object_ids.shape[0],
        )


class BackendBatchLocator:
    """Computed placement through the backend's vectorized kernel.

    Caches each object's ``X0`` sequence as a ``uint64`` array on first
    touch (the catalog's seeded sequence is the source of truth, same as
    :meth:`CMServer._x0_of`), groups the batch by object, and resolves
    logical disks with one ``locate_batch`` call.  Call
    :meth:`invalidate` after catalog churn or a reshuffle.
    """

    def __init__(self, server: "CMServer"):
        self.server = server
        self._x0_cache: dict[int, np.ndarray] = {}

    def invalidate(self, object_id: int | None = None) -> None:
        """Drop cached ``X0`` arrays (all objects when ``object_id`` is
        ``None``) — required after ``reshuffle()`` re-seeds sequences."""
        if object_id is None:
            self._x0_cache.clear()
        else:
            self._x0_cache.pop(object_id, None)

    def _x0_array(self, object_id: int) -> np.ndarray:
        cached = self._x0_cache.get(object_id)
        if cached is None:
            server = self.server
            media = server.catalog.get(object_id)
            cached = np.fromiter(
                (
                    server.block_x0(object_id, index)
                    for index in range(media.num_blocks)
                ),
                dtype=np.uint64,
                count=media.num_blocks,
            )
            self._x0_cache[object_id] = cached
        return cached

    def locate_physical(
        self, object_ids: np.ndarray, block_indices: np.ndarray
    ) -> np.ndarray:
        server = self.server
        n = object_ids.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64)
        x0s = np.empty(n, dtype=np.uint64)
        order = np.argsort(object_ids, kind="stable")
        sorted_oids = object_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_oids)) + 1
        for group in np.split(order, boundaries):
            oid = int(object_ids[group[0]])
            x0s[group] = self._x0_array(oid)[block_indices[group]]
        ids = None
        if server.backend.requires_ids:
            ids = [
                BlockId(oid, index)
                for oid, index in zip(object_ids.tolist(), block_indices.tolist())
            ]
        logical = server.backend.locate_batch(ids, x0s)
        table = np.asarray(server.array.physical_ids, dtype=np.int64)
        return table[logical]
