"""Disk-failure recovery with mirrored SCADDAR placement.

The paper distinguishes removal ("known a priori") from failure
("unpredictable", Section 1) and proposes mirroring for the latter
(Section 6).  The two compose: with a mirror at offset ``Nj/2``, an
unexpected failure becomes a SCADDAR *removal* of the dead disk in which
every block whose copy was lost still has a live source — its surviving
replica — so the redistribution can run online exactly like a planned
removal.

:func:`simulate_failure_recovery` plays that out over a block population
and prices it: which replicas must be rewritten, the read/write traffic
per surviving disk, and the rebuild time under a bandwidth cap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.server.faults import DataLossError, MirroredPlacement


@dataclass
class RecoveryReport:
    """Outcome of recovering from one disk failure.

    Attributes
    ----------
    failed_disk:
        Logical index of the failed disk (pre-removal numbering).
    blocks_recovered:
        Replica copies that had to be rewritten somewhere.
    blocks_lost:
        Blocks with no surviving copy (0 with distinct-replica mirroring).
    reads_by_disk / writes_by_disk:
        Rebuild traffic per *post-removal* logical disk.
    rebuild_rounds:
        Rounds to complete at the given per-disk bandwidth, with reads
        and writes sharing each disk's budget.
    """

    failed_disk: int
    blocks_recovered: int = 0
    blocks_lost: int = 0
    reads_by_disk: dict[int, int] = field(default_factory=dict)
    writes_by_disk: dict[int, int] = field(default_factory=dict)
    rebuild_rounds: int = 0


def simulate_failure_recovery(
    mapper: ScaddarMapper,
    x0s: list[int],
    failed_disk: int,
    bandwidth_per_disk: int = 8,
) -> tuple[ScaddarMapper, RecoveryReport]:
    """Convert a failure into a removal; source lost copies from mirrors.

    Returns the post-recovery mapper (the input mapper is not mutated —
    callers swap it in once recovery completes) and the traffic report.

    Raises
    ------
    DataLossError
        If some block had both replicas on the failed disk (cannot happen
        with the offset scheme while ``Nj >= 2``, but checked anyway).
    ValueError
        On invalid disk index or bandwidth.
    """
    n_before = mapper.current_disks
    if not 0 <= failed_disk < n_before:
        raise ValueError(
            f"failed disk {failed_disk} out of 0..{n_before - 1}"
        )
    if bandwidth_per_disk <= 0:
        raise ValueError(f"bandwidth must be >= 1, got {bandwidth_per_disk}")

    before = MirroredPlacement(mapper)
    # The survivors' new compact indices (the paper's new()).
    rank = [
        d - (1 if d > failed_disk else 0)
        for d in range(n_before)
    ]

    after_mapper = ScaddarMapper(n0=mapper.log.n0, bits=mapper.bits)
    for op in mapper.log:
        after_mapper.apply(op)
    after_mapper.apply(ScalingOp.remove([failed_disk]))
    after = MirroredPlacement(after_mapper)

    report = RecoveryReport(failed_disk=failed_disk)
    n_after = after_mapper.current_disks
    report.reads_by_disk = {d: 0 for d in range(n_after)}
    report.writes_by_disk = {d: 0 for d in range(n_after)}

    for x0 in x0s:
        old_pair = before.replica_pair(x0)
        old_copies = {old_pair.primary, old_pair.mirror}
        surviving = old_copies - {failed_disk}
        if not surviving:
            report.blocks_lost += 1
            continue
        # Post-removal locations of the surviving copies, compact indexing.
        surviving_after = {rank[d] for d in surviving}
        new_pair = after.replica_pair(x0)
        source = next(iter(surviving_after))
        for target in {new_pair.primary, new_pair.mirror} - surviving_after:
            report.blocks_recovered += 1
            report.reads_by_disk[source] += 1
            report.writes_by_disk[target] += 1

    if report.blocks_lost:
        raise DataLossError(
            f"{report.blocks_lost} blocks had every replica on disk "
            f"{failed_disk}"
        )

    busiest = max(
        (
            report.reads_by_disk[d] + report.writes_by_disk[d]
            for d in range(n_after)
        ),
        default=0,
    )
    report.rebuild_rounds = math.ceil(busiest / bandwidth_per_disk)
    return after_mapper, report
