"""Disk-failure recovery with mirrored SCADDAR placement.

The paper distinguishes removal ("known a priori") from failure
("unpredictable", Section 1) and proposes mirroring for the latter
(Section 6).  The two compose: with a mirror at offset ``Nj/2``, an
unexpected failure becomes a SCADDAR *removal* of the dead disk in which
every block whose copy was lost still has a live source — its surviving
replica — so the redistribution can run online exactly like a planned
removal.

:func:`simulate_failure_recovery` plays that out over a block population
and prices it: which replicas must be rewritten, the read/write traffic
per surviving disk, and the rebuild time under a bandwidth cap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.operations import ScalingOp
from repro.core.scaddar import ScaddarMapper
from repro.server.faults import (
    DataLossError,
    FaultInjector,
    MirroredPlacement,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.cmserver import CMServer, PendingScale
    from repro.storage.migration import MigrationSession


@dataclass
class RecoveryReport:
    """Outcome of recovering from one disk failure.

    Attributes
    ----------
    failed_disk:
        Logical index of the failed disk (pre-removal numbering).
    blocks_recovered:
        Replica copies that had to be rewritten somewhere.
    blocks_lost:
        Blocks with no surviving copy (0 with distinct-replica mirroring).
    reads_by_disk / writes_by_disk:
        Rebuild traffic per *post-removal* logical disk.
    rebuild_rounds:
        Rounds to complete at the given per-disk bandwidth, with reads
        and writes sharing each disk's budget.
    """

    failed_disk: int
    blocks_recovered: int = 0
    blocks_lost: int = 0
    reads_by_disk: dict[int, int] = field(default_factory=dict)
    writes_by_disk: dict[int, int] = field(default_factory=dict)
    rebuild_rounds: int = 0


def simulate_failure_recovery(
    mapper: ScaddarMapper,
    x0s: list[int],
    failed_disk: int,
    bandwidth_per_disk: int = 8,
) -> tuple[ScaddarMapper, RecoveryReport]:
    """Convert a failure into a removal; source lost copies from mirrors.

    Returns the post-recovery mapper (the input mapper is not mutated —
    callers swap it in once recovery completes) and the traffic report.

    Raises
    ------
    DataLossError
        If some block had both replicas on the failed disk (cannot happen
        with the offset scheme while ``Nj >= 2``, but checked anyway).
    ValueError
        On invalid disk index or bandwidth.
    """
    n_before = mapper.current_disks
    if not 0 <= failed_disk < n_before:
        raise ValueError(
            f"failed disk {failed_disk} out of 0..{n_before - 1}"
        )
    if bandwidth_per_disk <= 0:
        raise ValueError(f"bandwidth must be >= 1, got {bandwidth_per_disk}")

    before = MirroredPlacement(mapper)
    # The survivors' new compact indices (the paper's new()).
    rank = [
        d - (1 if d > failed_disk else 0)
        for d in range(n_before)
    ]

    after_mapper = ScaddarMapper(n0=mapper.log.n0, bits=mapper.bits)
    for op in mapper.log:
        after_mapper.apply(op)
    after_mapper.apply(ScalingOp.remove([failed_disk]))
    after = MirroredPlacement(after_mapper)

    report = RecoveryReport(failed_disk=failed_disk)
    n_after = after_mapper.current_disks
    report.reads_by_disk = {d: 0 for d in range(n_after)}
    report.writes_by_disk = {d: 0 for d in range(n_after)}

    for x0 in x0s:
        old_pair = before.replica_pair(x0)
        old_copies = {old_pair.primary, old_pair.mirror}
        surviving = old_copies - {failed_disk}
        if not surviving:
            report.blocks_lost += 1
            continue
        # Post-removal locations of the surviving copies, compact indexing.
        surviving_after = {rank[d] for d in surviving}
        new_pair = after.replica_pair(x0)
        source = next(iter(surviving_after))
        for target in {new_pair.primary, new_pair.mirror} - surviving_after:
            report.blocks_recovered += 1
            report.reads_by_disk[source] += 1
            report.writes_by_disk[target] += 1

    if report.blocks_lost:
        raise DataLossError(
            f"{report.blocks_lost} blocks had every replica on disk "
            f"{failed_disk}"
        )

    busiest = max(
        (
            report.reads_by_disk[d] + report.writes_by_disk[d]
            for d in range(n_after)
        ),
        default=0,
    )
    report.rebuild_rounds = math.ceil(busiest / bandwidth_per_disk)
    return after_mapper, report


@dataclass
class DeathEscalationReport:
    """Outcome of escalating a mid-migration disk death.

    Attributes
    ----------
    dead_physical:
        Physical id of the disk that died.
    interrupted_op:
        The scaling operation that was running when the disk died.
    superseded_moves:
        Moves of the interrupted plan that *targeted* the dead disk —
        dropped, because the follow-up failure-removal re-routes those
        blocks from wherever they actually sit.
    drain_moves:
        Moves executed while completing the interrupted operation.
    removal_moves:
        Moves of the failure-removal that drained the dead disk.
    mirror_reads:
        Transfers whose source was the dead disk, served by the
        surviving replica (the Section 6 mirroring contract).
    """

    dead_physical: int
    interrupted_op: ScalingOp
    superseded_moves: int = 0
    drain_moves: int = 0
    removal_moves: int = 0
    mirror_reads: int = 0


def escalate_disk_death(
    server: "CMServer",
    pending: "PendingScale",
    session: "MigrationSession",
    dead_physical: int,
    injector: Optional[FaultInjector] = None,
) -> DeathEscalationReport:
    """Turn a disk death during scaling into a failure-as-removal.

    The composition the paper's Sections 1 and 6 add up to: the
    interrupted add/remove is *completed* (reads from the dead disk are
    served by the offset mirror; writes to it are dropped — the blocks
    are re-routed by the removal), then the death becomes one more
    SCADDAR removal on the same operation log.  Both operations are
    journaled if the server has a journal, so a crash during the
    escalation is itself resumable.

    Mirroring is the SCADDAR backend's contract (the offset scheme needs
    the mapper), so this escalation requires ``server.backend`` to be the
    SCADDAR backend; other backends raise ``AttributeError`` via
    ``server.mapper``.

    Raises
    ------
    DataLossError
        If some block that must be read off the dead disk has its mirror
        there too (impossible under the offset scheme while ``Nj >= 2``).
    ValueError
        If the dead disk is one the interrupted removal was already
        draining — finishing that removal IS the recovery then, and no
        second operation may be appended.
    """
    from repro.storage.migration import MigrationSession

    report = DeathEscalationReport(
        dead_physical=dead_physical, interrupted_op=pending.op
    )
    if dead_physical in pending.removed_physicals:
        raise ValueError(
            f"disk {dead_physical} is already being removed by the "
            "interrupted operation; finish that migration instead"
        )

    # Writes to the dead disk are superseded: the failure-removal's RF()
    # plan recomputes each block's route from its actual current home.
    report.superseded_moves = len(
        session.discard_pending(lambda m: m.target_physical == dead_physical)
    )

    # Reads from the dead disk come from the surviving replica; prove one
    # exists before allowing them.
    mirrored = MirroredPlacement(server.mapper)
    dead_logical = server.array.logical_of(dead_physical)
    sourced = [
        m for m in session.pending_moves if m.source_physical == dead_physical
    ]
    for move in sourced:
        x0 = server._x0_of(move.block_id.object_id, move.block_id.index)
        pair = mirrored.replica_pair(x0)
        if pair.primary == pair.mirror == dead_logical:
            raise DataLossError(
                f"block {move.block_id} has both replicas on dead disk "
                f"{dead_physical}"
            )
    if injector is not None:
        injector.enable_mirror_reads()

    # Complete the interrupted operation (unthrottled: recovery outranks
    # politeness; callers that need pacing can drive the session first).
    _drain(session)
    report.drain_moves = len(session.executed)
    server.finish_scale(pending)

    # The failure, as one more removal on the same operation log.
    dead_logical = server.array.logical_of(dead_physical)
    removal = server.begin_scale(ScalingOp.remove([dead_logical]))
    drain = MigrationSession(
        server.array,
        removal.plan,
        journal=server.journal,
        op_seq=removal.op_seq,
        injector=injector,
    )
    _drain(drain)
    report.removal_moves = len(drain.executed)
    server.finish_scale(removal)
    if injector is not None:
        report.mirror_reads = injector.stats.mirror_reads
    return report


def _drain(session: "MigrationSession", stall_rounds: int = 1_000) -> None:
    """Step a session to completion with effectively unlimited budget.

    Zero-move rounds are tolerated up to ``stall_rounds`` in a row —
    fault-injector backoff legitimately idles rounds — but a session
    that stops progressing for good raises ``RuntimeError``.
    """
    idle = 0
    while not session.done:
        if session.step(2 * len(session.pending_moves) + 2):
            idle = 0
        else:
            idle += 1
            if idle >= stall_rounds:
                raise RuntimeError(
                    f"recovery drain stalled: {session.remaining} moves "
                    f"made no progress for {stall_rounds} rounds"
                )
