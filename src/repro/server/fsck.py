"""Layout consistency checking (an ``fsck`` for the CM server).

The server's correctness rests on one identity: the location of every
block *computed by the placement backend* (for SCADDAR, ``AF()`` over
seeds + op log) equals where its bytes physically sit.  Crashes
mid-migration, operator surgery or software bugs can break it;
:func:`check_layout` audits a server and :func:`repair_layout` moves
stray blocks back where the backend says they belong (the backend wins —
it is what retrieval will use).  The audit runs through
``server.block_locations``, so it works unchanged for every registered
backend.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Optional

from repro.server.cmserver import CMServer, PendingReshuffle, PendingScale
from repro.storage.block import BlockId
from repro.storage.migration import PhysicalMove


@dataclass(frozen=True)
class LayoutViolation:
    """One block whose physical home disagrees with ``AF()``."""

    block_id: BlockId
    expected_physical: int
    actual_physical: int


@dataclass
class LayoutReport:
    """Outcome of one consistency audit."""

    blocks_checked: int = 0
    missing: list[BlockId] = field(default_factory=list)
    orphans: list[BlockId] = field(default_factory=list)
    misplaced: list[LayoutViolation] = field(default_factory=list)
    #: Violations explained by a not-yet-executed migration move (the
    #: block sits at the move's source, AF() already says the target).
    #: Mid-migration state, not corruption; excluded from :attr:`clean`.
    in_flight: list[LayoutViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the layout is fully consistent."""
        return not (self.missing or self.orphans or self.misplaced)


def check_layout(
    server: CMServer,
    pending: Optional[
        PendingScale | PendingReshuffle | Iterable[PhysicalMove]
    ] = None,
) -> LayoutReport:
    """Audit the server: catalog vs inventory vs computed locations.

    Checks three invariants:

    * every catalog block is resident somewhere (**missing** otherwise);
    * every resident block belongs to a catalog object (**orphans**);
    * every resident block sits on the disk ``AF()`` computes
      (**misplaced**).

    ``pending`` makes the audit migration-aware: a block at a pending
    move's source whose expected home is that move's target is
    **in-flight**, not misplaced — so a mid-migration server audits
    clean unless genuinely corrupt.  Pass the whole
    :class:`~repro.server.cmserver.PendingScale` when one is available
    (required for mid-*removal* audits: the backend already indexes the
    survivors while the doomed disks are still attached, so expected
    homes must be translated through the survivor table); a
    :class:`~repro.server.cmserver.PendingReshuffle` or a bare iterable
    of moves suffices when no disks are leaving (reshuffles never change
    the disk count).
    """
    if isinstance(pending, PendingReshuffle):
        pending = pending.plan.moves
    if isinstance(pending, PendingScale):
        moves: tuple[PhysicalMove, ...] = pending.plan.moves
        attached = list(server.array.physical_ids)
        translate: dict[int, int] = {}
        if pending.removed_physicals and set(pending.removed_physicals) <= set(
            attached
        ):
            # Mid-removal: AF() yields post-removal logical indices, but
            # ``block_locations`` resolves them against the pre-detach
            # table.  Remap each raw expectation to the survivor the
            # logical index actually denotes.
            survivors = server.array.survivors_after_removal(pending.op.removed)
            translate = {attached[i]: pid for i, pid in enumerate(survivors)}
    else:
        moves = tuple(pending or ())
        translate = {}
    expected_by_move = {
        m.block_id: (m.source_physical, m.target_physical) for m in moves
    }
    report = LayoutReport()
    cataloged: set[BlockId] = set()
    for media in server.catalog:
        # One batched AF() pass per object instead of a chain per block.
        expected_homes = server.block_locations(media.object_id)
        for index, expected in enumerate(expected_homes):
            expected = translate.get(expected, expected)
            block_id = BlockId(media.object_id, index)
            cataloged.add(block_id)
            report.blocks_checked += 1
            try:
                actual = server.array.home_of(block_id)
            except KeyError:
                report.missing.append(block_id)
                continue
            if actual != expected:
                violation = LayoutViolation(
                    block_id=block_id,
                    expected_physical=expected,
                    actual_physical=actual,
                )
                if expected_by_move.get(block_id) == (actual, expected):
                    report.in_flight.append(violation)
                else:
                    report.misplaced.append(violation)
    for pid in server.array.physical_ids:
        for block in server.array.blocks_on_physical(pid):
            if block.block_id not in cataloged:
                report.orphans.append(block.block_id)
    return report


def repair_layout(server: CMServer, report: LayoutReport | None = None) -> int:
    """Move misplaced blocks to their computed homes; returns moves made.

    Missing blocks cannot be conjured (that is data loss — surface it);
    orphans are left in place (they may be another catalog epoch's data —
    deleting is the operator's call).  Only *misplaced* blocks are safe
    to fix mechanically.
    """
    report = report if report is not None else check_layout(server)
    moves = 0
    for violation in report.misplaced:
        if server.array.move(violation.block_id, violation.expected_physical):
            moves += 1
    return moves
