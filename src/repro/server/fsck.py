"""Layout consistency checking (an ``fsck`` for the CM server).

SCADDAR's correctness rests on one identity: the *computed* location of
every block (``AF()`` over seeds + op log) equals where its bytes
physically sit.  Crashes mid-migration, operator surgery or software
bugs can break it; :func:`check_layout` audits a server and
:func:`repair_layout` moves stray blocks back where the arithmetic says
they belong (computation wins — it is what retrieval will use).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.server.cmserver import CMServer
from repro.storage.block import BlockId


@dataclass(frozen=True)
class LayoutViolation:
    """One block whose physical home disagrees with ``AF()``."""

    block_id: BlockId
    expected_physical: int
    actual_physical: int


@dataclass
class LayoutReport:
    """Outcome of one consistency audit."""

    blocks_checked: int = 0
    missing: list[BlockId] = field(default_factory=list)
    orphans: list[BlockId] = field(default_factory=list)
    misplaced: list[LayoutViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the layout is fully consistent."""
        return not (self.missing or self.orphans or self.misplaced)


def check_layout(server: CMServer) -> LayoutReport:
    """Audit the server: catalog vs inventory vs computed locations.

    Checks three invariants:

    * every catalog block is resident somewhere (**missing** otherwise);
    * every resident block belongs to a catalog object (**orphans**);
    * every resident block sits on the disk ``AF()`` computes
      (**misplaced**).
    """
    report = LayoutReport()
    cataloged: set[BlockId] = set()
    for media in server.catalog:
        # One batched AF() pass per object instead of a chain per block.
        expected_homes = server.block_locations(media.object_id)
        for index, expected in enumerate(expected_homes):
            block_id = BlockId(media.object_id, index)
            cataloged.add(block_id)
            report.blocks_checked += 1
            try:
                actual = server.array.home_of(block_id)
            except KeyError:
                report.missing.append(block_id)
                continue
            if actual != expected:
                report.misplaced.append(
                    LayoutViolation(
                        block_id=block_id,
                        expected_physical=expected,
                        actual_physical=actual,
                    )
                )
    for pid in server.array.physical_ids:
        for block in server.array.blocks_on_physical(pid):
            if block.block_id not in cataloged:
                report.orphans.append(block.block_id)
    return report


def repair_layout(server: CMServer, report: LayoutReport | None = None) -> int:
    """Move misplaced blocks to their computed homes; returns moves made.

    Missing blocks cannot be conjured (that is data loss — surface it);
    orphans are left in place (they may be another catalog epoch's data —
    deleting is the operator's call).  Only *misplaced* blocks are safe
    to fix mechanically.
    """
    report = report if report is not None else check_layout(server)
    moves = 0
    for violation in report.misplaced:
        if server.array.move(violation.block_id, violation.expected_physical):
            moves += 1
    return moves
