"""The durable scaling journal: crash consistency for online scaling.

SCADDAR's snapshot (:mod:`repro.server.persistence`) captures a server at
a quiescent point, but the paper's whole premise is that scaling runs
*while the server serves* — and a crash mid-migration leaves the physical
disks half-moved with nothing that says which moves landed.  The journal
closes that gap with a classic intent/apply/commit record per scaling
operation, append-only JSON lines, O(moved blocks) per operation:

* ``begin`` — written by :meth:`CMServer.begin_scale` once the mapper has
  the new epoch and the RF() plan is known: the operation, the disk
  counts, and the full move list (block ids + *logical* endpoints —
  physical ids are process-local and would not survive a restart);
* ``apply`` — one O(1) record per executed :class:`PhysicalMove`, written
  by :meth:`MigrationSession.step` after the transfer lands;
* ``commit`` — written by :meth:`CMServer.finish_scale`;
* ``abort`` — written by :meth:`CMServer.abort_scale` after rollback.

Full redistributions journal through the same protocol under their own
op kind (:class:`ReshuffleOp`): ``begin`` carries the reset's complete
move plan, each landed move gets an ``apply``, and
:meth:`CMServer.finish_reshuffle` writes the ``commit`` — so a crash at
any move index of a reshuffle resumes exactly like a crashed scale.

``snapshot + journal`` is a complete recovery story:
:func:`repro.server.persistence.resume_server` replays committed
operations wholesale, skips aborted ones, and rebuilds the exact
mid-migration state of an open one (tests/test_journal_resume.py proves
bit-identical layouts for a kill after *every* move index).

The journal can live in memory (``path=None``, for experiments and
simulations) or on disk, where every record is flushed on write and
optionally fsync'd (``fsync=True``) so the record survives power loss.
A torn final line — the classic crash-while-appending artifact — is
tolerated and dropped on replay; corruption anywhere else raises.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.core.operations import ScalingOp
from repro.storage.block import BlockId


class JournalError(Exception):
    """Raised on journal corruption or protocol violations."""


@dataclass(frozen=True)
class ReshuffleOp:
    """The journal's record of one full redistribution (reset).

    A reshuffle is not a :class:`~repro.core.operations.ScalingOp` — it
    changes no disk count and resets the backend's log instead of
    appending to it — but it moves blocks and must survive a crash just
    like a scale, so it journals through the same
    begin/apply/commit protocol under its own op kind.

    Attributes
    ----------
    epoch:
        1-based count of reshuffles once this one commits; doubles as
        the record's ``seq`` (reshuffle seq numbers live in their own
        space — scaling seqs restart from 1 after each reset).
    """

    epoch: int
    kind: str = field(default="reshuffle", init=False)

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {"kind": "reshuffle", "epoch": self.epoch}

    @classmethod
    def from_dict(cls, data: dict) -> "ReshuffleOp":
        """Inverse of :meth:`to_dict`."""
        if data.get("kind") != "reshuffle":
            raise ValueError(f"not a ReshuffleOp payload: {data!r}")
        return cls(epoch=data["epoch"])


@dataclass(frozen=True)
class LogicalMove:
    """One planned move in logical-index space (stable across restarts).

    ``source_logical``/``target_logical`` index the disk array *as it was
    when the operation began* (doomed disks of a removal are still
    attached then, so survivors keep their pre-removal indices).
    """

    block_id: BlockId
    source_logical: int
    target_logical: int


@dataclass
class OpJournalRecord:
    """Everything the journal knows about one scaling operation.

    Attributes
    ----------
    seq:
        The operation's 1-based position in the operation log (``j``).
    op:
        The scaling operation itself.
    n_before / n_after:
        Disk counts around the operation.
    plan:
        The full move list recorded at ``begin`` time.
    applied:
        Block ids whose moves were journaled as executed, in order.
    committed / aborted:
        Terminal states; an open record has neither.
    """

    seq: int
    op: "ScalingOp | ReshuffleOp"
    n_before: int
    n_after: int
    plan: tuple[LogicalMove, ...]
    applied: list[BlockId] = field(default_factory=list)
    committed: bool = False
    aborted: bool = False

    @property
    def open(self) -> bool:
        """Whether the operation is still in flight."""
        return not (self.committed or self.aborted)

    @property
    def is_reshuffle(self) -> bool:
        """Whether this record journals a full redistribution."""
        return isinstance(self.op, ReshuffleOp)

    @property
    def remaining(self) -> int:
        """Planned moves without an apply record."""
        return len(self.plan) - len(self.applied)


class ScalingJournal:
    """Append-only intent/apply/commit journal for scaling operations.

    Parameters
    ----------
    path:
        JSON-lines file to append to (created if missing).  ``None``
        keeps records in memory — same semantics, no durability; useful
        for simulations and the chaos experiment.
    fsync:
        When True, ``os.fsync`` after every record — the full durability
        contract, at one syscall per record.  Off by default; records
        are still flushed to the OS on every write.

    Examples
    --------
    >>> journal = ScalingJournal()          # in-memory
    >>> journal.replay()
    []
    """

    def __init__(self, path: str | Path | None = None, fsync: bool = False):
        from repro.obs import NULL_OBS

        self.path = Path(path) if path is not None else None
        self.fsync = fsync
        self.obs = NULL_OBS
        self._records: list[dict] = []
        self._fh = None
        if self.path is not None:
            self._fh = open(self.path, "a", encoding="utf-8")

    def attach_obs(self, obs) -> None:
        """Attach an observability handle (:class:`repro.obs.Obs`):
        records count into ``journal.records`` (labelled by type) and
        every fsync is timed into ``journal.fsync.seconds``."""
        self.obs = obs

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record_begin(
        self,
        seq: int,
        op: "ScalingOp | ReshuffleOp",
        n_before: int,
        n_after: int,
        moves: Iterable[LogicalMove],
    ) -> None:
        """Journal the intent of one scaling operation (plan included).

        Raises
        ------
        JournalError
            If another operation is still open — one scaling operation
            runs at a time, and overlapping intents would make replay
            ambiguous.
        """
        last = self._last_record()
        if last is not None and last.open:
            raise JournalError(
                f"operation seq={last.seq} is still open; commit or abort "
                "it before beginning another"
            )
        self._append(
            {
                "type": "begin",
                "seq": seq,
                "op": op.to_dict(),
                "n_before": n_before,
                "n_after": n_after,
                "plan": [
                    [
                        m.block_id.object_id,
                        m.block_id.index,
                        m.source_logical,
                        m.target_logical,
                    ]
                    for m in moves
                ],
            }
        )

    def record_apply(self, seq: int, block_id: BlockId) -> None:
        """Journal one executed move (after the transfer landed)."""
        self._append(
            {
                "type": "apply",
                "seq": seq,
                "block": [block_id.object_id, block_id.index],
            }
        )

    def record_commit(self, seq: int) -> None:
        """Journal completion of an operation."""
        self._append({"type": "commit", "seq": seq})

    def record_abort(self, seq: int) -> None:
        """Journal rollback of an operation."""
        self._append({"type": "abort", "seq": seq})

    def sync(self) -> None:
        """Force the journal to stable storage (no-op in memory)."""
        if self._fh is not None:
            self._fh.flush()
            with self.obs.timer("journal.fsync.seconds"):
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Close the backing file (in-memory journals are unaffected)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ScalingJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def replay(self) -> list[OpJournalRecord]:
        """Parse the journal into per-operation records, oldest first.

        Raises
        ------
        JournalError
            On corrupt records anywhere but the final line (a torn final
            line is the expected crash artifact and is dropped).
        """
        raw = self._read_raw()
        records: list[OpJournalRecord] = []
        for lineno, entry in enumerate(raw, start=1):
            kind = entry.get("type")
            if kind == "begin":
                op_data = entry["op"]
                op: ScalingOp | ReshuffleOp = (
                    ReshuffleOp.from_dict(op_data)
                    if op_data.get("kind") == "reshuffle"
                    else ScalingOp.from_dict(op_data)
                )
                records.append(
                    OpJournalRecord(
                        seq=entry["seq"],
                        op=op,
                        n_before=entry["n_before"],
                        n_after=entry["n_after"],
                        plan=tuple(
                            LogicalMove(BlockId(o, i), src, dst)
                            for o, i, src, dst in entry["plan"]
                        ),
                    )
                )
                continue
            if not records:
                raise JournalError(
                    f"record {lineno}: {kind!r} before any 'begin'"
                )
            current = records[-1]
            if entry.get("seq") != current.seq:
                raise JournalError(
                    f"record {lineno}: seq {entry.get('seq')} does not "
                    f"match open operation seq {current.seq}"
                )
            if kind == "apply":
                if not current.open:
                    raise JournalError(
                        f"record {lineno}: apply after commit/abort"
                    )
                current.applied.append(BlockId(*entry["block"]))
            elif kind == "commit":
                current.committed = True
            elif kind == "abort":
                current.aborted = True
            else:
                raise JournalError(f"record {lineno}: unknown type {kind!r}")
        return records

    def open_record(self) -> Optional[OpJournalRecord]:
        """The in-flight operation, if the journal ends mid-scale."""
        records = self.replay()
        if records and records[-1].open:
            return records[-1]
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        self._records.append(record)
        if self.obs.enabled:
            self.obs.inc("journal.records", type=record["type"])
        if self._fh is not None:
            self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._fh.flush()
            if self.fsync:
                with self.obs.timer("journal.fsync.seconds"):
                    os.fsync(self._fh.fileno())

    def _read_raw(self) -> list[dict]:
        if self.path is None:
            return list(self._records)
        if not self.path.exists():
            return []
        entries: list[dict] = []
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                if lineno == len(lines):
                    break  # torn final line: the crash artifact
                raise JournalError(f"corrupt journal line {lineno}")
        return entries

    def _last_record(self) -> Optional[OpJournalRecord]:
        records = self.replay()
        return records[-1] if records else None

    def __repr__(self) -> str:
        where = str(self.path) if self.path is not None else "memory"
        return f"ScalingJournal({where}, records={len(self._read_raw())})"
