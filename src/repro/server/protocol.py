"""The explicit single-server surface (:class:`ServerProtocol`).

Before the cluster layer existed, "a server" was implicitly whatever
:class:`~repro.server.cmserver.CMServer` happened to expose; the
coordinator (:mod:`repro.cluster`) drives many servers through one
contract, so that surface is now explicit.  The protocol names exactly
the operations the rest of the stack composes:

* **load / locate** — :meth:`add_object`, :meth:`remove_object`,
  :meth:`block_locations`, :meth:`locate_blocks`;
* **ingest** — :meth:`register_media` (the incremental-write entry used
  by :class:`~repro.server.ingest.IngestSession`);
* **scale** — :meth:`begin_scale` / :meth:`finish_scale` (journaled,
  crash-consistent; see :mod:`repro.server.journal`);
* **reshuffle** — :meth:`begin_reshuffle` / :meth:`finish_reshuffle`.

Snapshot / resume stay module-level functions
(:func:`~repro.server.persistence.snapshot_server`,
:func:`~repro.server.persistence.resume_server`) because they construct
servers rather than act on one; the protocol covers the instance
surface only.

The protocol is ``runtime_checkable`` so integration points can assert
``isinstance(server, ServerProtocol)`` — a structural check (methods
present), not a behavioral one; the per-backend loop tests are the
behavioral contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.operations import ScalingOp
    from repro.server.cmserver import PendingReshuffle, PendingScale
    from repro.server.objects import MediaObject
    from repro.storage.block import Block
    from repro.storage.disk import DiskSpec


@runtime_checkable
class ServerProtocol(Protocol):
    """What the cluster layer requires of one shard's server.

    :class:`~repro.server.cmserver.CMServer` is the (only) production
    implementation; the protocol exists so the coordinator's contract is
    a type, not a convention.
    """

    # -- identity / inventory ------------------------------------------
    @property
    def num_disks(self) -> int:
        """Current disk count."""
        ...

    @property
    def total_blocks(self) -> int:
        """Blocks resident on the array."""
        ...

    # -- load / locate -------------------------------------------------
    def add_object(
        self, name: str, num_blocks: int, blocks_per_round: int = 1
    ) -> "MediaObject":
        """Register a new object and place all its blocks."""
        ...

    def remove_object(self, object_id: int) -> None:
        """Drop an object and free its blocks."""
        ...

    def block_locations(self, object_id: int) -> list[int]:
        """Physical disk of every block of one object, in index order."""
        ...

    def locate_blocks(self, blocks: "list[Block]") -> list[int]:
        """Current logical disk of each block, batched (write path)."""
        ...

    # -- ingest --------------------------------------------------------
    def register_media(self, media: "MediaObject") -> None:
        """Introduce an object to the backend without placing blocks."""
        ...

    # -- scale ---------------------------------------------------------
    def begin_scale(
        self,
        op: "ScalingOp",
        specs: "Optional[list[DiskSpec]]" = None,
        eps: Optional[float] = None,
    ) -> "PendingScale":
        """Start a scaling operation without moving data."""
        ...

    def finish_scale(self, pending: "PendingScale") -> None:
        """Complete a begun scaling operation."""
        ...

    # -- reshuffle -----------------------------------------------------
    def begin_reshuffle(self) -> "PendingReshuffle":
        """Start a full redistribution without moving data."""
        ...

    def finish_reshuffle(self, pending: "PendingReshuffle") -> None:
        """Complete a begun reshuffle."""
        ...
