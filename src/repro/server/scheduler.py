"""Round-based retrieval scheduling.

Continuous media is served in fixed rounds: every active stream must
receive its next block(s) each round or the client observes a *hiccup*.
Each disk can serve a bounded number of block reads per round (its
bandwidth); randomized placement keeps per-round disk queues balanced by
the law of large numbers (Section 1), which is exactly what the
round-level statistics here expose.

The scheduler has two serving paths:

* the **simple path** (no ``read_planner``): every read either fits its
  primary disk's bandwidth or hiccups — the paper's baseline model;
* the **degraded path** (with a
  :class:`~repro.server.reads.FailoverReadPlanner`): each read runs the
  full retry / failover / reconstruction chain against the per-disk
  health state (:mod:`repro.server.health`), slow reads defer to the
  next round as *queued*, and an attached scrubber spends a bounded
  budget per round on verify/repair.  Every round then satisfies the
  conservation invariant ``requested == served + hiccups + queued``.

Degraded-path accounting is *actual*, not nominal: ``load_by_physical``
charges each read to the disk(s) that really spent bandwidth on it
(mirror and parity members on failover, the primary per retry attempt)
— never to a dead primary — and a read queued in round *r* that is
re-requested in round *r+1* is counted in ``retried``, so availability
can be computed over unique demand instead of double-counting the same
block (see :class:`~repro.server.metrics.MetricsSummary`).

With an ``obs=`` handle attached (:mod:`repro.obs`) every round runs
inside a ``round.serve`` span (scrubbing under a nested ``round.scrub``
span), failover serves emit ``read.failover`` events, and the
serve/failover/scrub ledger lands in counters (``reads.*``,
``scrub.*``).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.server.streams import Stream
from repro.storage.array import DiskArray
from repro.storage.block import BlockId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs import ObsHandle
    from repro.server.admission import AdmissionPolicy
    from repro.server.health import Scrubber
    from repro.server.reads import FailoverReadPlanner


@dataclass
class RoundReport:
    """What happened in one scheduling round.

    Attributes
    ----------
    round_index:
        Sequence number of the round.
    requested:
        Block reads demanded by active streams.
    served:
        Reads delivered this round (any path: primary, failover or
        reconstruction).
    hiccups:
        Reads that missed their deadline with every recovery path
        exhausted.
    queued:
        Reads deferred to the next round (slow disk: bandwidth spent,
        data late).  ``requested == served + hiccups + queued`` holds
        every round.
    retried:
        Re-requests of reads queued in the *previous* round (the same
        block demanded again by the same stream).  A retried read is
        counted in ``requested`` both rounds but represents one unit of
        unique demand; availability over the horizon divides by
        ``requested - retried`` (always 0 on the simple path, which
        never queues).
    failover_reads:
        Reads served from the Section 6 mirror location.
    reconstructed_reads:
        Reads served by XOR reconstruction from a parity group.
    scrub_checked / scrub_repaired / scrub_rebuilt:
        The round's scrubber activity (0 without a scrubber).
    load_by_physical:
        Per-disk read load.  Simple path: reads demanded per primary
        disk (queue length, may exceed bandwidth).  Degraded path: reads
        each disk *actually performed* — failover charges the mirror or
        the parity-group members, retries charge the primary per
        attempt, and a dead disk is charged nothing.
    spare_by_physical:
        Leftover bandwidth per physical disk after stream service — the
        budget the online scaler hands to migration.  Dead and
        rebuilding disks report 0 spare (they cannot carry migration
        transfers).
    health_by_physical:
        Health state name per physical disk (empty on the simple path).
    """

    round_index: int
    requested: int = 0
    served: int = 0
    hiccups: int = 0
    queued: int = 0
    retried: int = 0
    failover_reads: int = 0
    reconstructed_reads: int = 0
    scrub_checked: int = 0
    scrub_repaired: int = 0
    scrub_rebuilt: int = 0
    load_by_physical: dict[int, int] = field(default_factory=dict)
    spare_by_physical: dict[int, int] = field(default_factory=dict)
    health_by_physical: dict[int, str] = field(default_factory=dict)

    @property
    def availability(self) -> float:
        """Fraction of the round's demand served on time (1.0 idle)."""
        return self.served / self.requested if self.requested else 1.0


class RoundScheduler:
    """Serves a set of streams from a disk array, round by round.

    Parameters
    ----------
    array:
        The disk array holding the blocks (reads are charged to the
        block's *physical* home, so a mid-migration block is correctly
        served from wherever its bytes currently are).
    locator:
        Optional override mapping a :class:`BlockId` to a physical disk;
        defaults to the array's inventory.
    admission:
        Optional admission policy (default: aggregate-bandwidth).
    read_planner:
        Optional :class:`~repro.server.reads.FailoverReadPlanner`;
        switches the scheduler to the degraded serving path.
    scrubber:
        Optional :class:`~repro.server.health.Scrubber` run at the end
        of each degraded round (rate-bounded verify/repair).
    obs:
        Optional observability handle (:class:`repro.obs.Obs`); defaults
        to the no-op :data:`~repro.obs.NULL_OBS`.
    """

    def __init__(
        self,
        array: DiskArray,
        locator: Callable[[BlockId], int] | None = None,
        admission: "AdmissionPolicy | None" = None,
        read_planner: Optional["FailoverReadPlanner"] = None,
        scrubber: Optional["Scrubber"] = None,
        obs: Optional["ObsHandle"] = None,
    ):
        from repro.obs import NULL_OBS
        from repro.server.admission import AggregateAdmission

        self.array = array
        self._locate = locator or array.home_of
        self.admission = admission or AggregateAdmission()
        self.read_planner = read_planner
        self.scrubber = scrubber
        self.obs = obs if obs is not None else NULL_OBS
        self._streams: dict[int, Stream] = {}
        self._round_index = 0
        self.total_hiccups = 0
        #: Cumulative hiccups charged to each stream id (fairness data).
        self.hiccups_by_stream: dict[int, int] = defaultdict(int)
        #: (stream id, block id) pairs queued last round: the next
        #: round's demand for one of these is a re-request, not new
        #: unique demand (see :attr:`RoundReport.retried`).
        self._queued_last_round: set[tuple[int, BlockId]] = set()

    # ------------------------------------------------------------------
    # Stream management
    # ------------------------------------------------------------------
    @property
    def streams(self) -> tuple[Stream, ...]:
        """All admitted streams (including finished ones)."""
        return tuple(self._streams.values())

    @property
    def active_streams(self) -> int:
        """Streams currently demanding blocks."""
        return sum(1 for s in self._streams.values() if s.is_active)

    def admit(self, stream: Stream) -> None:
        """Admit a stream, subject to the configured admission policy.

        The default :class:`~repro.server.admission.AggregateAdmission`
        rejects streams whose rate would push aggregate demand past the
        array's aggregate bandwidth; statistical policies leave headroom
        for the per-disk variance of random placement.
        """
        if stream.stream_id in self._streams:
            raise ValueError(f"stream id {stream.stream_id} already admitted")
        active_demand = sum(
            s.media.blocks_per_round for s in self._streams.values() if s.is_active
        )
        if not self.admission.admits(
            self.array, active_demand, stream.media.blocks_per_round
        ):
            raise ValueError(
                f"admission denied by {type(self.admission).__name__}: "
                f"active demand {active_demand} + new rate "
                f"{stream.media.blocks_per_round} blocks/round"
            )
        self._streams[stream.stream_id] = stream

    def depart(self, stream_id: int) -> Stream:
        """Remove a stream (client disconnect)."""
        try:
            return self._streams.pop(stream_id)
        except KeyError:
            raise KeyError(f"stream id {stream_id} is not admitted")

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def run_round(self) -> RoundReport:
        """Serve one round: collect demands, enforce per-disk bandwidth."""
        if self.read_planner is not None:
            return self._run_round_degraded()
        return self._run_round_simple()

    def _run_round_simple(self) -> RoundReport:
        report = RoundReport(round_index=self._round_index)
        self._round_index += 1

        with self.obs.span("round.serve", round=report.round_index):
            demand_by_disk: dict[int, list[tuple[Stream, BlockId]]] = defaultdict(
                list
            )
            for stream in self._streams.values():
                for block_id in stream.blocks_needed():
                    demand_by_disk[self._locate(block_id)].append(
                        (stream, block_id)
                    )

            served_by_stream: dict[int, int] = defaultdict(int)
            for pid in self.array.physical_ids:
                bandwidth = self.array.disk(pid).bandwidth_blocks_per_round
                queue = demand_by_disk.get(pid, [])
                report.load_by_physical[pid] = len(queue)
                served_here = min(len(queue), bandwidth)
                for stream, __ in queue[:served_here]:
                    served_by_stream[stream.stream_id] += 1
                for stream, __ in queue[served_here:]:
                    self.hiccups_by_stream[stream.stream_id] += 1
                report.requested += len(queue)
                report.served += served_here
                report.hiccups += len(queue) - served_here
                report.spare_by_physical[pid] = bandwidth - served_here

            for stream in self._streams.values():
                stream.deliver(served_by_stream.get(stream.stream_id, 0))

        self.total_hiccups += report.hiccups
        self._count_round(report)
        return report

    def _run_round_degraded(self) -> RoundReport:
        """One round through the failover read planner.

        Reads are planned in stream-admission order (deterministic);
        each consumes bandwidth wherever its serving path actually read
        — primary, mirror, or every member of a parity group.
        """
        from repro.server.reads import (
            PATH_MIRROR,
            PATH_PARITY,
            PATH_PRIMARY,
            READ_QUEUED,
            SERVED_PATHS,
        )

        from repro.server.health import DiskHealth

        planner = self.read_planner
        assert planner is not None
        report = RoundReport(round_index=self._round_index)
        self._round_index += 1
        planner.monitor.new_round()

        bandwidth = {
            pid: self.array.disk(pid).bandwidth_blocks_per_round
            for pid in self.array.physical_ids
        }
        report.load_by_physical = {pid: 0 for pid in bandwidth}
        served_by_stream: dict[int, int] = defaultdict(int)
        demanded_by_stream: dict[int, int] = defaultdict(int)
        queued_now: set[tuple[int, BlockId]] = set()
        obs = self.obs

        with obs.span("round.serve", round=report.round_index):
            for stream in self._streams.values():
                for block_id in stream.blocks_needed():
                    report.requested += 1
                    demanded_by_stream[stream.stream_id] += 1
                    if (stream.stream_id, block_id) in self._queued_last_round:
                        report.retried += 1
                    outcome = planner.serve(
                        block_id,
                        report.round_index,
                        bandwidth,
                        loads=report.load_by_physical,
                    )
                    if outcome in SERVED_PATHS:
                        report.served += 1
                        served_by_stream[stream.stream_id] += 1
                        if outcome == PATH_MIRROR:
                            report.failover_reads += 1
                        elif outcome == PATH_PARITY:
                            report.reconstructed_reads += 1
                        if outcome != PATH_PRIMARY and obs.enabled:
                            obs.event(
                                "read.failover",
                                block=[block_id.object_id, block_id.index],
                                path=outcome,
                                round=report.round_index,
                            )
                    elif outcome == READ_QUEUED:
                        report.queued += 1
                        queued_now.add((stream.stream_id, block_id))
                    else:
                        report.hiccups += 1
                        self.hiccups_by_stream[stream.stream_id] += 1
        self._queued_last_round = queued_now

        # Dead and rebuilding disks have no usable spare bandwidth: the
        # online scaler must not schedule migration transfers on them.
        report.spare_by_physical = {
            pid: (
                0
                if planner.monitor.state(pid)
                in (DiskHealth.DEAD, DiskHealth.REBUILDING)
                else left
            )
            for pid, left in bandwidth.items()
        }

        if self.scrubber is not None:
            with obs.span("round.scrub", round=report.round_index):
                scrub = self.scrubber.run_round(report.round_index)
            report.scrub_checked = scrub.checked
            report.scrub_repaired = scrub.repaired
            report.scrub_rebuilt = scrub.rebuilt_blocks

        report.health_by_physical = planner.monitor.snapshot()

        for stream in self._streams.values():
            stream.deliver(
                served_by_stream.get(stream.stream_id, 0),
                demanded=demanded_by_stream.get(stream.stream_id, 0),
            )

        self.total_hiccups += report.hiccups
        self._count_round(report)
        return report

    def _count_round(self, report: RoundReport) -> None:
        """Fold one round's totals into the obs counters (batched)."""
        obs = self.obs
        if not obs.enabled:
            return
        obs.inc("reads.requested", report.requested)
        obs.inc("reads.served", report.served)
        obs.inc("reads.hiccups", report.hiccups)
        obs.inc("reads.queued", report.queued)
        obs.inc("reads.retried", report.retried)
        obs.inc("reads.failover", report.failover_reads)
        obs.inc("reads.reconstructed", report.reconstructed_reads)
        obs.inc("scrub.checked", report.scrub_checked)
        obs.inc("scrub.repaired", report.scrub_repaired)
        obs.inc("scrub.rebuilt", report.scrub_rebuilt)

    def run_rounds(self, count: int) -> list[RoundReport]:
        """Run ``count`` rounds and return their reports."""
        if count < 0:
            raise ValueError(f"round count must be >= 0, got {count}")
        return [self.run_round() for _ in range(count)]

    def peak_queue_per_round(self, reports: Iterable[RoundReport]) -> list[int]:
        """Largest single-disk demand of each round (load-balance signal)."""
        return [
            max(report.load_by_physical.values(), default=0) for report in reports
        ]
